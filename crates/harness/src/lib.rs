//! # swn-harness — the experiment suite
//!
//! One module per experiment of DESIGN.md §4; each exposes `Params`
//! (`full()` / `quick()` presets), a `measure`/`run_cells` layer returning
//! raw data (used by the tests and the criterion benches) and a `run`
//! layer rendering the printable [`table::Table`] the paper-style report
//! is built from. The `experiments` binary drives them:
//!
//! ```text
//! cargo run -p swn-harness --release --bin experiments -- all --quick
//! cargo run -p swn-harness --release --bin experiments -- e3
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod e10_faults;
pub mod e12_chaos;
pub mod e1_convergence;
pub mod e2_distribution;
pub mod e3_routing;
pub mod e4_probing;
pub mod e5_join_leave;
pub mod e7_robustness;
pub mod e8_watts_strogatz;
pub mod e9_overhead;
pub mod probe_walk;
pub mod report;
pub mod runlog;
pub mod table;
pub mod testbed;
pub mod x1_multidim;
