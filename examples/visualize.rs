//! Checkpoint and visualize a stabilized network: stabilize from a
//! hostile start, write a JSON checkpoint and Graphviz DOT files for the
//! initial and final states, then restore from the checkpoint and verify
//! the computation continues.
//!
//! ```text
//! cargo run --release --example visualize
//! # then e.g.: neato -n2 -Tsvg smallworld_final.dot -o smallworld.svg
//! ```

use self_stabilizing_smallworld::prelude::*;
use self_stabilizing_smallworld::sim::persist::{
    network_from_snapshot, snapshot_from_json, snapshot_to_json,
};
use self_stabilizing_smallworld::topology::export::snapshot_to_dot;
use swn_sim::init::generate;

fn main() -> std::io::Result<()> {
    let n = 48;
    let cfg = ProtocolConfig::default();
    let ids = evenly_spaced_ids(n);
    let mut net = generate(InitialTopology::RandomChain, &ids, cfg, 11).into_network(11);

    let out_dir = std::env::temp_dir().join("smallworld-visualize");
    std::fs::create_dir_all(&out_dir)?;

    // Initial (scrambled) state.
    let initial = net.snapshot();
    std::fs::write(
        out_dir.join("smallworld_initial.dot"),
        snapshot_to_dot(&initial, "initial"),
    )?;
    println!("initial phase: {:?}", classify(&initial));

    // Stabilize and let the tokens spread.
    let report = run_to_ring(&mut net, 1_000_000);
    assert!(report.stabilized());
    net.run(2000);
    println!(
        "stabilized after {} rounds (+2000 rounds of move-and-forget)",
        report.rounds_to_ring.expect("stabilized")
    );

    // Final state: DOT for the eyes, JSON for the machines.
    let fin = net.snapshot();
    let dot_path = out_dir.join("smallworld_final.dot");
    let json_path = out_dir.join("smallworld_final.json");
    std::fs::write(&dot_path, snapshot_to_dot(&fin, "stable"))?;
    std::fs::write(&json_path, snapshot_to_json(&fin))?;
    println!("wrote {}", dot_path.display());
    println!("wrote {}", json_path.display());
    println!(
        "render with: neato -n2 -Tsvg {} -o smallworld.svg",
        dot_path.display()
    );

    // Round trip: restore the checkpoint and keep running.
    let restored = snapshot_from_json(&std::fs::read_to_string(&json_path)?)
        .expect("own checkpoint must parse");
    let mut net2 = network_from_snapshot(&restored, 999);
    net2.run(100);
    assert!(
        is_sorted_ring(&net2.snapshot()),
        "restored network stays stable"
    );
    println!("checkpoint restored and verified: still a sorted ring after 100 more rounds");
    Ok(())
}
