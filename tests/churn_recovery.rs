//! Integration tests for topology updates (Theorem 4.24): joins, leaves
//! and mixed churn storms on stationary networks.

use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use self_stabilizing_smallworld::prelude::*;
use swn_harness::testbed::harmonic_network;

fn fresh_gap_id(ids: &[NodeId], rng: &mut StdRng) -> NodeId {
    let slot = rng.random_range(0..ids.len() - 1);
    NodeId::from_bits(ids[slot].bits() + (ids[slot + 1].bits() - ids[slot].bits()) / 2)
}

#[test]
fn join_at_every_contact_position() {
    // The contact's position relative to the newcomer must not matter:
    // far left, far right, adjacent.
    let n = 32;
    for contact_rank in [0usize, 1, 15, 30, 31] {
        let mut net = harmonic_network(n, ProtocolConfig::default(), 77);
        let ids = net.ids();
        let contact = ids[contact_rank];
        let new_id = NodeId::from_bits(ids[16].bits() + 500);
        let rep = join(&mut net, new_id, contact, 100_000);
        assert!(
            rep.recovered(),
            "join via rank {contact_rank} failed: {rep:?}"
        );
        assert!(is_sorted_ring(&net.snapshot()));
    }
}

#[test]
fn join_new_global_extremes() {
    let mut net = harmonic_network(24, ProtocolConfig::default(), 5);
    // Make room below the minimum (evenly spaced ids start at 0.0).
    let old_min = net.ids()[0];
    assert!(leave(&mut net, old_min, 100_000).recovered());
    let ids = net.ids();
    // New global minimum.
    let new_min = NodeId::from_bits(ids[0].bits() / 2);
    let rep = join(&mut net, new_min, ids[12], 100_000);
    assert!(rep.recovered(), "new-min join failed: {rep:?}");
    // New global maximum.
    let new_max = NodeId::from_bits(ids.last().unwrap().bits() + 10_000);
    let rep = join(&mut net, new_max, ids[3], 100_000);
    assert!(rep.recovered(), "new-max join failed: {rep:?}");
    // Ring edges wrap through the new extremes.
    let s = net.snapshot();
    let min_node = &s.nodes()[s.index_of(new_min).unwrap()];
    let max_node = &s.nodes()[s.index_of(new_max).unwrap()];
    assert_eq!(min_node.ring(), Some(new_max));
    assert_eq!(max_node.ring(), Some(new_min));
}

#[test]
fn consecutive_leaves_heal() {
    // Remove two adjacent nodes back to back: the double gap must close.
    let mut net = harmonic_network(20, ProtocolConfig::default(), 8);
    let ids = net.ids();
    let rep = leave(&mut net, ids[9], 200_000);
    assert!(rep.recovered(), "first leave: {rep:?}");
    let rep = leave(&mut net, ids[10], 200_000);
    assert!(rep.recovered(), "second leave: {rep:?}");
    let s = net.snapshot();
    let left = &s.nodes()[s.index_of(ids[8]).unwrap()];
    assert_eq!(left.right().fin(), Some(ids[11]));
}

#[test]
fn leave_both_extremes() {
    let mut net = harmonic_network(16, ProtocolConfig::default(), 13);
    let ids = net.ids();
    let rep = leave(&mut net, ids[0], 200_000);
    assert!(rep.recovered(), "min leave: {rep:?}");
    let rep = leave(&mut net, *ids.last().unwrap(), 200_000);
    assert!(rep.recovered(), "max leave: {rep:?}");
    let s = net.snapshot();
    assert!(is_sorted_ring(&s));
    assert_eq!(s.len(), 14);
}

#[test]
fn mixed_churn_storm_keeps_invariants() {
    let mut rng = StdRng::seed_from_u64(0xc0ffee);
    let mut net = harmonic_network(32, ProtocolConfig::default(), 4);
    for step in 0..12u64 {
        let ids = net.ids();
        if step % 3 == 2 && ids.len() > 8 {
            let (_, rep) = leave_random(&mut net, step, 200_000);
            assert!(rep.recovered(), "leave at step {step}");
        } else {
            let new_id = fresh_gap_id(&ids, &mut rng);
            if net.node(new_id).is_some() {
                continue;
            }
            let contact = ids[rng.random_range(0..ids.len())];
            let rep = join(&mut net, new_id, contact, 200_000);
            assert!(rep.recovered(), "join at step {step}");
        }
        let s = net.snapshot();
        assert!(is_sorted_ring(&s), "invariant broken at step {step}");
    }
    // The overlay is still navigable after the storm.
    net.run(500);
    let g = Graph::from_snapshot(&net.snapshot(), View::Cp);
    let stats = evaluate_routing(&g, 150, 2_000, 1, None);
    assert_eq!(stats.success_rate(), 1.0);
}

#[test]
fn join_report_counts_path_and_messages() {
    let mut net = harmonic_network(64, ProtocolConfig::default(), 6);
    let ids = net.ids();
    let mut rng = StdRng::seed_from_u64(1);
    let new_id = fresh_gap_id(&ids, &mut rng);
    let contact = ids[50];
    let rep = join(&mut net, new_id, contact, 100_000);
    assert!(rep.recovered());
    assert!(rep.messages > 0);
    assert!(rep.tracked_messages > 0);
    assert!(rep.path_nodes >= 1, "at least the final neighbours forward");
    assert!(
        (rep.path_nodes as u64) <= rep.tracked_messages,
        "distinct forwarders cannot exceed tracked messages"
    );
}

#[test]
fn network_shrinks_to_two_and_grows_back() {
    let mut net = harmonic_network(6, ProtocolConfig::default(), 30);
    // Shrink to 2 nodes.
    while net.len() > 2 {
        let ids = net.ids();
        let rep = leave(&mut net, ids[1], 200_000);
        assert!(rep.recovered(), "shrink leave failed at len {}", net.len());
    }
    assert!(is_sorted_ring(&net.snapshot()));
    // Grow back to 6.
    let mut bits: u64 = 1 << 61;
    while net.len() < 6 {
        let ids = net.ids();
        let new_id = NodeId::from_bits(bits);
        bits = bits.wrapping_add(0x1234_5678_9abc);
        if net.node(new_id).is_some() {
            continue;
        }
        let rep = join(&mut net, new_id, ids[0], 200_000);
        assert!(rep.recovered(), "grow join failed at len {}", net.len());
    }
    assert!(is_sorted_ring(&net.snapshot()));
}
