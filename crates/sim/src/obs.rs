//! Observability: pluggable sinks, phase timers and online histograms.
//!
//! The simulator's hot loop promises two things that are usually in
//! tension: it is fast (PR 3's dense-handle engine), and it is
//! *explainable* — the paper's theorems are statements about
//! distributions over time (convergence phases, the 1-harmonic
//! lrl-length law, recovery spans), so a run must be able to report
//! where rounds go and how those distributions evolve. This module
//! resolves the tension with a strictly read-only observer layer:
//!
//! * a [`Sink`] trait receiving schema-versioned [`Record`]s, with a
//!   [`JsonlSink`] that streams them as JSON lines and a [`MemorySink`]
//!   for tests;
//! * online, mergeable fixed-bucket [`Histogram`]s (message latency in
//!   rounds, channel depth high-water marks, lrl age at forget, lrl
//!   ring length);
//! * sampled phase timers inside `Network::step` (activation shuffle,
//!   channel cycle, handler execution, outbox flush, stats accounting).
//!
//! **The disabled path is free.** `Network::step` is monomorphized over
//! a `const OBS: bool`: with no sink attached the `OBS = false` copy
//! runs, in which every observer branch is constant-folded away — it
//! compiles to exactly the pre-observability round loop (the stepengine
//! bench's instrumented-vs-noop pair guards this).
//!
//! **Observers read, never mutate, and consume no RNG.** Events are
//! derived from state the loop already computes; the causal channel
//! take ([`Channel::take_deliverable_causal`]) consumes the identical
//! RNG stream as the untagged one; wall-clock readings appear only in
//! timing payloads. The golden-trace suite pins both halves: state
//! digests are bit-for-bit identical with a sink attached, and the
//! structural event stream itself is fingerprinted.
//!
//! Two submodules extend the layer (PR 9): [`causal`] gives every
//! delivered message a `CauseId` and reconstructs repair-cascade DAGs,
//! and [`flight`] bounds trace memory with a ring buffer that dumps a
//! JSONL post-mortem on anomalous watchdog verdicts.
//!
//! [`Channel::take_deliverable_causal`]: crate::channel::Channel::take_deliverable_causal

pub mod causal;
pub mod flight;

use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::sync::{Arc, Mutex};

use causal::{CausalState, CauseTag};
use flight::FlightBuffer;
use swn_core::message::MessageKind;

/// Version tag stamped on every emitted [`Record`]. Bumped on any
/// breaking change to the [`Event`] layout; readers reject unknown
/// versions instead of guessing.
///
/// v2 (PR 9): `Summary` gained `latency_by_kind` + `cascade_depth`,
/// and the `Cascade` event was added.
pub const SCHEMA_VERSION: u32 = 2;

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `2^32 - 1` (everything larger lands in the last bucket).
pub const HIST_BUCKETS: usize = 33;

/// An online, mergeable, fixed-bucket histogram over `u64` samples.
///
/// Buckets are base-2 exponential: bucket 0 holds the value `0`,
/// bucket `b >= 1` holds `[2^(b-1), 2^b - 1]`, and the last bucket is
/// open-ended. The layout is fixed, so two histograms (e.g. from
/// parallel trials or trace shards) merge by element-wise addition —
/// merging is associative and commutative, which the property tests
/// pin.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    pub(crate) fn bucket_index(v: u64) -> usize {
        if v == 0 {
            return 0;
        }
        let b = usize::try_from(64 - v.leading_zeros()).expect("bit index fits usize");
        b.min(HIST_BUCKETS - 1)
    }

    /// The inclusive `[lo, hi]` value range of bucket `b` (the last
    /// bucket's `hi` is `u64::MAX`).
    pub fn bucket_bounds(b: usize) -> (u64, u64) {
        assert!(b < HIST_BUCKETS, "bucket index out of range");
        if b == 0 {
            (0, 0)
        } else if b == HIST_BUCKETS - 1 {
            (1 << (b - 1), u64::MAX)
        } else {
            (1 << (b - 1), (1 << b) - 1)
        }
    }

    /// Rebuilds a histogram from raw per-bucket counts plus the sum and
    /// max side channels — the merge-on-read path of
    /// [`crate::metrics::AtomicHistogram::snapshot`]. The count is
    /// derived from the buckets, so the result is well-formed by
    /// construction.
    pub(crate) fn from_parts(buckets: Vec<u64>, sum: u64, max: u64) -> Self {
        assert_eq!(buckets.len(), HIST_BUCKETS, "fixed bucket layout");
        let count = buckets.iter().sum();
        Histogram {
            buckets,
            count,
            sum,
            max,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Merges `other` into `self` (element-wise bucket addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or `NaN` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.sum as f64 / self.count as f64
        }
    }

    /// The per-bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Upper bound of the first bucket whose cumulative count reaches
    /// the `q`-quantile (`0.0..=1.0`) — a coarse quantile, exact up to
    /// bucket resolution. Returns 0 for an empty histogram.
    pub fn approx_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        #[allow(clippy::cast_possible_truncation)]
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut cum = 0;
        for (b, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Self::bucket_bounds(b).1.min(self.max);
            }
        }
        self.max
    }

    /// True when the fixed-layout invariants hold (bucket vector length
    /// and count consistency) — used when accepting deserialized data.
    pub fn is_well_formed(&self) -> bool {
        self.buckets.len() == HIST_BUCKETS && self.buckets.iter().sum::<u64>() == self.count
    }
}

/// One observation from a simulation run. Externally tagged in JSON
/// (`{"Round": {...}}`), wrapped in a [`Record`] carrying the schema
/// version.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// Emitted once when a sink is attached: run identity.
    RunMeta {
        /// Live node count at attach time.
        n: usize,
        /// The seed the network was built with.
        seed: u64,
        /// Debug rendering of the delivery policy.
        policy: String,
        /// Sampling interval for `Round`/`PhaseTimes` records.
        sample_every: u64,
        /// Round counter at attach time (non-zero when attached mid-run).
        round: u64,
    },
    /// Per-round counters, emitted every `sample_every` rounds.
    Round {
        /// The round these counters describe.
        round: u64,
        /// Messages sent this round, by kind index
        /// (`MessageKind::index` order).
        sent: Vec<u64>,
        /// Total messages delivered this round.
        delivered: u64,
        /// Messages dropped (destination departed, payload safe).
        dropped: u64,
        /// Messages bounced back to their sender.
        bounced: u64,
        /// Channel depth high-water mark across all nodes this round.
        depth_max: u64,
    },
    /// Sampled wall-clock phase breakdown of one `Network::step`.
    /// Durations are nanoseconds summed over the round; they are
    /// *payload only* — golden fingerprints hash the round, not the
    /// clock readings.
    PhaseTimes {
        /// The round that was timed.
        round: u64,
        /// Activation-order rebuild + shuffle.
        shuffle_ns: u64,
        /// Channel cycle: `take_deliverable` across all nodes.
        channel_ns: u64,
        /// Protocol handler execution (receive + regular actions).
        deliver_ns: u64,
        /// Outbox flushing (routing, bounce/drop handling).
        flush_ns: u64,
        /// Stats accounting: trace push + observer bookkeeping.
        stats_ns: u64,
    },
    /// A convergence phase milestone was reached (emitted by
    /// `run_to_ring`): `phase` is `"lcc"`, `"list"` or `"ring"`.
    Transition {
        /// Rounds from the start of the measurement loop.
        round: u64,
        /// Milestone label.
        phase: String,
    },
    /// A bracketed span of rounds (join/leave recovery, Theorem 4.24).
    Span {
        /// Span label, e.g. `"join"` or `"leave"`.
        label: String,
        /// Absolute round the span started at.
        start: u64,
        /// Absolute round the span ended at.
        end: u64,
    },
    /// A fault was injected by the fault engine (`swn_sim::faults`):
    /// a crash, a restart, a state perturbation, or the opening of a
    /// drop/duplication/partition window. Per-message drop/duplicate
    /// decisions are *not* individually emitted — they aggregate into
    /// the `dropped` counter of `Round` records and the trace's
    /// `dropped_fault`/`duplicated_fault` columns.
    Fault {
        /// The round the fault landed in.
        round: u64,
        /// Fault class: `"crash"`, `"restart"`, `"perturb"`,
        /// `"drop_window"`, `"dup_window"` or `"partition"`.
        kind: String,
        /// Human-readable parameters (victim id, rate, window).
        detail: String,
    },
    /// The watchdog's final classification of a recovery watch
    /// (`faults::watch_recovery`).
    Verdict {
        /// The round the verdict was reached at.
        round: u64,
        /// `"recovered"`, `"disconnected"` or `"budget_exhausted"`.
        outcome: String,
        /// Root cause / parameters (e.g. the culprit drop for a
        /// permanent disconnection).
        detail: String,
    },
    /// Shape of the repair cascade observed over one causal window
    /// (`Network::cascade_begin` .. `cascade_take`; the fault watchdog
    /// brackets every recovery watch with one).
    Cascade {
        /// Window label, e.g. `"recovery"`.
        label: String,
        /// Round the window opened at.
        start: u64,
        /// Round the window closed at.
        end: u64,
        /// Total messages delivered inside the window.
        delivered: u64,
        /// Deliveries at depth 0: cascade chains started.
        roots: u64,
        /// Deliveries at depth > 0: realized parent→child edges.
        edges: u64,
        /// Cascade depth of every delivery (0 = root).
        depth: Histogram,
        /// Deliveries at the most populated depth level.
        width_max: u64,
        /// Deliveries by message kind (`MessageKind::index` order).
        handled_by_kind: Vec<u64>,
        /// Children emitted, indexed by the parent's kind.
        children_by_kind: Vec<u64>,
    },
    /// Emitted when the sink is detached: run totals and the online
    /// histograms.
    Summary {
        /// Total rounds executed.
        rounds: u64,
        /// Total messages sent over the run.
        total_sent: u64,
        /// Message latency in rounds (enqueue → deliver).
        latency: Histogram,
        /// Per-round channel depth high-water marks.
        depth: Histogram,
        /// lrl link age at forget events.
        forget_age: Histogram,
        /// lrl ring length (rank distance), sampled every
        /// `sample_every` rounds.
        lrl_len: Histogram,
        /// Message latency split by kind (`MessageKind::index` order).
        latency_by_kind: Vec<Histogram>,
        /// Cascade depth of every delivered message over the run
        /// (0 = root; see [`causal`]).
        cascade_depth: Histogram,
    },
}

/// A schema-versioned envelope around an [`Event`] — the unit a
/// [`Sink`] receives and a JSONL trace stores per line.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Schema version ([`SCHEMA_VERSION`] on emission).
    pub v: u32,
    /// The observation.
    pub event: Event,
}

impl Record {
    /// Wraps an event with the current schema version.
    pub fn new(event: Event) -> Self {
        Record {
            v: SCHEMA_VERSION,
            event,
        }
    }
}

/// Parses one JSONL line into a [`Record`], rejecting unknown schema
/// versions *before* interpreting the event payload.
pub fn parse_record(line: &str) -> Result<Record, String> {
    let value: serde::Value = serde_json::from_str(line).map_err(|e| e.to_string())?;
    let fields = serde::helpers::as_map(&value, "Record").map_err(|e| e.to_string())?;
    let v = fields
        .iter()
        .find(|(k, _)| k == "v")
        .ok_or_else(|| "record missing schema version field `v`".to_string())?;
    let version = u32::from_value(&v.1).map_err(|e| e.to_string())?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "unsupported schema_version {version} (expected {SCHEMA_VERSION})"
        ));
    }
    Record::from_value(&value).map_err(|e| e.to_string())
}

/// A consumer of observation [`Record`]s.
///
/// Sinks are strictly passive: the simulator hands them finished
/// records and never reads anything back, so a sink cannot perturb the
/// computation it observes. `Send` because networks (and therefore
/// their sinks) may be driven from worker threads.
pub trait Sink: Send {
    /// Consumes one record.
    fn record(&mut self, rec: &Record);
    /// Flushes any buffering (called on detach).
    fn flush(&mut self) {}
}

/// The do-nothing sink. Attaching it still routes `step` through the
/// instrumented monomorphization (events are built, then discarded
/// here); the *guaranteed-free* spelling is attaching no sink at all,
/// which selects the `OBS = false` copy of the round loop that
/// compiles to the pre-observability code. `NoopSink` exists for
/// generic call sites that must hand over *some* sink.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record(&mut self, _rec: &Record) {}
}

/// Streams records as JSON lines (one [`Record`] per line) into any
/// writer, buffered.
pub struct JsonlSink {
    out: std::io::BufWriter<Box<dyn std::io::Write + Send>>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// A sink over an arbitrary writer.
    pub fn new(writer: Box<dyn std::io::Write + Send>) -> Self {
        JsonlSink {
            out: std::io::BufWriter::new(writer),
        }
    }

    /// Creates (truncating) `path` and streams records into it.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(Self::new(Box::new(std::fs::File::create(path)?)))
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, rec: &Record) {
        let line = serde_json::to_string(rec).expect("record serialization cannot fail");
        writeln!(self.out, "{line}").expect("trace sink write failed");
    }

    fn flush(&mut self) {
        self.out.flush().expect("trace sink flush failed");
    }
}

/// Collects records in memory behind a shared handle — the test sink.
///
/// Backed by a [`FlightBuffer`] ring, so a forgotten long-soak sink can
/// no longer grow without bound: past [`MemorySink::DEFAULT_CAPACITY`]
/// records the oldest are evicted and `dropped_records` counts them.
/// Use [`MemorySink::with_capacity`] to size the window explicitly.
#[derive(Debug)]
pub struct MemorySink {
    records: Arc<Mutex<FlightBuffer>>,
}

impl MemorySink {
    /// Default ring capacity — roomy enough that every test trace fits
    /// unevicted, bounded enough that a soak cannot exhaust memory.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// A new sink plus the handle its records stay reachable through
    /// after the sink is attached (and consumed) by a network.
    pub fn new() -> (Self, Arc<Mutex<FlightBuffer>>) {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A sink whose ring keeps at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> (Self, Arc<Mutex<FlightBuffer>>) {
        let records = Arc::new(Mutex::new(FlightBuffer::new(capacity)));
        (
            MemorySink {
                records: Arc::clone(&records),
            },
            records,
        )
    }
}

impl Sink for MemorySink {
    fn record(&mut self, rec: &Record) {
        self.records
            .lock()
            .expect("memory sink poisoned")
            .push(rec.clone());
    }
}

/// Live observer state owned by an instrumented network: the sink plus
/// the four online histograms and per-round scratch. Private to the
/// crate — `Network` is the only driver.
pub(crate) struct ObsState {
    pub(crate) sink: Box<dyn Sink>,
    pub(crate) sample_every: u64,
    pub(crate) latency: Histogram,
    pub(crate) depth: Histogram,
    pub(crate) forget_age: Histogram,
    pub(crate) lrl_len: Histogram,
    /// Message latency split by kind (`MessageKind::index` order).
    pub(crate) latency_by_kind: Vec<Histogram>,
    /// Causal tracing: delivery ids, batch attribution, cascade stats.
    pub(crate) causal: CausalState,
    /// High-water channel depth seen so far in the current round.
    pub(crate) depth_round_max: u64,
    /// Scratch for the causal channel take: (message, enqueue round,
    /// provenance tag). Used only while a cascade window is open.
    pub(crate) tagged: Vec<(swn_core::message::Message, u64, CauseTag)>,
    /// Scratch for the cheap tagged take outside cascade windows:
    /// (message, enqueue round).
    pub(crate) pairs: Vec<(swn_core::message::Message, u64)>,
    /// Scratch for the sampled lrl-length scan: (id, lrl) ascending.
    pub(crate) lrl_scratch: Vec<(swn_core::id::NodeId, swn_core::id::NodeId)>,
}

impl std::fmt::Debug for ObsState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsState")
            .field("sample_every", &self.sample_every)
            .field("latency", &self.latency.count())
            .finish_non_exhaustive()
    }
}

impl ObsState {
    pub(crate) fn new(sink: Box<dyn Sink>, sample_every: u64) -> Self {
        ObsState {
            sink,
            sample_every: sample_every.max(1),
            latency: Histogram::new(),
            depth: Histogram::new(),
            forget_age: Histogram::new(),
            lrl_len: Histogram::new(),
            latency_by_kind: vec![Histogram::new(); MessageKind::COUNT],
            causal: CausalState::new(),
            depth_round_max: 0,
            tagged: Vec::new(),
            pairs: Vec::new(),
            lrl_scratch: Vec::new(),
        }
    }

    /// Wraps `ev` in a versioned [`Record`] and hands it to the sink.
    pub(crate) fn emit(&mut self, ev: Event) {
        self.sink.record(&Record::new(ev));
    }

    /// The end-of-run summary event (histograms cloned out).
    pub(crate) fn summary(&self, rounds: u64, total_sent: u64) -> Event {
        Event::Summary {
            rounds,
            total_sent,
            latency: self.latency.clone(),
            depth: self.depth.clone(),
            forget_age: self.forget_age.clone(),
            lrl_len: self.lrl_len.clone(),
            latency_by_kind: self.latency_by_kind.clone(),
            cascade_depth: self.causal.run_depth.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // 0 is its own bucket; 2^k opens bucket k+1; 2^k − 1 closes
        // bucket k.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        for k in 1..31 {
            let lo = 1u64 << k;
            assert_eq!(Histogram::bucket_index(lo), k + 1, "2^{k} opens bucket");
            assert_eq!(Histogram::bucket_index(lo - 1), k, "2^{k}-1 closes bucket");
            let (blo, bhi) = Histogram::bucket_bounds(k + 1);
            assert_eq!(blo, lo);
            if k + 1 < HIST_BUCKETS - 1 {
                assert_eq!(bhi, (lo << 1) - 1);
            }
        }
        // Everything at and beyond 2^32 collapses into the last bucket.
        assert_eq!(Histogram::bucket_index(1 << 32), HIST_BUCKETS - 1);
        assert_eq!(Histogram::bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_records_and_summarizes() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert!(h.mean().is_nan());
        for v in [0, 1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 21.2).abs() < 1e-9);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 2);
        assert!(h.is_well_formed());
    }

    #[test]
    fn approx_quantile_walks_buckets() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        assert_eq!(h.approx_quantile(0.5), 1);
        // p99 lands in 1000's bucket; the coarse answer is capped at max.
        assert_eq!(h.approx_quantile(0.99), 1000);
        assert_eq!(Histogram::new().approx_quantile(0.5), 0);
    }

    #[test]
    fn merge_is_commutative_and_associative_on_fixed_samples() {
        let build = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let a = build(&[0, 5, 17]);
        let b = build(&[1, 1, 1, 900]);
        let c = build(&[u64::MAX, 3]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must commute");
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge must associate");
        // And merging equals recording the concatenation.
        assert_eq!(ab_c, build(&[0, 5, 17, 1, 1, 1, 900, u64::MAX, 3]));
    }

    #[test]
    fn record_round_trips_through_jsonl() {
        let rec = Record::new(Event::Round {
            round: 17,
            sent: vec![4, 0, 1, 0, 0, 2, 2],
            delivered: 9,
            dropped: 1,
            bounced: 0,
            depth_max: 12,
        });
        let line = serde_json::to_string(&rec).expect("serialize");
        let back = parse_record(&line).expect("round trip");
        assert_eq!(back, rec);
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let rec = Record {
            v: SCHEMA_VERSION + 1,
            event: Event::Transition {
                round: 3,
                phase: "lcc".to_string(),
            },
        };
        let line = serde_json::to_string(&rec).expect("serialize");
        let err = parse_record(&line).unwrap_err();
        assert!(err.contains("unsupported schema_version"), "got: {err}");
        assert!(parse_record("not json").is_err());
        assert!(parse_record("42").is_err(), "non-map record rejected");
        assert!(
            parse_record("{\"event\":{}}")
                .unwrap_err()
                .contains("missing schema version"),
            "missing v rejected"
        );
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        // Write through a shared buffer we can inspect afterwards.
        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().expect("buffer").extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut sink = JsonlSink::new(Box::new(Shared(Arc::clone(&buf))));
        sink.record(&Record::new(Event::Transition {
            round: 1,
            phase: "lcc".to_string(),
        }));
        sink.record(&Record::new(Event::Transition {
            round: 2,
            phase: "list".to_string(),
        }));
        Sink::flush(&mut sink);
        let text = String::from_utf8(buf.lock().expect("buffer").clone()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            parse_record(line).expect("every line parses");
        }
    }

    #[test]
    fn memory_sink_shares_its_records() {
        let (mut sink, records) = MemorySink::new();
        sink.record(&Record::new(Event::Span {
            label: "join".to_string(),
            start: 5,
            end: 9,
        }));
        assert_eq!(records.lock().expect("records").len(), 1);
    }

    #[test]
    fn memory_sink_is_capped_by_its_flight_ring() {
        let (mut sink, records) = MemorySink::with_capacity(2);
        for round in 0..5 {
            sink.record(&Record::new(Event::Transition {
                round,
                phase: "lcc".to_string(),
            }));
        }
        let buf = records.lock().expect("records");
        assert_eq!(buf.len(), 2, "ring keeps only the newest records");
        assert_eq!(buf.dropped_records(), 3);
        let newest: Vec<u64> = buf
            .iter()
            .filter_map(|r| match &r.event {
                Event::Transition { round, .. } => Some(*round),
                _ => None,
            })
            .collect();
        assert_eq!(newest, vec![3, 4]);
    }
}
