//! `analyzer` — run the small-scope interleaving checker from the shell.
//!
//! ```text
//! analyzer [--n N] [--family line|star|clique|all] [--budget K]
//!          [--policy zeros|ones|all] [--reduction none|sleep]
//!          [--seed S] [--max-states M] [--channel-bound B] [--demo-fault]
//! ```
//!
//! Without flags it exhaustively checks every family at n = 3 with one
//! regular action per node under both randomness policies (~1 minute,
//! ~2.8M distinct states), and exits non-zero on any violation or
//! truncated (non-exhaustive) search. Budget 2 exceeds the default
//! 2M-state cap at n = 3; raise `--max-states` accordingly.
//! `--demo-fault` instead runs the deliberately broken `drop-lin` stepper
//! on the two-node fixture and prints the minimized counterexample — the
//! output a real protocol bug would produce.

#![forbid(unsafe_code)]

use swn_analyzer::{
    format_trace, minimize, DropLinStepper, ExploreConfig, Explorer, Family, Policy, RealStepper,
    Reduction, Stepper as _,
};

struct Args {
    n: usize,
    families: Vec<Family>,
    budget: u32,
    policies: Vec<Policy>,
    reduction: Reduction,
    seed: u64,
    max_states: usize,
    channel_bound: u32,
    demo_fault: bool,
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: analyzer [--n N] [--family line|star|clique|all] [--budget K] \
         [--policy zeros|ones|all] [--reduction none|sleep] [--seed S] \
         [--max-states M] [--channel-bound B] [--demo-fault]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        n: 3,
        families: Family::ALL.to_vec(),
        budget: 1,
        policies: Policy::ALL.to_vec(),
        reduction: Reduction::SleepSets,
        seed: 1,
        max_states: 2_000_000,
        channel_bound: 1,
        demo_fault: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i)
            .cloned()
            .unwrap_or_else(|| usage("flag needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--n" => {
                args.n = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("--n expects an integer"));
                if args.n < 2 || args.n > 5 {
                    usage("--n must be in 2..=5 (small-scope checker)");
                }
            }
            "--family" => {
                let v = value(&mut i);
                args.families = if v == "all" {
                    Family::ALL.to_vec()
                } else {
                    vec![Family::parse(&v)
                        .unwrap_or_else(|| usage("--family expects line|star|clique|all"))]
                };
            }
            "--budget" => {
                args.budget = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("--budget expects an integer"));
            }
            "--policy" => {
                let v = value(&mut i);
                args.policies = match v.as_str() {
                    "zeros" => vec![Policy::Zeros],
                    "ones" => vec![Policy::Ones],
                    "all" => Policy::ALL.to_vec(),
                    _ => usage("--policy expects zeros|ones|all"),
                };
            }
            "--reduction" => {
                let v = value(&mut i);
                args.reduction = match v.as_str() {
                    "none" => Reduction::None,
                    "sleep" => Reduction::SleepSets,
                    _ => usage("--reduction expects none|sleep"),
                };
            }
            "--seed" => {
                args.seed = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("--seed expects an integer"));
            }
            "--max-states" => {
                args.max_states = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("--max-states expects an integer"));
            }
            "--channel-bound" => {
                args.channel_bound = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("--channel-bound expects an integer"));
                if args.channel_bound == 0 {
                    usage("--channel-bound must be at least 1");
                }
            }
            "--demo-fault" => args.demo_fault = true,
            other => usage(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    args
}

fn run_demo_fault(args: &Args) {
    let initial = swn_analyzer::families::demo_fault_state(args.budget.min(1));
    let stepper = DropLinStepper;
    let cfg = ExploreConfig {
        policy: Policy::Zeros,
        reduction: args.reduction,
        max_states: args.max_states,
        ..ExploreConfig::default()
    };
    let report = Explorer::new(&stepper, cfg).run(&initial);
    let Some(found) = report.violation else {
        eprintln!("demo fixture unexpectedly clean — the monitors are broken");
        std::process::exit(1);
    };
    println!(
        "demo: injected fault '{}' caught after exploring {} states",
        stepper.label(),
        report.distinct_states
    );
    println!("raw trace: {} steps; minimizing...", found.trace.len());
    let min = minimize(&initial, &stepper, Policy::Zeros, &found.trace);
    print!("{}", format_trace(&initial, &stepper, Policy::Zeros, &min));
}

fn main() {
    let args = parse_args();
    if args.demo_fault {
        run_demo_fault(&args);
        return;
    }

    let mut failed = false;
    println!(
        "small-scope check: n = {}, budget = {}, seed = {}, reduction = {:?}, channel bound = {}",
        args.n, args.budget, args.seed, args.reduction, args.channel_bound
    );
    for &family in &args.families {
        for &policy in &args.policies {
            let initial =
                family.initial_state_bounded(args.n, args.budget, args.seed, args.channel_bound);
            let cfg = ExploreConfig {
                policy,
                reduction: args.reduction,
                max_states: args.max_states,
                ..ExploreConfig::default()
            };
            let report = Explorer::new(&RealStepper, cfg).run(&initial);
            let verdict = if let Some(found) = &report.violation {
                failed = true;
                format!("VIOLATION: {}", found.violation)
            } else if report.truncated {
                failed = true;
                "TRUNCATED (raise --max-states for an exhaustive run)".to_owned()
            } else {
                "ok (exhaustive)".to_owned()
            };
            println!(
                "  {:<6} policy={:<5} states={:>8} transitions={:>9} quiescent={:>6} depth={:>4}  {}",
                family.label(),
                policy.label(),
                report.distinct_states,
                report.transitions_executed,
                report.quiescent_states,
                report.max_depth_reached,
                verdict
            );
            if report.coalesced_sends > 0 {
                println!(
                    "         ({} sends coalesced by channel bound {}; exhaustive relative to it)",
                    report.coalesced_sends, args.channel_bound
                );
            }
            if let Some(found) = report.violation {
                let min = minimize(&initial, &RealStepper, policy, &found.trace);
                print!("{}", format_trace(&initial, &RealStepper, policy, &min));
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
