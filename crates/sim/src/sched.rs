//! The active-set scheduler: O(work) rounds instead of O(n).
//!
//! Under [`ScheduleMode::FullScan`] (the default) every live node runs
//! its receive and regular actions every round — the paper's weakly fair
//! schedule, and the byte-for-byte deterministic baseline all golden
//! traces pin. Under [`ScheduleMode::ActiveSet`] a round activates only
//! the nodes on the **agenda**: nodes with freshly enqueued mail, nodes
//! whose local state is not yet a verified fixpoint, and nodes touched
//! by churn or a fault. Once the network stabilizes the agenda drains to
//! empty and a round costs O(1) — *quiescence* — instead of an O(n)
//! scan that shuffles, probes and re-sends over a ring that can no
//! longer change.
//!
//! # The settlement certificate
//!
//! A node is **settled** when the engine has verified a local
//! certificate that its regular action cannot change any node's link
//! state (`network.rs::node_settled`):
//!
//! * each finite list pointer is properly sided *and reciprocated* by a
//!   live neighbour (`a < id`, `a.r == id`; symmetric on the right), so
//!   the `lin` re-advertisements it would send are fixpoint no-ops;
//! * a `-∞`/`+∞` side is held only by the **global** extreme, and the
//!   two extremes hold each other's ids as mutually paired ring edges —
//!   deliberately stronger than the protocol's own per-node ring
//!   validity (any correctly sided value), because only the global
//!   pairing is a fixpoint of ring-edge improvement: the stronger check
//!   keeps interleaved reciprocal chains (locally consistent, globally
//!   wrong) from freezing short of the sorted ring;
//! * an interior node carries no leftover ring edge (sanitation would
//!   erase it — a state change);
//! * its lrl token endpoint is itself or a live node.
//!
//! Settled nodes still run **receive** actions — mail always wakes a
//! node — but skip the regular action. That is the one scheduling
//! deviation from the paper: the perpetual lrl token walk (every
//! regular action sends `inc_lrl`, even to itself) pauses on settled
//! nodes, and their ages, probe ticks and probe cycles freeze with it.
//! Without the pause a converged ring would never go quiet; with it the
//! quiescence invariant holds: **an inactive node has no enabled action
//! that could change the global link state** (DESIGN.md §12).
//!
//! # Staleness
//!
//! A certificate mentions other nodes' state, so every mutation path
//! re-verifies the certificates it can invalidate: a node's own turn
//! diffs its `(l, r, ring)` tuple and rechecks old and new targets
//! (reciprocity is mutual, so the far end of every broken edge is in
//! one of the two tuples); joins recheck the sorted neighbours and both
//! extremes; leaves unsettle every node that stores the departed id;
//! crashes recheck the victim's pre-crash targets; perturbations the
//! rewritten ones. The oracle proptest (`tests/active_set_prop.rs`)
//! pins the whole construction against the full-scan engine, and the
//! quiescence proptest (`tests/quiescence_prop.rs`) pins the no-op
//! guarantee.

/// How the round loop picks the nodes that act (see the module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScheduleMode {
    /// Every live node acts every round — the paper's schedule and the
    /// bit-for-bit deterministic baseline.
    #[default]
    FullScan,
    /// Only agenda nodes act; stable rounds cost O(work), and a fully
    /// settled network reports quiescence.
    ActiveSet,
}

/// The scheduler's working state: one flag pair per slot plus the
/// agenda of slots that act next round. Slot-indexed (not id-indexed)
/// so the hot-path lookups are plain vector loads.
#[derive(Debug, Default)]
pub(crate) struct SchedState {
    /// `scheduled[slot]`: the slot is already on the agenda (dedup).
    scheduled: Vec<bool>,
    /// `settled[slot]`: the settlement certificate was verified and no
    /// mutation path has invalidated it since.
    settled: Vec<bool>,
    /// The slots that act next round, in scheduling order (canonicalized
    /// by the round loop before use).
    agenda: Vec<usize>,
    /// Agenda insertions since the last [`SchedState::take_wakeups`] —
    /// deduplicated `schedule` calls, i.e. how much waking actually
    /// happened. Feeds the live metrics plane only.
    wakeups: u64,
}

impl SchedState {
    /// A scheduler over `slots` slots, everything unscheduled and
    /// unsettled.
    pub(crate) fn new(slots: usize) -> Self {
        SchedState {
            scheduled: vec![false; slots],
            settled: vec![false; slots],
            agenda: Vec::new(),
            wakeups: 0,
        }
    }

    /// Grows the flag vectors to cover `slot` (new arena slots from
    /// churn joins).
    pub(crate) fn ensure_slot(&mut self, slot: usize) {
        if slot >= self.scheduled.len() {
            self.scheduled.resize(slot + 1, false);
            self.settled.resize(slot + 1, false);
        }
    }

    /// Puts `slot` on the next round's agenda (idempotent).
    pub(crate) fn schedule(&mut self, slot: usize) {
        self.ensure_slot(slot);
        if !self.scheduled[slot] {
            self.scheduled[slot] = true;
            self.agenda.push(slot);
            self.wakeups += 1;
        }
    }

    /// Agenda insertions since the last call, resetting the counter —
    /// drained once per round into the `swn_sched_wakeups_total`
    /// metric.
    pub(crate) fn take_wakeups(&mut self) -> u64 {
        std::mem::take(&mut self.wakeups)
    }

    /// Moves the agenda into `out` (appending) and clears the flags, so
    /// scheduling during the round targets the *next* round.
    pub(crate) fn begin_round(&mut self, out: &mut Vec<usize>) {
        for &slot in &self.agenda {
            self.scheduled[slot] = false;
        }
        out.append(&mut self.agenda);
    }

    /// True when `slot`'s settlement certificate is current.
    pub(crate) fn is_settled(&self, slot: usize) -> bool {
        self.settled.get(slot).copied().unwrap_or(false)
    }

    /// Records the outcome of a certificate verification.
    pub(crate) fn set_settled(&mut self, slot: usize, settled: bool) {
        self.ensure_slot(slot);
        self.settled[slot] = settled;
    }

    /// Number of slots on the agenda — an upper bound on next round's
    /// active nodes (entries whose slot died since scheduling are
    /// filtered at round start).
    pub(crate) fn active_len(&self) -> usize {
        self.agenda.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_idempotent_per_round() {
        let mut s = SchedState::new(4);
        s.schedule(2);
        s.schedule(2);
        s.schedule(0);
        assert_eq!(s.active_len(), 2);
        let mut out = Vec::new();
        s.begin_round(&mut out);
        assert_eq!(out, vec![2, 0]);
        assert_eq!(s.active_len(), 0);
        // Flags cleared: the same slot can be scheduled for the next
        // round while the current one runs.
        s.schedule(2);
        assert_eq!(s.active_len(), 1);
    }

    #[test]
    fn ensure_slot_grows_on_demand() {
        let mut s = SchedState::new(1);
        assert!(!s.is_settled(9));
        s.set_settled(9, true);
        assert!(s.is_settled(9));
        s.schedule(12);
        assert_eq!(s.active_len(), 1);
        assert!(!s.is_settled(12));
    }

    #[test]
    fn begin_round_appends_without_clobbering() {
        let mut s = SchedState::new(4);
        s.schedule(3);
        let mut out = vec![7usize];
        s.begin_round(&mut out);
        assert_eq!(out, vec![7, 3]);
    }

    #[test]
    fn wakeups_count_deduplicated_inserts_and_drain() {
        let mut s = SchedState::new(4);
        s.schedule(1);
        s.schedule(1); // deduplicated: no second wakeup
        s.schedule(2);
        assert_eq!(s.take_wakeups(), 2);
        assert_eq!(s.take_wakeups(), 0, "drained");
        let mut out = Vec::new();
        s.begin_round(&mut out);
        s.schedule(1); // re-schedulable after the round began
        assert_eq!(s.take_wakeups(), 1);
    }

    #[test]
    fn default_mode_is_full_scan() {
        assert_eq!(ScheduleMode::default(), ScheduleMode::FullScan);
    }
}
