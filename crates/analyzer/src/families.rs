//! Seeded initial-topology families for the small-scope search.
//!
//! The families reuse `swn_sim::init::generate`, so the checker explores
//! exactly the adversarial initial states the simulator's stabilization
//! experiments start from — line (a shuffled directed chain), star
//! (everyone points at a hub) and clique (well-typed neighbours plus
//! overflow links preloaded as stale `lin` messages).

use crate::state::State;
use swn_core::config::ProtocolConfig;
use swn_core::id::evenly_spaced_ids;
use swn_core::message::Message;
use swn_core::node::Node;
use swn_sim::init::{generate, InitialTopology};

/// An initial-topology family the checker knows how to seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Shuffled directed chain ([`InitialTopology::RandomChain`]).
    Line,
    /// All nodes point at one hub ([`InitialTopology::Star`]).
    Star,
    /// Complete digraph; overflow edges ride as stale `lin` preloads
    /// ([`InitialTopology::Clique`]).
    Clique,
}

impl Family {
    /// Every family, in CLI order.
    pub const ALL: [Family; 3] = [Family::Line, Family::Star, Family::Clique];

    /// CLI spelling / report label.
    pub fn label(self) -> &'static str {
        match self {
            Family::Line => "line",
            Family::Star => "star",
            Family::Clique => "clique",
        }
    }

    /// Parses a CLI spelling.
    pub fn parse(s: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.label() == s)
    }

    fn topology(self) -> InitialTopology {
        match self {
            Family::Line => InitialTopology::RandomChain,
            Family::Star => InitialTopology::Star,
            Family::Clique => InitialTopology::Clique,
        }
    }

    /// Builds the seeded initial [`State`] for this family on `n` evenly
    /// spaced identifiers, with `budget` regular actions per node and
    /// set-semantics channels (channel bound 1).
    pub fn initial_state(self, n: usize, budget: u32, seed: u64) -> State {
        self.initial_state_bounded(n, budget, seed, 1)
    }

    /// [`Family::initial_state`] with an explicit channel-multiplicity
    /// bound (see [`State::initial_bounded`]).
    pub fn initial_state_bounded(self, n: usize, budget: u32, seed: u64, bound: u32) -> State {
        let ids = evenly_spaced_ids(n);
        let init = generate(self.topology(), &ids, ProtocolConfig::default(), seed);
        State::initial_bounded(init.nodes, &init.preloads, budget, bound)
    }
}

/// The fixture behind `analyzer --demo-fault`: two fresh nodes whose only
/// connection is a `lin` message in flight. Under the real protocol the
/// delivery linearizes the carried identifier; under
/// [`DropLinStepper`](crate::stepper::DropLinStepper) it vanishes and CC
/// disconnects, which is the smallest possible monotonicity
/// counterexample.
pub fn demo_fault_state(budget: u32) -> State {
    let ids = evenly_spaced_ids(2);
    let nodes: Vec<Node> = ids
        .iter()
        .map(|&id| Node::new(id, ProtocolConfig::default()))
        .collect();
    State::initial(nodes, &[(ids[0], Message::Lin(ids[1]))], budget)
}

/// The fixture behind `analyzer --mutant bounce-lin`: three nodes
/// `a < b < c` where `a` and `c` already know each other (`a.r = c`,
/// `c.l = a`) and the middle node `b` is fresh — its only connection to
/// the rest is a `lin(b)` in flight to `a`. The real protocol adopts `b`
/// on delivery and converges to the ring; under
/// [`BounceLinStepper`](crate::stepper::BounceLinStepper) the message
/// bounces `a → c → a → …` forever while every safety monitor stays
/// green — the minimal convergence (fair-cycle) counterexample.
pub fn livelock_demo_state() -> State {
    let ids = evenly_spaced_ids(3);
    let cfg = ProtocolConfig::default();
    use swn_core::id::Extended;
    let nodes = vec![
        Node::with_state(
            ids[0],
            Extended::NegInf,
            Extended::Fin(ids[2]),
            ids[0],
            None,
            cfg,
        ),
        Node::new(ids[1], cfg),
        Node::with_state(
            ids[2],
            Extended::Fin(ids[0]),
            Extended::PosInf,
            ids[2],
            None,
            cfg,
        ),
    ];
    State::initial(nodes, &[(ids[0], Message::Lin(ids[1]))], 0)
}

/// The canonical sorted-ring configuration on `n` evenly spaced ids with
/// empty channels and `budget` regular actions per node — the seed of
/// the closure check (`--mode closure`): every state reachable from
/// here, through any interleaving of the ring's own chatter, must still
/// be the ring.
pub fn ring_state(n: usize, budget: u32) -> State {
    let ids = evenly_spaced_ids(n);
    let nodes = swn_core::invariants::make_sorted_ring(&ids, ProtocolConfig::default());
    State::initial(nodes, &[], budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_labels() {
        for f in Family::ALL {
            assert_eq!(Family::parse(f.label()), Some(f));
        }
        assert_eq!(Family::parse("ring"), None);
    }

    #[test]
    fn families_are_connected_at_seed_time() {
        for f in Family::ALL {
            for seed in 0..3 {
                let s = f.initial_state(3, 2, seed);
                assert_eq!(s.nodes.len(), 3);
                assert!(
                    s.eval().connected,
                    "family {} seed {seed} must start connected",
                    f.label()
                );
            }
        }
    }

    #[test]
    fn demo_fixture_is_connected_through_the_channel() {
        let s = demo_fault_state(0);
        assert!(s.eval().connected);
        assert_eq!(s.enabled().len(), 1, "exactly the lin delivery");
    }
}
