//! Property: the chaos engine classifies *every* finite-window campaign
//! scenario it can sample.
//!
//! The campaign's contract (DESIGN.md §14) is that a bounded fault
//! schedule always ends in one of two explained states: the network
//! recovers the sorted ring, or it is permanently disconnected with the
//! culprit state/message destruction named from the injector's log.
//! Panics, watch-budget exhaustion and unattributed disconnections are
//! all bugs — in the protocol, the injector or the watchdog itself.
//! This property drives randomly sampled scenarios (every fault
//! category, adversarial behaviors included) at n ≤ 64 and accepts
//! nothing but the two classified verdicts.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use swn_sim::chaos::{run_scenario, sample_scenario, CampaignConfig, Outcome};

fn cfg(seed: u64) -> CampaignConfig {
    CampaignConfig {
        seed,
        scenarios: 1,
        min_n: 8,
        max_n: 64,
        budget: 50_000,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn every_finite_window_scenario_is_classified(seed in 0u64..1_000_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = sample_scenario(&mut rng, &cfg(seed));
        let r = run_scenario(&s);
        prop_assert!(
            !matches!(r.outcome, Outcome::Panicked { .. }),
            "scenario panicked: {:?} — reproducer: {}",
            r.outcome,
            s.to_json()
        );
        prop_assert!(
            r.outcome.classified(),
            "unclassified outcome {:?} — reproducer: {}",
            r.outcome,
            s.to_json()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn json_replay_reproduces_the_run_bit_for_bit(seed in 0u64..1_000_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = sample_scenario(&mut rng, &cfg(seed));
        let replayed = swn_sim::chaos::Scenario::from_json(&s.to_json())
            .expect("sampled scenarios serialize round-trip");
        prop_assert_eq!(&replayed, &s);
        prop_assert_eq!(run_scenario(&replayed), run_scenario(&s));
    }
}
