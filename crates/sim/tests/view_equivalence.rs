//! Property tests for the snapshot-free measurement path.
//!
//! The borrowing view ([`Network::view`]) and the owned snapshot
//! ([`Network::snapshot`]) are two spellings of the *same* observation,
//! so every predicate must agree on them — across every initial-topology
//! family, several sizes and seeds, and at many points along a run. The
//! dirty-tracking flag ([`RoundStats::links_changed`]) is additionally
//! checked for soundness: a round reported clean must leave the
//! classification unchanged.
//!
//! [`Network::view`]: swn_sim::Network::view
//! [`Network::snapshot`]: swn_sim::Network::snapshot
//! [`RoundStats::links_changed`]: swn_sim::trace::RoundStats::links_changed

use swn_core::config::ProtocolConfig;
use swn_core::id::evenly_spaced_ids;
use swn_core::invariants::{
    classify, classify_view, is_small_world_structure, is_small_world_structure_view,
    is_sorted_list, is_sorted_list_view, is_sorted_ring, is_sorted_ring_view,
};
use swn_sim::channel::DeliveryPolicy;
use swn_sim::init::{generate, InitialTopology};
use swn_sim::Network;

fn assert_view_matches_snapshot(net: &Network, ctx: &str) {
    let s = net.snapshot();
    let v = net.view();
    assert_eq!(classify_view(&v), classify(&s), "classify: {ctx}");
    assert_eq!(is_sorted_list_view(&v), is_sorted_list(&s), "list: {ctx}");
    assert_eq!(is_sorted_ring_view(&v), is_sorted_ring(&s), "ring: {ctx}");
    assert_eq!(
        is_small_world_structure_view(&v),
        is_small_world_structure(&s),
        "small-world: {ctx}"
    );
    assert_eq!(
        v.messages_in_flight(),
        s.channels().iter().map(Vec::len).sum::<usize>(),
        "in-flight: {ctx}"
    );
}

#[test]
fn classify_view_equals_classify_snapshot_across_topologies_and_rounds() {
    for family in InitialTopology::ALL {
        for &n in &[5usize, 16] {
            for seed in 0..3u64 {
                let ids = evenly_spaced_ids(n);
                let mut net =
                    generate(family, &ids, ProtocolConfig::default(), seed).into_network(seed);
                for round in 0..30u64 {
                    let ctx = format!("{}/n{n}/s{seed}/r{round}", family.label());
                    assert_view_matches_snapshot(&net, &ctx);
                    net.step();
                }
            }
        }
    }
}

#[test]
fn equivalence_holds_under_churn() {
    let ids = evenly_spaced_ids(12);
    let mut net = Network::new(
        swn_core::invariants::make_sorted_ring(&ids, ProtocolConfig::default()),
        3,
    );
    net.run(5);
    let victims = net.ids();
    net.remove_node(victims[4]);
    net.remove_node(victims[9]);
    for round in 0..25u64 {
        assert_view_matches_snapshot(&net, &format!("churn/r{round}"));
        net.step();
    }
}

/// Soundness of the reclassification skip: whenever a round reports
/// `links_changed == false`, the phase classification is provably — and
/// here, empirically — identical before and after the round. RandomDelay
/// with a low delivery probability produces plenty of genuinely clean
/// rounds (nothing delivered, nothing rewired).
#[test]
fn clean_rounds_never_change_the_classification() {
    let policy = DeliveryPolicy::RandomDelay {
        p_deliver: 0.05,
        max_delay: 40,
    };
    let mut clean_rounds = 0u64;
    for seed in 0..4u64 {
        let ids = evenly_spaced_ids(10);
        let gen = generate(
            InitialTopology::RandomSparse { extra: 2 },
            &ids,
            ProtocolConfig::default(),
            seed,
        );
        let mut net = gen.into_network_with_policy(seed, policy);
        let mut phase = classify(&net.snapshot());
        for _ in 0..120 {
            let stats = net.step();
            let now = classify(&net.snapshot());
            if !stats.links_changed {
                clean_rounds += 1;
                assert_eq!(
                    now, phase,
                    "clean round changed the phase: dirty-tracking is unsound (seed {seed})"
                );
            }
            phase = now;
        }
    }
    assert!(
        clean_rounds > 0,
        "no clean rounds observed — the skip never exercises"
    );
}
