//! Parallel multi-trial execution.
//!
//! Every experiment aggregates tens to hundreds of independent seeded
//! trials. Trials share nothing, so we parallelize with scoped threads
//! over contiguous index chunks: each worker computes its chunk into a
//! thread-local vector and the chunks are concatenated in worker order.
//! Workers never contend on shared state — no mutex, no atomic cursor
//! — and the output is in index order by construction, with no
//! dependency beyond the standard library. The only cross-worker touch
//! is observational: each finished trial bumps the sharded
//! `swn_trials_completed_total` counter in the global metrics registry
//! (one relaxed per-lane add; see [`crate::metrics`]), so long
//! experiment batteries expose live progress.
//!
//! Because every trial derives its seed from its *index* (not from which
//! worker ran it or when), results are independent of the worker count:
//! `run_trials` on a 64-core box and a sequential fallback produce
//! identical vectors.

/// Runs `f` over `0..trials` on up to `available_parallelism` worker
/// threads and returns the results in index order. `f` must be `Sync`
/// because multiple workers call it concurrently (on distinct indices).
///
/// Falls back to sequential execution for tiny workloads, where thread
/// startup would dominate.
pub fn run_trials<R, F>(trials: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1);
    run_trials_on(workers, trials, f)
}

/// [`run_trials`] with an explicit worker count — the testable core, and
/// an override for callers that know better than `available_parallelism`
/// (e.g. trials so long that imbalance dominates).
///
/// Indices are split into `workers` contiguous chunks whose sizes differ
/// by at most one; worker `w` computes chunk `w` into its own vector.
pub fn run_trials_on<R, F>(workers: usize, trials: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let completed = crate::metrics::global().counter(
        "swn_trials_completed_total",
        "Simulation trials completed by run_trials workers",
    );
    // Wrap, don't instrument call sites: every trial bumps the live
    // counter on its own worker's lane, whatever path runs it.
    let f = move |i: usize| {
        let r = f(i);
        completed.inc();
        r
    };
    let workers = workers.min(trials);
    if workers <= 1 {
        return (0..trials).map(f).collect();
    }
    let base = trials / workers;
    let extra = trials % workers;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                // The first `extra` chunks get one additional trial.
                let start = w * base + w.min(extra);
                let end = start + base + usize::from(w < extra);
                let f = &f;
                scope.spawn(move || (start..end).map(f).collect::<Vec<R>>())
            })
            .collect();
        let mut out = Vec::with_capacity(trials);
        for h in handles {
            out.extend(h.join().expect("trial worker panicked"));
        }
        out
    })
}

/// Maps `f` over a slice in parallel, preserving order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    run_trials(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn results_are_in_index_order() {
        let out = run_trials(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn results_stay_in_index_order_with_skewed_workloads() {
        // Early indices take much longer than late ones, so without the
        // chunked collect, late workers would finish (and once wrote)
        // first. The output must still be in index order.
        let expect: Vec<usize> = (0..23).map(|i| i * i).collect();
        for workers in [2, 3, 5, 8, 23, 64] {
            let out = run_trials_on(workers, 23, |i| {
                if i < 4 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                i * i
            });
            assert_eq!(out, expect, "workers={workers}");
        }
    }

    #[test]
    fn output_is_independent_of_worker_count() {
        // Per-trial seeding means the result vector must not depend on
        // how many workers ran it (1 = the sequential fallback).
        let run = |workers| {
            run_trials_on(workers, 17, |i| {
                use rand::{RngExt as _, SeedableRng};
                let mut rng = rand::rngs::StdRng::seed_from_u64(1000 + i as u64);
                (0..50).map(|_| rng.random_range(0u64..1_000)).sum::<u64>()
            })
        };
        let sequential = run(1);
        for workers in [2, 4, 7, 17] {
            assert_eq!(run(workers), sequential, "workers={workers}");
        }
    }

    #[test]
    fn chunk_split_covers_all_indices_exactly_once() {
        // Uneven splits: trials not divisible by workers.
        for (workers, trials) in [(3usize, 10usize), (4, 6), (7, 8), (5, 5), (9, 2)] {
            let out = run_trials_on(workers, trials, |i| i);
            assert_eq!(out, (0..trials).collect::<Vec<_>>(), "{workers}w/{trials}t");
        }
    }

    #[test]
    fn each_index_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let out = run_trials(257, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 257);
        let distinct: HashSet<_> = out.iter().collect();
        assert_eq!(distinct.len(), 257);
    }

    #[test]
    fn trials_bump_the_global_completed_counter() {
        let c = crate::metrics::global().counter(
            "swn_trials_completed_total",
            "Simulation trials completed by run_trials workers",
        );
        let before = c.get();
        let _ = run_trials_on(3, 10, |i| i);
        assert!(c.get() >= before + 10, "10 trials completed");
    }

    #[test]
    fn zero_and_one_trials() {
        assert!(run_trials(0, |i| i).is_empty());
        assert_eq!(run_trials(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..50).collect();
        let out = par_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_simulation_trials_are_independent() {
        // Smoke test of the intended use: independent seeded simulations.
        use crate::convergence::run_to_ring;
        use crate::init::{generate, InitialTopology};
        use swn_core::config::ProtocolConfig;
        use swn_core::id::evenly_spaced_ids;

        let ids = evenly_spaced_ids(12);
        let reports = run_trials(8, |seed| {
            let mut net = generate(
                InitialTopology::RandomSparse { extra: 2 },
                &ids,
                ProtocolConfig::default(),
                seed as u64,
            )
            .into_network(seed as u64);
            run_to_ring(&mut net, 5000)
        });
        assert!(reports
            .iter()
            .all(super::super::convergence::ConvergenceReport::stabilized));
        // Sequential re-run of one trial reproduces the parallel result.
        let mut net = generate(
            InitialTopology::RandomSparse { extra: 2 },
            &ids,
            ProtocolConfig::default(),
            3,
        )
        .into_network(3);
        let seq = run_to_ring(&mut net, 5000);
        assert_eq!(seq.rounds_to_ring, reports[3].rounds_to_ring);
        assert_eq!(seq.messages_to_ring, reports[3].messages_to_ring);
    }
}
