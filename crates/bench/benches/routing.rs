//! Bench for experiment E3: greedy routing across the systems.
//! Graph construction happens in setup; the measured quantity is the
//! routing evaluation itself, so the relative numbers mirror the
//! mean-hops table (more hops = more time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use swn_harness::e3_routing::{build_graph, Params, System};
use swn_topology::routing::{evaluate_routing, greedy_route};

fn bench_routing_systems(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_routing");
    group.sample_size(10);
    let p = Params {
        sizes: vec![1024],
        protocol_max_n: 1024,
        pairs: 200,
        epsilon: 0.1,
    };
    let n = 1024;
    for sys in System::ALL {
        let Some(g) = build_graph(sys, n, &p, 42) else {
            continue;
        };
        group.bench_with_input(
            BenchmarkId::new("evaluate_200_pairs", sys.label()),
            &g,
            |b, g| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(evaluate_routing(
                        g,
                        p.pairs,
                        8 * u32::try_from(n).expect("bench size fits u32"),
                        seed,
                        None,
                    ))
                });
            },
        );
    }
    group.finish();
}

fn bench_single_route(c: &mut Criterion) {
    let p = Params::quick();
    let g = build_graph(System::Kleinberg, 4096, &p, 3).expect("kleinberg builds");
    c.bench_function("e3_routing/single_greedy_route_4096", |b| {
        let mut s = 0usize;
        b.iter(|| {
            s = (s + 997) % 4096;
            let t = (s + 2048) % 4096;
            black_box(greedy_route(&g, s, t, 100_000))
        });
    });
}

criterion_group!(benches, bench_routing_systems, bench_single_route);
criterion_main!(benches);
