//! The `report` subcommand: renders a JSONL observation trace (written
//! via `--trace-out`, see [`crate::runlog`]) as a human-readable run
//! report — per-phase time breakdown, convergence timeline,
//! message-kind mix over time and the distribution summaries.

use std::fmt::Write as _;
use swn_core::message::MessageKind;
use swn_sim::obs::{parse_record, Event, Histogram};

/// Renders the report for a JSONL trace (one record per line). Fails on
/// malformed lines and unknown schema versions, with the line number.
pub fn render_report(jsonl: &str) -> Result<String, String> {
    let mut events = Vec::new();
    for (lineno, line) in jsonl.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let rec = parse_record(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        events.push(rec.event);
    }
    if events.is_empty() {
        return Err("trace contains no records".to_string());
    }
    let mut out = String::new();
    let _ = writeln!(out, "run report ({} records)", events.len());
    render_meta(&mut out, &events);
    render_timeline(&mut out, &events);
    render_phases(&mut out, &events);
    render_mix(&mut out, &events);
    render_cascades(&mut out, &events);
    render_summary(&mut out, &events);
    Ok(out)
}

fn render_meta(out: &mut String, events: &[Event]) {
    for e in events {
        if let Event::RunMeta {
            n,
            seed,
            policy,
            sample_every,
            round,
        } = e
        {
            let _ = writeln!(
                out,
                "  n={n} seed={seed} policy={policy} sample_every={sample_every} attached@round {round}"
            );
        }
    }
}

fn render_timeline(out: &mut String, events: &[Event]) {
    let transitions: Vec<(&str, u64)> = events
        .iter()
        .filter_map(|e| match e {
            Event::Transition { round, phase } => Some((phase.as_str(), *round)),
            _ => None,
        })
        .collect();
    let spans: Vec<(&str, u64, u64)> = events
        .iter()
        .filter_map(|e| match e {
            Event::Span { label, start, end } => Some((label.as_str(), *start, *end)),
            _ => None,
        })
        .collect();
    let faults: Vec<(u64, &str, &str)> = events
        .iter()
        .filter_map(|e| match e {
            Event::Fault {
                round,
                kind,
                detail,
            } => Some((*round, kind.as_str(), detail.as_str())),
            _ => None,
        })
        .collect();
    let verdicts: Vec<(u64, &str, &str)> = events
        .iter()
        .filter_map(|e| match e {
            Event::Verdict {
                round,
                outcome,
                detail,
            } => Some((*round, outcome.as_str(), detail.as_str())),
            _ => None,
        })
        .collect();
    if transitions.is_empty() && spans.is_empty() && faults.is_empty() && verdicts.is_empty() {
        return;
    }
    let _ = writeln!(out, "\nconvergence timeline");
    if !transitions.is_empty() {
        let marks: Vec<String> = transitions
            .iter()
            .map(|(phase, round)| format!("{phase}@{round}"))
            .collect();
        let _ = writeln!(out, "  {}", marks.join("  "));
    }
    for (round, kind, detail) in faults {
        let _ = writeln!(out, "  fault {kind}@{round}: {detail}");
    }
    for (label, start, end) in spans {
        let _ = writeln!(
            out,
            "  span {label}: rounds {start} -> {end} ({} rounds)",
            end.saturating_sub(start)
        );
    }
    for (round, outcome, detail) in verdicts {
        let _ = writeln!(out, "  verdict {outcome}@{round}: {detail}");
    }
}

#[allow(clippy::cast_precision_loss)]
fn render_phases(out: &mut String, events: &[Event]) {
    const NAMES: [&str; 5] = ["shuffle", "channel", "deliver", "flush", "stats"];
    let samples: Vec<[u64; 5]> = events
        .iter()
        .filter_map(|e| match e {
            Event::PhaseTimes {
                shuffle_ns,
                channel_ns,
                deliver_ns,
                flush_ns,
                stats_ns,
                ..
            } => Some([*shuffle_ns, *channel_ns, *deliver_ns, *flush_ns, *stats_ns]),
            _ => None,
        })
        .collect();
    if samples.is_empty() {
        return;
    }
    let mut mean = [0f64; 5];
    for s in &samples {
        for (m, &v) in mean.iter_mut().zip(s) {
            *m += v as f64;
        }
    }
    for m in &mut mean {
        *m /= samples.len() as f64;
    }
    let total: f64 = mean.iter().sum();
    let _ = writeln!(
        out,
        "\nphase-time breakdown (mean over {} sampled rounds, total {:.1} us/round)",
        samples.len(),
        total / 1_000.0
    );
    for (name, m) in NAMES.iter().zip(&mean) {
        let pct = if total > 0.0 { 100.0 * m / total } else { 0.0 };
        let _ = writeln!(out, "  {name:<8} {:>10.1} ns  {pct:>5.1}%", m);
    }
}

fn render_mix(out: &mut String, events: &[Event]) {
    let rounds: Vec<(u64, &Vec<u64>)> = events
        .iter()
        .filter_map(|e| match e {
            Event::Round { round, sent, .. } => Some((*round, sent)),
            _ => None,
        })
        .collect();
    if rounds.is_empty() {
        return;
    }
    let _ = writeln!(out, "\nmessage-kind mix over time (sampled rounds)");
    let mut header = String::from("  rounds          ");
    for kind in MessageKind::ALL {
        let _ = write!(header, "{:>8}", kind.name());
    }
    let _ = writeln!(out, "{header}{:>8}", "total");
    // Up to six windows of consecutive samples, so long runs stay
    // readable without losing the time dimension.
    let per_window = rounds.len().div_ceil(6).max(1);
    for w in rounds.chunks(per_window) {
        let lo = w.first().map_or(0, |&(r, _)| r);
        let hi = w.last().map_or(0, |&(r, _)| r);
        let mut sums = vec![0u64; MessageKind::COUNT];
        for (_, sent) in w {
            for (acc, &s) in sums.iter_mut().zip(sent.iter()) {
                *acc += s;
            }
        }
        let mut row = format!("  {:>6} ..{:>6}  ", lo, hi);
        for s in &sums {
            let _ = write!(row, "{s:>8}");
        }
        let _ = writeln!(out, "{row}{:>8}", sums.iter().sum::<u64>());
    }
}

/// Repair-cascade sections: one per [`Event::Cascade`], with the DAG
/// shape (roots/edges/depth/width) and the per-message-kind fan-out —
/// how many follow-up sends each handled kind caused on average.
#[allow(clippy::cast_precision_loss)]
fn render_cascades(out: &mut String, events: &[Event]) {
    for e in events {
        if let Event::Cascade {
            label,
            start,
            end,
            delivered,
            roots,
            edges,
            depth,
            width_max,
            handled_by_kind,
            children_by_kind,
        } = e
        {
            let _ = writeln!(
                out,
                "\nrepair cascade \"{label}\": rounds {start} -> {end} ({} rounds)",
                end.saturating_sub(*start)
            );
            let _ = writeln!(
                out,
                "  {delivered} deliveries = {roots} roots + {edges} caused, depth max {}, width max {width_max}",
                depth.max()
            );
            render_hist(out, "cascade depth (hops from root)", depth);
            let _ = writeln!(
                out,
                "  per-kind fan-out (children caused per handled message)"
            );
            let _ = writeln!(
                out,
                "    {:<8} {:>10} {:>10} {:>8}",
                "kind", "handled", "children", "fan-out"
            );
            for kind in MessageKind::ALL {
                let handled = handled_by_kind.get(kind.index()).copied().unwrap_or(0);
                let children = children_by_kind.get(kind.index()).copied().unwrap_or(0);
                if handled == 0 && children == 0 {
                    continue;
                }
                let fanout = if handled > 0 {
                    children as f64 / handled as f64
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "    {:<8} {handled:>10} {children:>10} {fanout:>8.2}",
                    kind.name()
                );
            }
        }
    }
}

fn render_summary(out: &mut String, events: &[Event]) {
    for e in events {
        if let Event::Summary {
            rounds,
            total_sent,
            latency,
            depth,
            forget_age,
            lrl_len,
            latency_by_kind,
            cascade_depth,
        } = e
        {
            let _ = writeln!(out, "\ntotals: {rounds} rounds, {total_sent} messages sent");
            render_hist(out, "latency (rounds, enqueue->deliver)", latency);
            render_latency_by_kind(out, latency_by_kind);
            render_hist(out, "channel depth high-water (msgs)", depth);
            render_hist(out, "cascade depth (all windows)", cascade_depth);
            render_hist(out, "lrl age at forget (rounds)", forget_age);
            render_hist(out, "lrl length (rank distance)", lrl_len);
        }
    }
}

/// Per-message-kind latency percentile table. Kinds that never saw a
/// delivery are skipped, so Immediate-policy runs (all-zero latency)
/// still show which kinds actually flowed.
fn render_latency_by_kind(out: &mut String, hists: &[Histogram]) {
    if hists.iter().all(Histogram::is_empty) {
        return;
    }
    let _ = writeln!(out, "  latency percentiles by message kind (rounds)");
    let _ = writeln!(
        out,
        "    {:<8} {:>10} {:>8} {:>6} {:>6} {:>6} {:>6}",
        "kind", "n", "mean", "p50", "p90", "p99", "max"
    );
    for kind in MessageKind::ALL {
        let Some(h) = hists.get(kind.index()) else {
            continue;
        };
        if h.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "    {:<8} {:>10} {:>8.2} {:>6} {:>6} {:>6} {:>6}",
            kind.name(),
            h.count(),
            h.mean(),
            h.approx_quantile(0.5),
            h.approx_quantile(0.9),
            h.approx_quantile(0.99),
            h.max()
        );
    }
}

#[allow(
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss
)]
fn render_hist(out: &mut String, name: &str, h: &Histogram) {
    if h.is_empty() {
        let _ = writeln!(out, "  {name}: no samples");
        return;
    }
    let _ = writeln!(
        out,
        "  {name}: n={} mean={:.2} p50<={} p99<={} max={}",
        h.count(),
        h.mean(),
        h.approx_quantile(0.5),
        h.approx_quantile(0.99),
        h.max()
    );
    let peak = h.buckets().iter().copied().max().unwrap_or(1).max(1);
    for (b, &c) in h.buckets().iter().enumerate() {
        if c == 0 {
            continue;
        }
        let (lo, hi) = Histogram::bucket_bounds(b);
        let label = if lo == hi {
            format!("{lo}")
        } else if hi == u64::MAX {
            format!("{lo}+")
        } else {
            format!("{lo}-{hi}")
        };
        let width = ((c as f64 / peak as f64) * 40.0).ceil() as usize;
        let _ = writeln!(out, "    {label:>12} |{} {c}", "#".repeat(width.max(1)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swn_sim::obs::Record;

    fn line(ev: Event) -> String {
        serde_json::to_string(&Record::new(ev)).expect("serialize")
    }

    fn sample_trace() -> String {
        let mut h = Histogram::new();
        h.record(1);
        h.record(1);
        h.record(3);
        let events = vec![
            Event::RunMeta {
                n: 16,
                seed: 7,
                policy: "Immediate".to_string(),
                sample_every: 4,
                round: 0,
            },
            Event::Round {
                round: 4,
                sent: vec![10, 2, 1, 1, 1, 0, 0],
                delivered: 15,
                dropped: 0,
                bounced: 0,
                depth_max: 3,
            },
            Event::PhaseTimes {
                round: 4,
                shuffle_ns: 100,
                channel_ns: 300,
                deliver_ns: 500,
                flush_ns: 80,
                stats_ns: 20,
            },
            Event::Transition {
                round: 2,
                phase: "lcc".to_string(),
            },
            Event::Transition {
                round: 5,
                phase: "list".to_string(),
            },
            Event::Transition {
                round: 9,
                phase: "ring".to_string(),
            },
            Event::Span {
                label: "join".to_string(),
                start: 10,
                end: 14,
            },
            Event::Fault {
                round: 10,
                kind: "crash".to_string(),
                detail: "node 0.5 down for 4 rounds".to_string(),
            },
            Event::Verdict {
                round: 14,
                outcome: "recovered".to_string(),
                detail: "rounds=4".to_string(),
            },
            Event::Cascade {
                label: "recovery".to_string(),
                start: 10,
                end: 14,
                delivered: 9,
                roots: 2,
                edges: 7,
                depth: h.clone(),
                width_max: 4,
                handled_by_kind: vec![5, 4, 0, 0, 0, 0, 0],
                children_by_kind: vec![6, 1, 0, 0, 0, 0, 0],
            },
            Event::Summary {
                rounds: 9,
                total_sent: 123,
                latency: h.clone(),
                depth: h.clone(),
                forget_age: Histogram::new(),
                lrl_len: h.clone(),
                latency_by_kind: {
                    let mut per_kind = vec![Histogram::new(); MessageKind::COUNT];
                    per_kind[0] = h.clone();
                    per_kind
                },
                cascade_depth: h,
            },
        ];
        events.into_iter().map(line).collect::<Vec<_>>().join("\n")
    }

    #[test]
    fn report_contains_every_section() {
        let report = render_report(&sample_trace()).expect("render");
        assert!(report.contains("n=16 seed=7"), "{report}");
        assert!(report.contains("lcc@2"), "{report}");
        assert!(report.contains("list@5"), "{report}");
        assert!(report.contains("ring@9"), "{report}");
        assert!(report.contains("span join: rounds 10 -> 14 (4 rounds)"));
        assert!(report.contains("fault crash@10: node 0.5 down"), "{report}");
        assert!(
            report.contains("verdict recovered@14: rounds=4"),
            "{report}"
        );
        assert!(report.contains("phase-time breakdown"), "{report}");
        assert!(report.contains("deliver"), "{report}");
        assert!(report.contains("message-kind mix"), "{report}");
        assert!(report.contains("lin"), "kind names present: {report}");
        assert!(report.contains("123 messages sent"), "{report}");
        assert!(report.contains("latency (rounds"), "{report}");
        assert!(
            report.contains("latency percentiles by message kind"),
            "{report}"
        );
        assert!(report.contains("p90"), "{report}");
        assert!(
            report.contains("repair cascade \"recovery\": rounds 10 -> 14"),
            "{report}"
        );
        assert!(
            report.contains("9 deliveries = 2 roots + 7 caused"),
            "{report}"
        );
        assert!(report.contains("per-kind fan-out"), "{report}");
        // lin: 6 children / 5 handled = 1.20 fan-out.
        assert!(report.contains("1.20"), "{report}");
        assert!(report.contains("cascade depth"), "{report}");
        assert!(report.contains("no samples"), "empty forget hist: {report}");
        // The deliver phase dominates the synthetic sample: 500/1000.
        assert!(report.contains("50.0%"), "{report}");
    }

    #[test]
    fn report_rejects_bad_input() {
        assert!(render_report("").unwrap_err().contains("no records"));
        assert!(render_report("not json").unwrap_err().contains("line 1"));
        let mut bad = line(Event::Transition {
            round: 1,
            phase: "lcc".to_string(),
        });
        bad = bad.replace("\"v\":2", "\"v\":999");
        let err = render_report(&bad).unwrap_err();
        assert!(err.contains("unsupported schema_version"), "{err}");
    }
}
