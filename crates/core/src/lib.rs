//! # swn-core — the self-stabilizing small-world protocol
//!
//! A faithful implementation of *"A Self-Stabilization Process for
//! Small-World Networks"* (Kniesburges, Koutsopoulos, Scheideler,
//! IPPS 2012): a distributed, asynchronous message-passing protocol whose
//! computations converge, from **any weakly connected initial state**, to
//! a sorted ring enhanced with one long-range link per node, the link
//! lengths following the 1-harmonic distribution of Chaintreau et
//! al.'s *move-and-forget* process — i.e. a navigable one-dimensional
//! small-world network with polylogarithmic greedy routing.
//!
//! ## Layout
//!
//! * [`id`] — identifiers in `[0,1)` and the `±∞` sentinels;
//! * [`message`] — the seven message types of Section III;
//! * [`config`] — the protocol parameters (ε, ablation knobs);
//! * [`node`] — per-node state and the receive/regular actions
//!   (Algorithm 1), with the handlers split by concern:
//!   linearization (Algorithm 2), long-range links (Algorithms 3–4),
//!   ring edges (Algorithms 7–8), probing (Algorithms 5, 6, 10);
//! * [`forget`] — the forget probability φ(α);
//! * [`outbox`] — the effect buffer decoupling protocol logic from
//!   transport (simulator, threaded runtime, tests);
//! * [`views`] — the connectivity graphs CC/CP/LCC/LCP/RCC/RCP of
//!   Definition 4.2, extracted from global snapshots;
//! * [`invariants`] — the phase predicates of the convergence proof
//!   (sorted list, sorted ring, classification).
//!
//! The crate is deliberately transport-free: handlers are pure state
//! transitions emitting sends into an [`outbox::Outbox`]. Drive them with
//! `swn-sim` (the discrete-event simulator used for every experiment) or
//! `swn-runtime` (a genuinely concurrent threaded runtime).
//!
//! ## Example
//!
//! ```
//! use swn_core::prelude::*;
//! use rand::SeedableRng;
//!
//! let cfg = ProtocolConfig::default();
//! let mut node = Node::new(NodeId::from_fraction(0.5), cfg);
//! let mut out = Outbox::new();
//!
//! // Another node announces itself: it becomes our right neighbour.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! node.on_message(Message::Lin(NodeId::from_fraction(0.7)), &mut rng, &mut out);
//! assert_eq!(node.right().fin(), Some(NodeId::from_fraction(0.7)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod forget;
pub mod id;
pub mod invariants;
mod linearize;
mod lrl;
pub mod message;
pub mod node;
pub mod outbox;
mod probing;
mod ring;
pub mod views;

/// One-stop imports for users of the protocol crate.
pub mod prelude {
    pub use crate::config::ProtocolConfig;
    pub use crate::forget::phi;
    pub use crate::id::{evenly_spaced_ids, random_ids, Extended, NodeId};
    pub use crate::invariants::{
        classify, is_small_world_structure, is_sorted_list, is_sorted_ring, make_sorted_ring,
        weakly_connected, Phase,
    };
    pub use crate::message::{Message, MessageKind};
    pub use crate::node::Node;
    pub use crate::outbox::{Outbox, ProtocolEvent, Side};
    pub use crate::views::{Snapshot, View};
}
