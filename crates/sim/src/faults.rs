//! Deterministic fault injection and the recovery watchdog.
//!
//! The paper's self-stabilization claim (Theorems 4.3/4.18/4.24) is a
//! statement about recovery from *transient faults*, yet the base
//! simulator only perturbs the start state: [`Channel`] is lossless and
//! nodes never fail mid-run. This module injects faults into the
//! running protocol, deterministically:
//!
//! * a seedable, serde-serializable [`FaultPlan`] — per-round message
//!   drop/duplication rate windows, transient bidirectional
//!   [`Partition`]s, node [`Crash`]+restart with channel loss, and
//!   random [`Perturbation`] of k nodes' neighbour state;
//! * a [`FaultInjector`] owned by the network (`Network::attach_faults`)
//!   with its **own RNG stream** seeded from the plan, so the protocol
//!   computation's RNG draws are untouched: a network with an *empty*
//!   plan attached replays the fault-free run bit-for-bit, and the
//!   detached path stays byte-identical via a `FAULTS` const-generic
//!   arm of the round loop (see `Network::step`);
//! * a convergence **watchdog** ([`watch_recovery`]) over the union
//!   knowledge graph (the CC view: stored links ∪ in-flight payloads).
//!   Linearize *forwards without storing*, so a dropped `lin` message
//!   can carry the sole remaining reference to an identifier. Knowledge
//!   is closed under the protocol — no rule invents an identifier — so
//!   once CC disconnects it can never reconnect, and the watchdog
//!   reports the culprit drop as root cause instead of letting the run
//!   time out silently. (An injected [`Perturbation`] *can* re-link
//!   components by oracle, so E10 schedules perturbations before, not
//!   after, its loss windows.)
//!
//! [`Channel`]: crate::channel::Channel

use crate::network::Network;
use crate::obs::causal::CascadeReport;
use crate::obs::Event;
use rand::rngs::StdRng;
use rand::seq::SliceRandom as _;
use rand::{Rng, RngExt as _, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use swn_core::id::{Extended, NodeId};
use swn_core::invariants::{component_labels_view, is_sorted_ring_view, weakly_connected_view};
use swn_core::message::{Message, MessageKind};
use swn_core::node::Node;
use swn_core::views::View;

/// Cap on the retained drop log. Old entries are evicted from the
/// front, so culprit analysis always sees the most recent drops.
const DROP_LOG_CAP: usize = 8192;

/// A message-loss (or duplication) probability active over a half-open
/// round window `start..end`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RateWindow {
    /// First round (inclusive) the rate applies to.
    pub start: u64,
    /// First round (exclusive) the rate no longer applies to.
    pub end: u64,
    /// Per-message probability in `[0, 1]`.
    pub p: f64,
}

impl RateWindow {
    /// True when the window covers `round` with a non-zero rate. A
    /// `p = 0` window never consumes injector RNG, so it is exactly
    /// equivalent to no window at all.
    pub fn active(&self, round: u64) -> bool {
        self.p > 0.0 && round >= self.start && round < self.end
    }
}

/// A transient bidirectional partition: while active, every message
/// between the two sides of the id-space cut at `cut` is dropped
/// (nodes `≤ cut` on one side, `> cut` on the other).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// First round (inclusive) the partition holds.
    pub start: u64,
    /// First round (exclusive) the partition is healed.
    pub end: u64,
    /// The id-space cut point.
    pub cut: NodeId,
}

impl Partition {
    /// True when the partition is in force at `round`.
    pub fn active(&self, round: u64) -> bool {
        round >= self.start && round < self.end
    }

    /// True when the partition (if active) separates `a` from `b`.
    pub fn cuts(&self, a: NodeId, b: NodeId) -> bool {
        (a <= self.cut) != (b <= self.cut)
    }
}

/// How a crashed node rejoins when its downtime ends.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum Restart {
    /// The node comes back with blank joining state; its former
    /// neighbours' stored pointers are what reintegrate it.
    #[default]
    Amnesia,
    /// The node restores the state it had at the start of round
    /// `snapshot_round` (captured by the injector before the crash
    /// lands, like a periodic checkpoint written to disk). The restored
    /// view is stale — pointers may reference since-departed or moved
    /// neighbours — but it is a *valid* protocol state, so recovery is
    /// bounded by re-validation instead of a full rejoin.
    Durable {
        /// The round whose start-of-round state is restored. Must be
        /// `≤` the crash round; when no capture exists (e.g. the node
        /// was already down at `snapshot_round`) the restart degrades
        /// to amnesia.
        snapshot_round: u64,
    },
}

/// A node crash with restart: at `round` the node loses its volatile
/// state and its channel content, then sits out `down_for` rounds —
/// messages addressed to it while down are lost. How it comes back is
/// governed by [`Restart`]: blank ([`Restart::Amnesia`]) or from its
/// last checkpoint ([`Restart::Durable`]).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Crash {
    /// The round the crash lands in.
    pub round: u64,
    /// The crashing node.
    pub node: NodeId,
    /// Rounds the node stays down (min 1).
    pub down_for: u64,
    /// How the node rejoins after its downtime.
    pub restart: Restart,
}

/// A random corruption of `k` live nodes' neighbour state at `round`:
/// each victim's `r`, `lrl` and `ring` variables are rewritten to
/// uniformly random live identifiers (its `l` pointer is kept, so the
/// stored left-pointer chain keeps the knowledge graph weakly connected
/// — the damage is always recoverable by Theorem 4.3 unless a
/// subsequent loss fault severs a sole carrier). Ages and probe phases
/// reset with the rebuild.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Perturbation {
    /// The round the perturbation lands in.
    pub round: u64,
    /// Number of victims (clamped to the live population).
    pub k: usize,
}

/// How a [`Misbehavior::LyingState`] node perturbs the neighbour
/// identifiers it advertises.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LieMode {
    /// Every advertised identifier is replaced by the liar's own id —
    /// the node claims to be everyone's best neighbour.
    SelfPromote,
    /// Every advertised identifier is replaced by a uniformly random
    /// *live* identifier (drawn from the injector's per-round pool), so
    /// payloads stay within the knowledge closure but point nowhere
    /// useful.
    Scramble,
}

/// A windowed per-node adversarial behavior. Unlike the benign faults
/// above (which lose or corrupt state obliviously), a behavior makes a
/// specific node *misbehave* while still participating in the protocol.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Misbehavior {
    /// Silently refuses to emit or forward messages of the given kinds
    /// with probability `p` per send. A dropped-forwarding node: its
    /// handler runs normally, but chosen output kinds never leave.
    SelectiveForward {
        /// The message kinds refused (must be non-empty).
        kinds: Vec<MessageKind>,
        /// Per-send refusal probability in `[0, 1]`.
        p: f64,
    },
    /// Advertises perturbed list/ring neighbours in outgoing payloads:
    /// every identifier the node sends is forged per [`LieMode`]. The
    /// true payload is recorded in the drop log (the liar effectively
    /// destroyed it), so sole-carrier disconnections stay attributable.
    LyingState {
        /// How the advertised identifiers are perturbed.
        mode: LieMode,
    },
    /// At the window start, `k` sybil joiners with identifiers crammed
    /// into an ε-interval right of `center` join through the behaving
    /// node as contact — an id-clustering attack on the emergent
    /// topology. The sybils then run the honest protocol; the attack is
    /// the id placement, not the behaviour.
    SybilCluster {
        /// Number of joiners (min 1).
        k: usize,
        /// Left end of the ε-interval the sybil ids are packed into.
        center: NodeId,
    },
}

impl Misbehavior {
    /// Stable label for events and per-class reporting.
    pub fn label(&self) -> &'static str {
        match self {
            Misbehavior::SelectiveForward { .. } => "selective_forward",
            Misbehavior::LyingState { .. } => "lying_state",
            Misbehavior::SybilCluster { .. } => "sybil_cluster",
        }
    }
}

/// A [`Misbehavior`] bound to a node over a half-open round window.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Behavior {
    /// First round (inclusive) the behavior is in force.
    pub start: u64,
    /// First round (exclusive) the behavior is over.
    pub end: u64,
    /// The misbehaving node (for [`Misbehavior::SybilCluster`], the
    /// contact the sybils join through).
    pub node: NodeId,
    /// What the node does.
    pub kind: Misbehavior,
}

impl Behavior {
    /// True while the behavior window covers `round`.
    pub fn active(&self, round: u64) -> bool {
        round >= self.start && round < self.end
    }
}

/// The deterministic sybil identifier cluster for a
/// [`Misbehavior::SybilCluster`]: `k` ids packed one ulp apart
/// immediately right of `center` (wrapping at the id-space top). No RNG
/// is involved — the cluster is a function of the plan alone.
pub fn sybil_ids(center: NodeId, k: usize) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(k);
    let mut bits = center.bits();
    for _ in 0..k {
        bits = bits.wrapping_add(1);
        out.push(NodeId::from_bits(bits));
    }
    out
}

/// A deterministic, serializable schedule of faults. Attach to a
/// network with `Network::attach_faults`; the same plan + network seed
/// replays the exact same faulted computation.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the injector's private RNG stream (drop/duplicate coin
    /// flips, perturbation victim/target picks). Independent of the
    /// network seed by construction.
    pub seed: u64,
    /// Message-loss rate windows. For overlapping windows the first
    /// active one wins.
    pub drop: Vec<RateWindow>,
    /// Message-duplication rate windows (an extra copy is enqueued).
    pub duplicate: Vec<RateWindow>,
    /// Transient bidirectional partitions.
    pub partitions: Vec<Partition>,
    /// Node crashes with restart.
    pub crashes: Vec<Crash>,
    /// Random neighbour-state perturbations.
    pub perturbations: Vec<Perturbation>,
    /// Windowed per-node adversarial behaviors.
    pub behaviors: Vec<Behavior>,
}

impl FaultPlan {
    /// An empty plan with the given injector seed. An empty plan
    /// attached to a network changes nothing: no RNG is consumed and
    /// the computation is bit-for-bit the fault-free one.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Adds a message-loss window over rounds `start..end`.
    #[must_use]
    pub fn with_drop(mut self, start: u64, end: u64, p: f64) -> Self {
        self.drop.push(RateWindow { start, end, p });
        self
    }

    /// Adds a duplication window over rounds `start..end`.
    #[must_use]
    pub fn with_duplicate(mut self, start: u64, end: u64, p: f64) -> Self {
        self.duplicate.push(RateWindow { start, end, p });
        self
    }

    /// Adds a bidirectional partition over rounds `start..end`.
    #[must_use]
    pub fn with_partition(mut self, start: u64, end: u64, cut: NodeId) -> Self {
        self.partitions.push(Partition { start, end, cut });
        self
    }

    /// Adds an amnesiac crash of `node` at `round`, down for `down_for`
    /// rounds.
    #[must_use]
    pub fn with_crash(mut self, round: u64, node: NodeId, down_for: u64) -> Self {
        self.crashes.push(Crash {
            round,
            node,
            down_for,
            restart: Restart::Amnesia,
        });
        self
    }

    /// Adds a durable crash of `node` at `round` restoring the state it
    /// had at the start of `snapshot_round` (must be `≤ round`).
    #[must_use]
    pub fn with_durable_crash(
        mut self,
        round: u64,
        node: NodeId,
        down_for: u64,
        snapshot_round: u64,
    ) -> Self {
        self.crashes.push(Crash {
            round,
            node,
            down_for,
            restart: Restart::Durable { snapshot_round },
        });
        self
    }

    /// Adds a `k`-victim state perturbation at `round`.
    #[must_use]
    pub fn with_perturbation(mut self, round: u64, k: usize) -> Self {
        self.perturbations.push(Perturbation { round, k });
        self
    }

    /// Adds an adversarial behavior of `node` over rounds `start..end`.
    #[must_use]
    pub fn with_behavior(mut self, start: u64, end: u64, node: NodeId, kind: Misbehavior) -> Self {
        self.behaviors.push(Behavior {
            start,
            end,
            node,
            kind,
        });
        self
    }

    /// Total number of scheduled fault entries across all categories —
    /// the unit the chaos shrinker minimizes over.
    pub fn entry_count(&self) -> usize {
        self.drop.len()
            + self.duplicate.len()
            + self.partitions.len()
            + self.crashes.len()
            + self.perturbations.len()
            + self.behaviors.len()
    }

    /// True when the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.drop.is_empty()
            && self.duplicate.is_empty()
            && self.partitions.is_empty()
            && self.crashes.is_empty()
            && self.perturbations.is_empty()
            && self.behaviors.is_empty()
    }

    /// Checks structural validity: probabilities in `[0, 1]`, windows
    /// non-inverted, crash downtimes and perturbation sizes non-zero,
    /// per-node crash windows non-overlapping, durable snapshots taken
    /// no later than their crash, and behavior parameters in range.
    pub fn validate(&self) -> Result<(), String> {
        for w in self.drop.iter().chain(&self.duplicate) {
            if !(0.0..=1.0).contains(&w.p) {
                return Err(format!("rate {} outside [0, 1]", w.p));
            }
            if w.end < w.start {
                return Err(format!("inverted window {}..{}", w.start, w.end));
            }
        }
        for p in &self.partitions {
            if p.end < p.start {
                return Err(format!("inverted partition {}..{}", p.start, p.end));
            }
        }
        for (i, c) in self.crashes.iter().enumerate() {
            if c.down_for == 0 {
                return Err("crash with zero downtime".to_string());
            }
            if let Restart::Durable { snapshot_round } = c.restart {
                if snapshot_round > c.round {
                    return Err(format!(
                        "durable crash of {:?} snapshots at round {snapshot_round}, \
                         after its crash round {}",
                        c.node, c.round
                    ));
                }
            }
            // A node can crash repeatedly, but two downtime windows for
            // the same node must not overlap: the second crash would
            // land on an already-down node and the restart bookkeeping
            // (one restart round per node) could not represent both.
            for other in &self.crashes[i + 1..] {
                if other.node != c.node {
                    continue;
                }
                let c_end = c.round.saturating_add(c.down_for);
                let o_end = other.round.saturating_add(other.down_for);
                if c.round < o_end && other.round < c_end {
                    return Err(format!(
                        "overlapping crash windows for {:?}: {}..{c_end} and {}..{o_end}",
                        c.node, c.round, other.round
                    ));
                }
            }
        }
        for p in &self.perturbations {
            if p.k == 0 {
                return Err("perturbation of zero nodes".to_string());
            }
        }
        for b in &self.behaviors {
            if b.end < b.start {
                return Err(format!("inverted behavior window {}..{}", b.start, b.end));
            }
            match &b.kind {
                Misbehavior::SelectiveForward { kinds, p } => {
                    if !(0.0..=1.0).contains(p) {
                        return Err(format!("behavior probability {p} outside [0, 1]"));
                    }
                    if kinds.is_empty() {
                        return Err("selective-forward behavior with no kinds".to_string());
                    }
                }
                Misbehavior::LyingState { .. } => {}
                Misbehavior::SybilCluster { k, .. } => {
                    if *k == 0 {
                        return Err("sybil cluster of zero joiners".to_string());
                    }
                }
            }
        }
        Ok(())
    }
}

/// One message destroyed by the injector — the watchdog's evidence
/// trail for root-cause analysis. Crash channel loss is logged with the
/// crashed node as both endpoints.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DropRecord {
    /// The round the drop happened in.
    pub round: u64,
    /// The sending node.
    pub src: NodeId,
    /// The intended destination.
    pub dest: NodeId,
    /// The destroyed message.
    pub msg: Message,
}

/// The per-send decision the injector hands the round loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Fate {
    /// Deliver normally.
    Deliver,
    /// Destroy the message (already logged and to be counted as
    /// `dropped_fault`).
    Drop,
    /// Enqueue an extra copy alongside the original.
    Duplicate,
}

/// The injector's RNG with an exact draw counter. Every sampling path
/// in the vendored `rand` (ints, floats, bools, ranges, shuffles)
/// funnels through `next_u64`, so the count of calls *is* the stream
/// cursor: re-seeding and advancing `draws` words reproduces the state
/// bit-for-bit. That makes the injector checkpointable (persist v2)
/// without serializing generator internals.
#[derive(Clone, Debug)]
struct CountedRng {
    inner: StdRng,
    draws: u64,
}

impl CountedRng {
    fn seeded(seed: u64) -> Self {
        CountedRng {
            inner: StdRng::seed_from_u64(seed),
            draws: 0,
        }
    }

    /// Re-seeds and fast-forwards to a persisted cursor. Linear in the
    /// cursor — fine for checkpointed runs, whose draw counts are
    /// bounded by sends inside fault windows.
    fn at_cursor(seed: u64, draws: u64) -> Self {
        let mut inner = StdRng::seed_from_u64(seed);
        for _ in 0..draws {
            inner.next_u64();
        }
        CountedRng { inner, draws }
    }
}

impl Rng for CountedRng {
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }
}

/// The serializable checkpoint of a [`FaultInjector`]: everything a
/// durable restore needs to continue the faulted computation exactly —
/// the plan, the RNG cursor (draw count), the down map, the drop log
/// and any captured durable-crash node states. The per-round lying
/// pool is *not* captured: it is recomputed at every round start, and
/// checkpoints are taken between rounds.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InjectorState {
    /// The plan being executed.
    pub plan: FaultPlan,
    /// Number of `next_u64` words the injector has consumed.
    pub rng_draws: u64,
    /// Crashed nodes → the round they restart at.
    pub down: Vec<(NodeId, u64)>,
    /// The retained drop log.
    pub drop_log: Vec<DropRecord>,
    /// Captured pre-crash states for pending durable restarts.
    pub saved: Vec<(NodeId, Node)>,
}

/// Live fault-injection state owned by a faulted network: the plan, the
/// injector's private RNG, the set of currently-down nodes, the recent
/// drop log, captured durable-crash states and the per-round pool of
/// live ids that [`LieMode::Scramble`] forgeries draw from.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: CountedRng,
    /// Crashed nodes → the round they restart at.
    down: BTreeMap<NodeId, u64>,
    drop_log: Vec<DropRecord>,
    /// Pre-crash states captured for durable restarts.
    saved: BTreeMap<NodeId, Node>,
    /// Live ids scramble-lies draw replacements from; refreshed by the
    /// round loop whenever a scramble window is active.
    lie_pool: Vec<NodeId>,
}

impl FaultInjector {
    /// Builds an injector for a validated plan.
    ///
    /// # Panics
    /// Panics when [`FaultPlan::validate`] rejects the plan.
    pub fn new(plan: FaultPlan) -> Self {
        // Documented panic on invalid plans; fallible callers use
        // `try_new`.
        // lint: allow(unwrap-in-lib)
        Self::try_new(plan).expect("invalid fault plan")
    }

    /// Builds an injector for `plan`, rejecting invalid plans as an
    /// error instead of panicking.
    pub fn try_new(plan: FaultPlan) -> Result<Self, String> {
        plan.validate()?;
        let rng = CountedRng::seeded(plan.seed);
        Ok(FaultInjector {
            plan,
            rng,
            down: BTreeMap::new(),
            drop_log: Vec::new(),
            saved: BTreeMap::new(),
            lie_pool: Vec::new(),
        })
    }

    /// Captures the injector's complete serializable state.
    pub fn state(&self) -> InjectorState {
        InjectorState {
            plan: self.plan.clone(),
            rng_draws: self.rng.draws,
            down: self.down.iter().map(|(&id, &until)| (id, until)).collect(),
            drop_log: self.drop_log.clone(),
            saved: self
                .saved
                .iter()
                .map(|(&id, node)| (id, node.clone()))
                .collect(),
        }
    }

    /// Rebuilds an injector from a checkpoint, re-seeding the RNG and
    /// fast-forwarding it to the persisted cursor.
    pub fn from_state(state: InjectorState) -> Result<Self, String> {
        state.plan.validate()?;
        let rng = CountedRng::at_cursor(state.plan.seed, state.rng_draws);
        Ok(FaultInjector {
            plan: state.plan,
            rng,
            down: state.down.into_iter().collect(),
            drop_log: state.drop_log,
            saved: state.saved.into_iter().collect(),
            lie_pool: Vec::new(),
        })
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True while `id` is crashed (skipped by the round loop; messages
    /// to it are destroyed).
    pub fn is_down(&self, id: NodeId) -> bool {
        self.down.contains_key(&id)
    }

    /// Number of currently-down nodes.
    pub fn down_count(&self) -> usize {
        self.down.len()
    }

    /// The retained log of injector-destroyed messages, oldest first
    /// (bounded — old entries are evicted, recent ones always kept).
    pub fn drops(&self) -> &[DropRecord] {
        &self.drop_log
    }

    /// Records a destroyed message in the bounded log.
    pub(crate) fn note_drop(&mut self, round: u64, src: NodeId, dest: NodeId, msg: Message) {
        if self.drop_log.len() >= DROP_LOG_CAP {
            self.drop_log.drain(..DROP_LOG_CAP / 2);
        }
        self.drop_log.push(DropRecord {
            round,
            src,
            dest,
            msg,
        });
    }

    /// Marks `node` down until `restart_round`.
    pub(crate) fn mark_down(&mut self, node: NodeId, restart_round: u64) {
        self.down.insert(node, restart_round);
    }

    /// Removes and returns the nodes whose downtime ends at or before
    /// `round`.
    pub(crate) fn take_restarts(&mut self, round: u64) -> Vec<NodeId> {
        let due: Vec<NodeId> = self
            .down
            .iter()
            .filter(|&(_, &until)| until <= round)
            .map(|(&id, _)| id)
            .collect();
        for id in &due {
            self.down.remove(id);
        }
        due
    }

    /// The crashes scheduled for `round`.
    pub(crate) fn crashes_at(&self, round: u64) -> Vec<Crash> {
        self.plan
            .crashes
            .iter()
            .filter(|c| c.round == round)
            .copied()
            .collect()
    }

    /// Timeline markers for windows opening at `round` (drop and
    /// duplication rates, partitions) — rendered as `Fault` events so
    /// reports show when loss regimes begin.
    pub(crate) fn windows_opening_at(&self, round: u64) -> Vec<(&'static str, String)> {
        let mut out = Vec::new();
        for w in &self.plan.drop {
            if w.start == round && w.p > 0.0 {
                out.push((
                    "drop_window",
                    format!("p={} over rounds {}..{}", w.p, w.start, w.end),
                ));
            }
        }
        for w in &self.plan.duplicate {
            if w.start == round && w.p > 0.0 {
                out.push((
                    "dup_window",
                    format!("p={} over rounds {}..{}", w.p, w.start, w.end),
                ));
            }
        }
        for p in &self.plan.partitions {
            if p.start == round {
                out.push((
                    "partition",
                    format!("cut at {:?} over rounds {}..{}", p.cut, p.start, p.end),
                ));
            }
        }
        for b in &self.plan.behaviors {
            // Sybil clusters are one-shot joins, announced by the round
            // loop itself with the actual join count.
            if b.start == round && !matches!(b.kind, Misbehavior::SybilCluster { .. }) {
                out.push((
                    b.kind.label(),
                    format!(
                        "{:?} misbehaves ({:?}) over rounds {}..{}",
                        b.node, b.kind, b.start, b.end
                    ),
                ));
            }
        }
        out
    }

    /// The perturbations scheduled for `round`.
    pub(crate) fn perturbations_at(&self, round: u64) -> Vec<Perturbation> {
        self.plan
            .perturbations
            .iter()
            .filter(|p| p.round == round)
            .copied()
            .collect()
    }

    /// Nodes whose durable crash wants a state capture at the start of
    /// `round` (i.e. `snapshot_round == round`).
    pub(crate) fn snapshots_due_at(&self, round: u64) -> Vec<NodeId> {
        self.plan
            .crashes
            .iter()
            .filter_map(|c| match c.restart {
                Restart::Durable { snapshot_round } if snapshot_round == round => Some(c.node),
                _ => None,
            })
            .collect()
    }

    /// Stores a captured pre-crash node state for a durable restart.
    pub(crate) fn save_node(&mut self, state: Node) {
        self.saved.insert(state.id(), state);
    }

    /// Removes and returns the captured state for `node`, if any.
    pub(crate) fn take_saved(&mut self, node: NodeId) -> Option<Node> {
        self.saved.remove(&node)
    }

    /// The captured pre-crash state for `node`, if any (test/diagnostic
    /// visibility into pending durable restores).
    pub fn saved_state(&self, node: NodeId) -> Option<&Node> {
        self.saved.get(&node)
    }

    /// Sybil clusters whose window opens at `round`, as
    /// `(contact, center, k)` triples.
    pub(crate) fn sybils_at(&self, round: u64) -> Vec<(NodeId, NodeId, usize)> {
        self.plan
            .behaviors
            .iter()
            .filter_map(|b| match b.kind {
                Misbehavior::SybilCluster { k, center } if b.start == round => {
                    Some((b.node, center, k))
                }
                _ => None,
            })
            .collect()
    }

    /// Nodes with a selective-forward or lying-state window covering
    /// `round`. The round loop wakes (and unsettles) these under the
    /// active-set scheduler every round the window is active: a settled
    /// node skips its regular action, so a misbehaving node on a
    /// quiescent ring would otherwise never send — and never misbehave
    /// — diverging from the full-scan semantics where every node acts
    /// each round. Sybil contacts are excluded: the cluster join wakes
    /// them through normal mail delivery.
    pub(crate) fn behavior_nodes_active_at(&self, round: u64) -> Vec<NodeId> {
        self.plan
            .behaviors
            .iter()
            .filter(|b| b.active(round) && !matches!(b.kind, Misbehavior::SybilCluster { .. }))
            .map(|b| b.node)
            .collect()
    }

    /// True when a scramble-lying window is active at `round`, so the
    /// round loop knows to refresh the lie pool.
    pub(crate) fn needs_lie_pool(&self, round: u64) -> bool {
        self.plan.behaviors.iter().any(|b| {
            b.active(round)
                && matches!(
                    b.kind,
                    Misbehavior::LyingState {
                        mode: LieMode::Scramble
                    }
                )
        })
    }

    /// Replaces the pool of live ids scramble forgeries draw from.
    pub(crate) fn set_lie_pool(&mut self, pool: Vec<NodeId>) {
        self.lie_pool = pool;
    }

    /// Applies any active lying-state behavior of `src` to an outgoing
    /// message: carried identifiers are forged per the behavior's
    /// [`LieMode`]. When the payload actually changes, the *original*
    /// message is recorded in the drop log — the liar destroyed the
    /// true payload and substituted a forgery, and that record is what
    /// keeps a sole-carrier disconnection attributable. Injector RNG is
    /// consumed only by scramble forgeries inside an active window.
    pub(crate) fn rewrite(
        &mut self,
        round: u64,
        src: NodeId,
        dest: NodeId,
        msg: Message,
    ) -> Message {
        if self.plan.behaviors.is_empty() {
            return msg;
        }
        let mode = self.plan.behaviors.iter().find_map(|b| match b.kind {
            Misbehavior::LyingState { mode } if b.node == src && b.active(round) => Some(mode),
            _ => None,
        });
        let Some(mode) = mode else {
            return msg;
        };
        let forged = match mode {
            LieMode::SelfPromote => forge(msg, &mut |_| src),
            LieMode::Scramble => {
                if self.lie_pool.is_empty() {
                    return msg;
                }
                let pool = &self.lie_pool;
                let rng = &mut self.rng;
                forge(msg, &mut |_| pool[rng.random_range(0..pool.len())])
            }
        };
        if forged != msg {
            self.note_drop(round, src, dest, msg);
        }
        forged
    }

    /// Draws `k` distinct victims from `pool` (injector RNG).
    pub(crate) fn pick_distinct(&mut self, k: usize, pool: &[NodeId]) -> Vec<NodeId> {
        let mut v = pool.to_vec();
        v.shuffle(&mut self.rng);
        v.truncate(k.min(v.len()));
        v
    }

    /// Draws one uniform element of `pool` (injector RNG).
    ///
    /// # Panics
    /// Panics on an empty pool.
    pub(crate) fn pick_one(&mut self, pool: &[NodeId]) -> NodeId {
        pool[self.rng.random_range(0..pool.len())]
    }

    /// Decides the fate of one send. Fixed decision order (down
    /// destination, partition, selective-forward refusal, loss rate,
    /// duplication rate); injector RNG is consumed **only** when a rate
    /// or behavior window is active, so rounds outside every window
    /// replay the fault-free computation exactly.
    pub(crate) fn fate(&mut self, round: u64, src: NodeId, dest: NodeId, msg: Message) -> Fate {
        if self.is_down(dest) || self.is_down(src) {
            self.note_drop(round, src, dest, msg);
            return Fate::Drop;
        }
        if self
            .plan
            .partitions
            .iter()
            .any(|p| p.active(round) && p.cuts(src, dest))
        {
            self.note_drop(round, src, dest, msg);
            return Fate::Drop;
        }
        if !self.plan.behaviors.is_empty() {
            let refuse_p = self.plan.behaviors.iter().find_map(|b| match &b.kind {
                Misbehavior::SelectiveForward { kinds, p }
                    if b.node == src && b.active(round) && kinds.contains(&msg.kind()) =>
                {
                    Some(*p)
                }
                _ => None,
            });
            if let Some(p) = refuse_p {
                if self.rng.random_bool(p) {
                    self.note_drop(round, src, dest, msg);
                    return Fate::Drop;
                }
            }
        }
        let drop_p = self.plan.drop.iter().find(|w| w.active(round)).map(|w| w.p);
        if let Some(p) = drop_p {
            if self.rng.random_bool(p) {
                self.note_drop(round, src, dest, msg);
                return Fate::Drop;
            }
        }
        let dup_p = self
            .plan
            .duplicate
            .iter()
            .find(|w| w.active(round))
            .map(|w| w.p);
        if let Some(p) = dup_p {
            if self.rng.random_bool(p) {
                return Fate::Duplicate;
            }
        }
        Fate::Deliver
    }
}

/// Rewrites every identifier a message carries through `pick`
/// (infinities are structural, not knowledge, and pass through).
fn forge(msg: Message, pick: &mut dyn FnMut(NodeId) -> NodeId) -> Message {
    let mut fx = |e: Extended| match e {
        Extended::Fin(x) => Extended::Fin(pick(x)),
        other => other,
    };
    match msg {
        Message::Lin(x) => Message::Lin(pick(x)),
        Message::IncLrl(x) => Message::IncLrl(pick(x)),
        Message::ResLrl(l, r) => {
            let l = fx(l);
            let r = fx(r);
            Message::ResLrl(l, r)
        }
        Message::Ring(x) => Message::Ring(pick(x)),
        Message::ResRing(x) => Message::ResRing(pick(x)),
        Message::ProbR(x) => Message::ProbR(pick(x)),
        Message::ProbL(x) => Message::ProbL(pick(x)),
    }
}

/// The watchdog's final classification of a recovery watch.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// The sorted ring held again after `rounds` rounds (counted from
    /// the watch start).
    Recovered {
        /// Rounds from the watch start to re-stabilization.
        rounds: u64,
    },
    /// The union knowledge graph (CC view) fell apart: some identifier
    /// is unreachable from the rest and no protocol rule can ever
    /// reintroduce it. `culprit` is the most recent logged drop whose
    /// payload ended up in a different component than its sender — the
    /// sole-carrier drop that severed the network — when one is
    /// identifiable.
    PermanentlyDisconnected {
        /// The absolute round disconnection was detected at.
        round: u64,
        /// The responsible drop, if identifiable from the log.
        culprit: Option<DropRecord>,
    },
    /// The round budget ran out with the knowledge graph still
    /// connected — slow convergence, not impossibility.
    BudgetExhausted {
        /// The budget that was exhausted.
        budget: u64,
    },
}

impl Verdict {
    /// Stable label for reports: `"recovered"`, `"disconnected"` or
    /// `"budget_exhausted"`.
    pub fn outcome(&self) -> &'static str {
        match self {
            Verdict::Recovered { .. } => "recovered",
            Verdict::PermanentlyDisconnected { .. } => "disconnected",
            Verdict::BudgetExhausted { .. } => "budget_exhausted",
        }
    }

    /// Rounds to recovery, when recovered.
    pub fn recovered_rounds(&self) -> Option<u64> {
        match self {
            Verdict::Recovered { rounds } => Some(*rounds),
            _ => None,
        }
    }
}

/// Outcome of a [`watch_recovery`] run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WatchReport {
    /// The watchdog's classification.
    pub verdict: Verdict,
    /// Messages sent during the watch (overhead accounting).
    pub messages: u64,
    /// Messages the injector destroyed during the watch.
    pub dropped_fault: u64,
    /// Messages whose payload a lying-state behavior forged during the
    /// watch (the true payload was destroyed).
    pub forged_fault: u64,
    /// The round budget the watch ran under.
    pub budget: u64,
    /// Shape of the repair cascade observed during the watch: depth
    /// histogram, width profile and per-kind fan-out of the causal DAG.
    /// Present only when a sink was attached — causal ids exist only on
    /// the instrumented path.
    pub cascade: Option<CascadeReport>,
}

/// Runs the network for up to `budget` rounds from the fault instant
/// (the call time), classifying the outcome:
///
/// * **recovered** — `is_sorted_ring_view` holds again (checked only on
///   rounds whose `links_changed` flag is set, like `run_until`);
/// * **permanently disconnected** — the CC view (node states ∪
///   in-flight payloads) is no longer weakly connected. Checked on
///   rounds with injector drops (channel loss from a crash counts);
///   once disconnected, the knowledge closure argument makes recovery
///   impossible, so the watch stops immediately and names the culprit
///   drop when one is identifiable;
/// * **budget exhausted** — neither of the above within `budget`.
///
/// Emits a `"recovery"` [`Event::Span`] plus an [`Event::Verdict`] to
/// the attached sink, if any.
pub fn watch_recovery(net: &mut Network, budget: u64) -> WatchReport {
    let start = net.round();
    // Bracket the watch in a cascade window so the repair's causal DAG
    // is accounted separately from whatever ran before (no-op without a
    // sink).
    net.cascade_begin();
    let mut report = WatchReport {
        verdict: Verdict::BudgetExhausted { budget },
        messages: 0,
        dropped_fault: 0,
        forged_fault: 0,
        budget,
        cascade: None,
    };
    let mut sorted = is_sorted_ring_view(&net.view());
    if sorted {
        report.verdict = Verdict::Recovered { rounds: 0 };
    } else {
        for k in 1..=budget {
            let stats = net.step();
            report.messages += stats.total_sent();
            report.dropped_fault += stats.dropped_fault;
            report.forged_fault += stats.forged_fault;
            if stats.links_changed {
                sorted = is_sorted_ring_view(&net.view());
            }
            if sorted {
                report.verdict = Verdict::Recovered { rounds: k };
                break;
            }
            // A forgery destroys its true payload just like a drop does
            // (the delivered message carries the lie, not the original),
            // so forged rounds are disconnection candidates too — as are
            // perturbation rounds, whose erased pointers can have been
            // the only edges into a component.
            if (stats.dropped_fault > 0 || stats.forged_fault > 0 || stats.erased_fault > 0)
                && !weakly_connected_view(&net.view(), View::Cc)
            {
                report.verdict = Verdict::PermanentlyDisconnected {
                    round: net.round(),
                    culprit: find_culprit(net),
                };
                break;
            }
        }
    }
    let end = net.round();
    report.cascade = net.cascade_take();
    net.emit(Event::Span {
        label: "recovery".to_string(),
        start,
        end,
    });
    if let Some(c) = report.cascade.as_ref() {
        let ev = Event::Cascade {
            label: "recovery".to_string(),
            start: c.start,
            end: c.end,
            delivered: c.delivered(),
            roots: c.stats.roots,
            edges: c.stats.edges,
            depth: c.stats.depth.clone(),
            width_max: c.stats.width_max(),
            handled_by_kind: c.stats.handled_by_kind.clone(),
            children_by_kind: c.stats.children_by_kind.clone(),
        };
        net.emit(ev);
    }
    // The verdict goes last: an anomalous one trips the flight
    // recorder's auto-dump, and the dump should already contain the
    // span and cascade records above.
    net.emit(Event::Verdict {
        round: end,
        outcome: report.verdict.outcome().to_string(),
        detail: verdict_detail(&report.verdict),
    });
    report
}

/// Scans the injector's drop log (most recent first) for a destroyed
/// message whose payload now sits in a different weak component of the
/// CC view than its sender — the signature of a sole-carrier drop.
pub(crate) fn find_culprit(net: &Network) -> Option<DropRecord> {
    let inj = net.fault_injector()?;
    let v = net.view();
    let labels = component_labels_view(&v, View::Cc);
    for rec in inj.drops().iter().rev() {
        let Some(src_rank) = v.index_of(rec.src) else {
            continue;
        };
        for x in rec.msg.carried_ids() {
            if let Some(x_rank) = v.index_of(x) {
                if labels[x_rank] != labels[src_rank] {
                    return Some(*rec);
                }
            }
        }
    }
    None
}

fn verdict_detail(v: &Verdict) -> String {
    match v {
        Verdict::Recovered { rounds } => format!("rounds={rounds}"),
        Verdict::PermanentlyDisconnected {
            round,
            culprit: Some(c),
        } => format!(
            "at round {round}: dropped {:?} from {:?} to {:?} in round {} was a sole carrier",
            c.msg, c.src, c.dest, c.round
        ),
        Verdict::PermanentlyDisconnected {
            round,
            culprit: None,
        } => {
            format!("at round {round}: culprit not identifiable from the drop log")
        }
        Verdict::BudgetExhausted { budget } => format!("budget={budget}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swn_core::config::ProtocolConfig;
    use swn_core::id::{evenly_spaced_ids, Extended};
    use swn_core::invariants::make_sorted_ring;
    use swn_core::node::Node;

    fn fid(f: f64) -> NodeId {
        NodeId::from_fraction(f)
    }

    /// a—b form a sorted 2-list; c is blank (knows nobody, nobody knows
    /// it) except for the preloaded `Lin(c)` hints.
    fn three_node_net(hint_to_b: bool) -> (Network, NodeId, NodeId, NodeId) {
        let cfg = ProtocolConfig::default();
        let (a, b, c) = (fid(0.2), fid(0.5), fid(0.8));
        let na = Node::with_state(a, Extended::NegInf, Extended::Fin(b), a, None, cfg);
        let nb = Node::with_state(b, Extended::Fin(a), Extended::PosInf, b, None, cfg);
        let nc = Node::new(c, cfg);
        let mut net = Network::new(vec![na, nb, nc], 3);
        net.preload(a, Message::Lin(c));
        if hint_to_b {
            net.preload(b, Message::Lin(c));
        }
        (net, a, b, c)
    }

    #[test]
    fn sole_carrier_drop_is_reported_with_its_culprit_edge() {
        // Only a knows c, as an in-flight Lin(c). a's handler forwards
        // it toward b without storing (c > a.r = b), and the round-1
        // loss window destroys the forward — the sole carrier. The
        // watchdog must classify this as permanent disconnection and
        // name the a→b Lin(c) drop.
        let (mut net, a, b, c) = three_node_net(false);
        net.attach_faults(FaultPlan::new(7).with_drop(1, 2, 1.0));
        let report = watch_recovery(&mut net, 100);
        match &report.verdict {
            Verdict::PermanentlyDisconnected { culprit, .. } => {
                let rec = culprit.expect("culprit identifiable");
                assert_eq!(rec.msg, Message::Lin(c));
                assert_eq!(rec.src, a);
                assert_eq!(rec.dest, b);
                assert_eq!(rec.round, 1);
            }
            other => panic!("expected permanent disconnection, got {other:?}"),
        }
        assert!(report.dropped_fault > 0);
        assert_eq!(report.verdict.outcome(), "disconnected");
    }

    #[test]
    fn duplicate_carrier_survives_the_same_drop() {
        // Same scenario, but b also holds a Lin(c) hint: b adopts c as
        // its right neighbour on delivery (before any send can be
        // dropped), so the knowledge graph stays connected through the
        // loss window and the ring closes over all three nodes.
        let (mut net, _a, _b, c) = three_node_net(true);
        net.attach_faults(FaultPlan::new(7).with_drop(1, 2, 1.0));
        let report = watch_recovery(&mut net, 500);
        assert!(
            matches!(report.verdict, Verdict::Recovered { rounds } if rounds > 0),
            "expected recovery, got {:?}",
            report.verdict
        );
        assert!(net.node(c).is_some());
    }

    #[test]
    fn same_plan_and_seeds_replay_bit_for_bit() {
        let run = || {
            let ids = evenly_spaced_ids(12);
            let mut net = Network::new(make_sorted_ring(&ids, ProtocolConfig::default()), 5);
            net.attach_faults(
                FaultPlan::new(11)
                    .with_drop(3, 20, 0.3)
                    .with_duplicate(5, 15, 0.2)
                    .with_crash(8, ids[4], 4)
                    .with_perturbation(2, 3),
            );
            net.run(30);
            (
                format!("{:?}", net.snapshot().as_view().edges(View::Cc)),
                net.trace().rounds().to_vec(),
                net.fault_injector().expect("attached").drops().to_vec(),
            )
        };
        let (e1, t1, d1) = run();
        let (e2, t2, d2) = run();
        assert_eq!(e1, e2);
        assert_eq!(t1, t2);
        assert_eq!(d1, d2);
        assert!(!d1.is_empty(), "the loss window must have destroyed mail");
    }

    #[test]
    fn different_fault_seeds_diverge() {
        let run = |fault_seed: u64| {
            let ids = evenly_spaced_ids(12);
            let mut net = Network::new(make_sorted_ring(&ids, ProtocolConfig::default()), 5);
            net.attach_faults(FaultPlan::new(fault_seed).with_drop(1, 30, 0.4));
            net.run(30);
            net.fault_injector().expect("attached").drops().to_vec()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn crash_and_restart_recovers_on_a_stable_ring() {
        let ids = evenly_spaced_ids(10);
        let mut net = Network::new(make_sorted_ring(&ids, ProtocolConfig::default()), 9);
        net.run(10);
        net.attach_faults(FaultPlan::new(1).with_crash(net.round() + 1, ids[4], 3));
        net.step(); // crash lands
        let inj = net.fault_injector().expect("attached");
        assert!(inj.is_down(ids[4]));
        assert_eq!(inj.down_count(), 1);
        let report = watch_recovery(&mut net, 5000);
        assert!(
            matches!(report.verdict, Verdict::Recovered { .. }),
            "crash+restart must heal: {:?}",
            report.verdict
        );
        assert!(!net.fault_injector().expect("attached").is_down(ids[4]));
    }

    #[test]
    fn perturbation_is_recoverable_damage() {
        let ids = evenly_spaced_ids(16);
        let mut net = Network::new(make_sorted_ring(&ids, ProtocolConfig::default()), 4);
        net.run(10);
        net.attach_faults(FaultPlan::new(2).with_perturbation(net.round() + 1, 5));
        net.step(); // perturbation lands
        assert!(
            !is_sorted_ring_view(&net.view()),
            "5 corrupted nodes must break the ring"
        );
        let report = watch_recovery(&mut net, 5000);
        assert!(
            matches!(report.verdict, Verdict::Recovered { .. }),
            "l-preserving perturbation is recoverable: {:?}",
            report.verdict
        );
    }

    #[test]
    fn partition_heals_after_the_window() {
        let ids = evenly_spaced_ids(12);
        let mut net = Network::new(make_sorted_ring(&ids, ProtocolConfig::default()), 6);
        net.run(5);
        let cut = ids[5];
        let now = net.round();
        net.attach_faults(FaultPlan::new(3).with_partition(now + 1, now + 11, cut));
        net.run(10);
        assert!(
            net.trace().total_dropped_fault() > 0,
            "cross-cut traffic must be destroyed while partitioned"
        );
        let report = watch_recovery(&mut net, 5000);
        assert!(
            matches!(report.verdict, Verdict::Recovered { .. }),
            "stored pointers survive a partition: {:?}",
            report.verdict
        );
    }

    #[test]
    fn plan_validation_rejects_bad_parameters() {
        assert!(FaultPlan::new(0).validate().is_ok());
        assert!(FaultPlan::new(0).with_drop(0, 5, 1.5).validate().is_err());
        assert!(FaultPlan::new(0).with_drop(5, 2, 0.5).validate().is_err());
        assert!(FaultPlan::new(0)
            .with_partition(9, 3, fid(0.5))
            .validate()
            .is_err());
        assert!(FaultPlan::new(0)
            .with_crash(1, fid(0.5), 0)
            .validate()
            .is_err());
        assert!(FaultPlan::new(0)
            .with_perturbation(1, 0)
            .validate()
            .is_err());
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn injector_rejects_invalid_plans() {
        let _ = FaultInjector::new(FaultPlan::new(0).with_drop(0, 5, -0.1));
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan::new(42)
            .with_drop(1, 10, 0.25)
            .with_duplicate(2, 8, 0.5)
            .with_partition(3, 6, fid(0.4))
            .with_crash(4, fid(0.6), 2)
            .with_perturbation(5, 7);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new(1).is_empty());
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, plan);
    }

    #[test]
    fn rate_window_is_inactive_at_zero_probability() {
        let w = RateWindow {
            start: 0,
            end: 100,
            p: 0.0,
        };
        assert!(!w.active(50), "p = 0 must behave as no window at all");
    }

    #[test]
    fn plan_validation_rejects_overlapping_crash_windows() {
        // Overlap: [5, 9) and [7, 10) down this same node twice at once.
        assert!(FaultPlan::new(0)
            .with_crash(5, fid(0.3), 4)
            .with_crash(7, fid(0.3), 3)
            .validate()
            .is_err());
        // Touching windows do not overlap: [5, 9) then [9, 12).
        assert!(FaultPlan::new(0)
            .with_crash(5, fid(0.3), 4)
            .with_crash(9, fid(0.3), 3)
            .validate()
            .is_ok());
        // The same window on different nodes is fine.
        assert!(FaultPlan::new(0)
            .with_crash(5, fid(0.3), 4)
            .with_crash(5, fid(0.7), 4)
            .validate()
            .is_ok());
    }

    #[test]
    fn plan_validation_rejects_bad_behaviors() {
        let lin = vec![MessageKind::Lin];
        assert!(FaultPlan::new(0)
            .with_behavior(
                1,
                5,
                fid(0.5),
                Misbehavior::SelectiveForward {
                    kinds: lin.clone(),
                    p: 1.5,
                },
            )
            .validate()
            .is_err());
        assert!(FaultPlan::new(0)
            .with_behavior(
                1,
                5,
                fid(0.5),
                Misbehavior::SelectiveForward {
                    kinds: Vec::new(),
                    p: 0.5,
                },
            )
            .validate()
            .is_err());
        assert!(FaultPlan::new(0)
            .with_behavior(
                5,
                1,
                fid(0.5),
                Misbehavior::LyingState {
                    mode: LieMode::SelfPromote,
                },
            )
            .validate()
            .is_err());
        assert!(FaultPlan::new(0)
            .with_behavior(
                1,
                5,
                fid(0.5),
                Misbehavior::SybilCluster {
                    k: 0,
                    center: fid(0.5),
                },
            )
            .validate()
            .is_err());
        // A durable crash must snapshot no later than it crashes.
        assert!(FaultPlan::new(0)
            .with_durable_crash(5, fid(0.5), 2, 7)
            .validate()
            .is_err());
        assert!(FaultPlan::new(0)
            .with_behavior(
                1,
                5,
                fid(0.5),
                Misbehavior::SelectiveForward { kinds: lin, p: 0.5 },
            )
            .with_durable_crash(5, fid(0.5), 2, 5)
            .validate()
            .is_ok());
    }

    #[test]
    fn adversarial_plan_round_trips_through_json() {
        let plan = FaultPlan::new(13)
            .with_durable_crash(6, fid(0.7), 2, 4)
            .with_behavior(
                1,
                5,
                fid(0.2),
                Misbehavior::SelectiveForward {
                    kinds: vec![MessageKind::Lin, MessageKind::Ring],
                    p: 0.5,
                },
            )
            .with_behavior(
                2,
                6,
                fid(0.4),
                Misbehavior::LyingState {
                    mode: LieMode::Scramble,
                },
            )
            .with_behavior(
                3,
                4,
                fid(0.6),
                Misbehavior::SybilCluster {
                    k: 2,
                    center: fid(0.6),
                },
            );
        assert!(plan.validate().is_ok());
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, plan);
    }

    #[test]
    fn selective_forward_refusal_severs_a_sole_carrier_attributably() {
        // kinds = [Lin] at p = 1: a's forward of the sole Lin(c) carrier
        // is silently refused — same verdict as a hard drop, but scoped
        // to the misbehaving node, and the watchdog still names the
        // refused message.
        let (mut net, a, b, c) = three_node_net(false);
        net.attach_faults(FaultPlan::new(7).with_behavior(
            1,
            3,
            a,
            Misbehavior::SelectiveForward {
                kinds: vec![MessageKind::Lin],
                p: 1.0,
            },
        ));
        let report = watch_recovery(&mut net, 200);
        assert!(report.dropped_fault > 0, "the refusal counts as a drop");
        match &report.verdict {
            Verdict::PermanentlyDisconnected { culprit, .. } => {
                let rec = culprit.expect("culprit identifiable");
                assert_eq!(rec.msg, Message::Lin(c));
                assert_eq!(rec.src, a);
                assert_eq!(rec.dest, b);
            }
            other => panic!("expected refusal disconnection, got {other:?}"),
        }
    }

    #[test]
    fn selective_forward_passes_non_matching_kinds() {
        // Same scenario, but the refusal is scoped to Ring messages —
        // the Lin(c) carrier passes untouched and the ring closes.
        let (mut net, a, _b, _c) = three_node_net(false);
        net.attach_faults(FaultPlan::new(7).with_behavior(
            1,
            3,
            a,
            Misbehavior::SelectiveForward {
                kinds: vec![MessageKind::Ring],
                p: 1.0,
            },
        ));
        let report = watch_recovery(&mut net, 500);
        assert!(
            matches!(report.verdict, Verdict::Recovered { .. }),
            "non-matching kinds must pass: {:?}",
            report.verdict
        );
    }

    #[test]
    fn lying_forgery_severs_a_sole_carrier_attributably() {
        // a self-promotes: its forward of Lin(c) leaves as Lin(a), so c
        // never joins. The true payload is in the drop log — forgery is
        // as attributable as destruction.
        let (mut net, a, _b, c) = three_node_net(false);
        net.attach_faults(FaultPlan::new(7).with_behavior(
            1,
            3,
            a,
            Misbehavior::LyingState {
                mode: LieMode::SelfPromote,
            },
        ));
        let report = watch_recovery(&mut net, 200);
        assert!(
            report.forged_fault > 0,
            "the liar must have forged payloads"
        );
        match &report.verdict {
            Verdict::PermanentlyDisconnected { culprit, .. } => {
                let rec = culprit.expect("forgery attributable");
                assert_eq!(rec.msg, Message::Lin(c));
                assert_eq!(rec.src, a);
            }
            other => panic!("expected disconnection by forgery, got {other:?}"),
        }
    }

    #[test]
    fn scramble_lies_stay_in_closure_and_recover_after_the_window() {
        // Scramble forgeries draw from the live-id pool, so the
        // knowledge graph never leaves its closure: a stable ring is
        // degraded during the window and heals after it.
        let ids = evenly_spaced_ids(12);
        let mut net = Network::new(make_sorted_ring(&ids, ProtocolConfig::default()), 8);
        net.run(5);
        let now = net.round();
        net.attach_faults(FaultPlan::new(9).with_behavior(
            now + 1,
            now + 8,
            ids[6],
            Misbehavior::LyingState {
                mode: LieMode::Scramble,
            },
        ));
        net.run(8); // ride out the lying window
        assert!(
            net.trace().total_forged_fault() > 0,
            "scramble must forge in-window"
        );
        let report = watch_recovery(&mut net, 5000);
        assert!(
            matches!(report.verdict, Verdict::Recovered { .. }),
            "stored pointers survive scramble lies: {:?}",
            report.verdict
        );
    }

    #[test]
    fn sybil_cluster_joins_and_is_absorbed() {
        let ids = evenly_spaced_ids(8);
        let mut net = Network::new(make_sorted_ring(&ids, ProtocolConfig::default()), 11);
        net.run(5);
        let start = net.round() + 1;
        net.attach_faults(FaultPlan::new(4).with_behavior(
            start,
            start + 1,
            ids[3],
            Misbehavior::SybilCluster {
                k: 3,
                center: ids[5],
            },
        ));
        net.step(); // sybils join through ids[3]
        assert_eq!(net.ids().len(), 11, "3 sybils must have joined");
        for sid in sybil_ids(ids[5], 3) {
            assert!(net.node(sid).is_some(), "{sid:?} must be live");
        }
        let report = watch_recovery(&mut net, 5000);
        assert!(
            matches!(report.verdict, Verdict::Recovered { .. }),
            "the ring must absorb the cluster: {:?}",
            report.verdict
        );
    }

    #[test]
    fn durable_restart_restores_the_captured_state() {
        let ids = evenly_spaced_ids(10);
        let mut net = Network::new(make_sorted_ring(&ids, ProtocolConfig::default()), 9);
        net.run(10);
        let crash_round = net.round() + 1;
        let victim = ids[4];
        let before = net.node(victim).expect("live").clone();
        net.attach_faults(FaultPlan::new(1).with_durable_crash(
            crash_round,
            victim,
            3,
            crash_round,
        ));
        net.step(); // capture happens at round start, then the crash lands
        let inj = net.fault_injector().expect("attached");
        assert!(inj.is_down(victim));
        assert_eq!(inj.saved_state(victim).expect("captured"), &before);
        net.run(3); // downtime elapses; the restart restores the capture
        let after = net.node(victim).expect("restored");
        assert_eq!(after.left(), before.left(), "restored stale left pointer");
        assert_eq!(
            after.right(),
            before.right(),
            "restored stale right pointer"
        );
        assert!(net
            .fault_injector()
            .expect("attached")
            .saved_state(victim)
            .is_none());
        let report = watch_recovery(&mut net, 5000);
        assert!(
            matches!(report.verdict, Verdict::Recovered { .. }),
            "durable restart must heal: {:?}",
            report.verdict
        );
    }

    #[test]
    fn durable_restart_without_a_capture_degrades_to_amnesia() {
        let ids = evenly_spaced_ids(10);
        let mut net = Network::new(make_sorted_ring(&ids, ProtocolConfig::default()), 9);
        net.run(10);
        let victim = ids[4];
        // snapshot_round 0 is long past when the plan attaches, so
        // nothing is ever captured and the restart falls back to a
        // blank rejoin.
        net.attach_faults(FaultPlan::new(1).with_durable_crash(net.round() + 1, victim, 3, 0));
        net.step();
        assert!(net
            .fault_injector()
            .expect("attached")
            .saved_state(victim)
            .is_none());
        let report = watch_recovery(&mut net, 5000);
        assert!(
            matches!(report.verdict, Verdict::Recovered { .. }),
            "amnesia fallback must still heal: {:?}",
            report.verdict
        );
    }

    #[test]
    fn counted_rng_cursor_restores_the_stream() {
        let mut a = CountedRng::seeded(42);
        for _ in 0..37 {
            a.next_u64();
        }
        let mut b = CountedRng::at_cursor(42, a.draws);
        assert_eq!(a.draws, b.draws);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64(), "streams must stay in lockstep");
        }
    }

    #[test]
    fn injector_state_round_trips_and_rebuilds() {
        let ids = evenly_spaced_ids(12);
        let mut net = Network::new(make_sorted_ring(&ids, ProtocolConfig::default()), 5);
        net.attach_faults(
            FaultPlan::new(11)
                .with_drop(1, 10, 0.5)
                .with_durable_crash(3, ids[2], 2, 2),
        );
        net.run(6);
        let state = net.fault_injector().expect("attached").state();
        assert!(state.rng_draws > 0, "the loss window must have drawn coins");
        let json = serde_json::to_string(&state).expect("serialize");
        let back: InjectorState = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, state);
        let rebuilt = FaultInjector::from_state(back).expect("rebuild");
        assert_eq!(rebuilt.state(), state, "state capture must be a fixpoint");
    }
}
