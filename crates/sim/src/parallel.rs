//! Parallel multi-trial execution.
//!
//! Every experiment aggregates tens to hundreds of independent seeded
//! trials. Trials share nothing, so we parallelize with scoped threads
//! pulling indices from an atomic cursor — data-race-free by
//! construction (each output slot is written by exactly one worker), with
//! no dependency beyond the standard library.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f` over `0..trials` on up to `available_parallelism` worker
/// threads and returns the results in index order. `f` must be `Sync`
/// because multiple workers call it concurrently (on distinct indices).
///
/// Falls back to sequential execution for tiny workloads, where thread
/// startup would dominate.
pub fn run_trials<R, F>(trials: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1)
        .min(trials.max(1));
    if workers <= 1 || trials <= 1 {
        return (0..trials).map(f).collect();
    }

    let mut slots: Vec<Option<R>> = Vec::with_capacity(trials);
    slots.resize_with(trials, || None);
    let slots = Mutex::new(&mut slots);
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= trials {
                    break;
                }
                let r = f(i);
                // Lock held only for the slot write, never across f(i).
                slots.lock()[i] = Some(r);
            });
        }
    });

    slots
        .into_inner()
        .iter_mut()
        .map(|s| s.take().expect("every trial produces a result"))
        .collect()
}

/// Maps `f` over a slice in parallel, preserving order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    run_trials(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_index_order() {
        let out = run_trials(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn each_index_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let out = run_trials(257, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 257);
        let distinct: HashSet<_> = out.iter().collect();
        assert_eq!(distinct.len(), 257);
    }

    #[test]
    fn zero_and_one_trials() {
        assert!(run_trials(0, |i| i).is_empty());
        assert_eq!(run_trials(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..50).collect();
        let out = par_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_simulation_trials_are_independent() {
        // Smoke test of the intended use: independent seeded simulations.
        use crate::convergence::run_to_ring;
        use crate::init::{generate, InitialTopology};
        use swn_core::config::ProtocolConfig;
        use swn_core::id::evenly_spaced_ids;

        let ids = evenly_spaced_ids(12);
        let reports = run_trials(8, |seed| {
            let mut net = generate(
                InitialTopology::RandomSparse { extra: 2 },
                &ids,
                ProtocolConfig::default(),
                seed as u64,
            )
            .into_network(seed as u64);
            run_to_ring(&mut net, 5000)
        });
        assert!(reports
            .iter()
            .all(super::super::convergence::ConvergenceReport::stabilized));
        // Sequential re-run of one trial reproduces the parallel result.
        let mut net = generate(
            InitialTopology::RandomSparse { extra: 2 },
            &ids,
            ProtocolConfig::default(),
            3,
        )
        .into_network(3);
        let seq = run_to_ring(&mut net, 5000);
        assert_eq!(seq.rounds_to_ring, reports[3].rounds_to_ring);
        assert_eq!(seq.messages_to_ring, reports[3].messages_to_ring);
    }
}
