//! Offline stand-in for the `serde` crate.
//!
//! The real serde pivots on visitor-based `Serializer`/`Deserializer`
//! traits so that formats can stream without an intermediate tree. This
//! workspace only ever serializes snapshots and experiment tables to
//! JSON, so the vendored stand-in collapses the data model to one
//! self-describing [`Value`] tree: `Serialize` renders into a `Value`,
//! `Deserialize` rebuilds from one, and `serde_json` (also vendored)
//! converts `Value` to and from JSON text.
//!
//! Conventions match real serde's external tagging so the JSON on disk
//! looks like what the real crate would emit: unit enum variants are
//! strings, data-carrying variants are single-key maps, newtype structs
//! are transparent, and struct fields appear in declaration order.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use helpers::DeError;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every serializable type renders into.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` / a missing `Option`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::type_mismatch("bool", other)),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::try_from(*self).expect("unsigned fits u64"))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => {
                        u64::try_from(*n).expect("non-negative i64 fits u64")
                    }
                    other => return Err(DeError::type_mismatch(stringify!($t), other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_sint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::try_from(*self).expect("signed fits i64");
                if n >= 0 {
                    Value::U64(u64::try_from(n).expect("non-negative"))
                } else {
                    Value::I64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n).map_err(|_| {
                        DeError::new(format!("integer {n} out of range for {}", stringify!($t)))
                    })?,
                    other => return Err(DeError::type_mismatch(stringify!($t), other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_sint!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            #[allow(clippy::cast_precision_loss)]
            Value::U64(n) => Ok(*n as f64),
            #[allow(clippy::cast_precision_loss)]
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::type_mismatch("f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        #[allow(clippy::cast_possible_truncation)]
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::type_mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::type_mismatch("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::new(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let Value::Seq(items) = v else {
                    return Err(DeError::type_mismatch("tuple", v));
                };
                let expected = [$( stringify!($idx) ),+].len();
                if items.len() != expected {
                    return Err(DeError::new(format!(
                        "expected tuple of length {expected}, got {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // String-keyed maps render as JSON objects; anything else would
        // need serde_json's map-key coercion, which nothing here uses.
        Value::Map(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::Str(s) => s,
                        other => panic!("map keys must serialize to strings, got {other:?}"),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

/// Construction helpers shared by the derive macro's generated code.
/// Not part of real serde's API; everything here is `doc(hidden)`-grade
/// plumbing kept public so generated code can reach it.
pub mod helpers {
    use super::{Deserialize, Value};
    use std::fmt;

    /// A deserialization error: a human-readable path and reason.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct DeError(String);

    impl DeError {
        /// Creates an error from a message.
        pub fn new(msg: impl Into<String>) -> Self {
            DeError(msg.into())
        }

        /// A "wrong shape" error naming the expectation and the actual.
        pub fn type_mismatch(expected: &str, got: &Value) -> Self {
            let kind = match got {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::U64(_) | Value::I64(_) => "integer",
                Value::F64(_) => "float",
                Value::Str(_) => "string",
                Value::Seq(_) => "sequence",
                Value::Map(_) => "map",
            };
            DeError(format!("expected {expected}, got {kind}"))
        }
    }

    impl fmt::Display for DeError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for DeError {}

    /// Views `v` as a map, or errors naming the containing type.
    pub fn as_map<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], DeError> {
        match v {
            Value::Map(entries) => Ok(entries),
            other => Err(DeError::new(format!(
                "{ty}: {}",
                DeError::type_mismatch("map", other)
            ))),
        }
    }

    /// Views `v` as a sequence of exactly `n` elements.
    pub fn as_seq<'v>(v: &'v Value, n: usize, ty: &str) -> Result<&'v [Value], DeError> {
        match v {
            Value::Seq(items) if items.len() == n => Ok(items),
            Value::Seq(items) => Err(DeError::new(format!(
                "{ty}: expected {n} elements, got {}",
                items.len()
            ))),
            other => Err(DeError::new(format!(
                "{ty}: {}",
                DeError::type_mismatch("sequence", other)
            ))),
        }
    }

    /// Extracts and deserializes the field `name` from a struct map.
    pub fn field<T: Deserialize>(
        entries: &[(String, Value)],
        name: &str,
        ty: &str,
    ) -> Result<T, DeError> {
        let v = entries
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| DeError::new(format!("{ty}: missing field `{name}`")))?;
        T::from_value(v).map_err(|e| DeError::new(format!("{ty}.{name}: {e}")))
    }

    /// Views an externally-tagged enum value: either a bare string (unit
    /// variant) or a single-entry map (data-carrying variant).
    pub fn variant<'v>(v: &'v Value, ty: &str) -> Result<(&'v str, Option<&'v Value>), DeError> {
        match v {
            Value::Str(name) => Ok((name, None)),
            Value::Map(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), Some(&entries[0].1)))
            }
            other => Err(DeError::new(format!(
                "{ty}: expected variant string or single-key map, got {}",
                DeError::type_mismatch("variant", other)
            ))),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        let s = "hi".to_string();
        assert_eq!(String::from_value(&s.to_value()), Ok(s));
    }

    #[test]
    fn options_use_null() {
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(&Value::U64(9)), Ok(Some(9)));
    }

    #[test]
    fn arrays_enforce_length() {
        let v = [1u64, 2, 3].to_value();
        assert_eq!(<[u64; 3]>::from_value(&v), Ok([1, 2, 3]));
        assert!(<[u64; 4]>::from_value(&v).is_err());
    }

    #[test]
    fn integer_range_checks() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }
}
