//! Deterministic probe-path replay.
//!
//! Given a frozen snapshot, the forwarding decisions of Algorithms 5/6/10
//! are a pure function of node states, so a probe's path can be replayed
//! hop by hop without running the simulator — exactly what Lemma 4.23's
//! hop-count experiment (E4) needs.

use swn_core::id::{Extended, NodeId};
use swn_core::views::Snapshot;

/// Outcome of replaying one probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// The probe reached the long-range link's endpoint.
    Arrived {
        /// Forwarding hops taken.
        hops: u32,
    },
    /// The probe got stuck and would have created a repair edge at the
    /// given hop count (never happens in the stable state — Theorem 4.3).
    Repaired {
        /// Hops taken before the walk got stuck.
        hops: u32,
    },
    /// The walk exceeded `2n` hops (indicates a cyclic corrupt state).
    Diverged,
}

impl ProbeOutcome {
    /// Hops for successfully delivered probes.
    pub fn arrived_hops(self) -> Option<u32> {
        match self {
            ProbeOutcome::Arrived { hops } => Some(hops),
            _ => None,
        }
    }
}

/// Replays the probe a node would launch toward its long-range link.
/// Returns `None` when the token is at its origin (no probe) or the
/// endpoint id is absent from the snapshot.
pub fn replay_lrl_probe(s: &Snapshot, origin_idx: usize) -> Option<ProbeOutcome> {
    let origin = &s.nodes()[origin_idx];
    let dest = origin.lrl();
    if dest == origin.id() || s.index_of(dest).is_none() {
        return None;
    }
    Some(walk(s, origin_idx, dest))
}

/// Replays a probe from `origin_idx` toward an arbitrary existing `dest`
/// (used for the ring-edge probes and for custom distance buckets).
pub fn replay_probe_to(s: &Snapshot, origin_idx: usize, dest: NodeId) -> ProbeOutcome {
    walk(s, origin_idx, dest)
}

fn walk(s: &Snapshot, origin_idx: usize, dest: NodeId) -> ProbeOutcome {
    let max_hops = u32::try_from(2 * s.len() + 4).expect("hop budget fits u32");
    let mut hops = 0u32;
    let origin = &s.nodes()[origin_idx];

    // Origination step (Algorithm 10): hand to the neighbour on the
    // destination's side, or repair if the destination is in our own gap.
    let mut cur = if dest > origin.id() {
        match origin.right() {
            Extended::Fin(rv) if dest >= rv => rv,
            _ => return ProbeOutcome::Repaired { hops },
        }
    } else {
        match origin.left() {
            Extended::Fin(lv) if dest <= lv => lv,
            _ => return ProbeOutcome::Repaired { hops },
        }
    };
    hops += 1;

    // Forwarding steps (Algorithms 5/6).
    loop {
        if cur == dest {
            return ProbeOutcome::Arrived { hops };
        }
        if hops >= max_hops {
            return ProbeOutcome::Diverged;
        }
        let Some(vi) = s.index_of(cur) else {
            return ProbeOutcome::Diverged; // dangling pointer mid-path
        };
        let v = &s.nodes()[vi];
        let next = if dest > v.id() {
            if dest >= v.lrl() && Extended::Fin(v.lrl()) > v.right() {
                v.lrl()
            } else {
                match v.right() {
                    Extended::Fin(rv) if dest >= rv => rv,
                    _ => return ProbeOutcome::Repaired { hops },
                }
            }
        } else if dest < v.id() {
            if dest <= v.lrl() && Extended::Fin(v.lrl()) < v.left() {
                v.lrl()
            } else {
                match v.left() {
                    Extended::Fin(lv) if dest <= lv => lv,
                    _ => return ProbeOutcome::Repaired { hops },
                }
            }
        } else {
            return ProbeOutcome::Arrived { hops };
        };
        cur = next;
        hops += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swn_core::config::ProtocolConfig;
    use swn_core::id::evenly_spaced_ids;
    use swn_core::invariants::make_sorted_ring;
    use swn_core::node::Node;

    fn ring_snapshot_with_lrl(n: usize, lrls: &[(usize, usize)]) -> Snapshot {
        let ids = evenly_spaced_ids(n);
        let cfg = ProtocolConfig::default();
        let mut nodes = make_sorted_ring(&ids, cfg);
        for &(i, t) in lrls {
            nodes[i] = Node::with_state(
                nodes[i].id(),
                nodes[i].left(),
                nodes[i].right(),
                ids[t],
                nodes[i].ring(),
                cfg,
            );
        }
        Snapshot::from_nodes(nodes)
    }

    #[test]
    fn origin_token_has_no_probe() {
        let s = ring_snapshot_with_lrl(8, &[]);
        for i in 0..8 {
            assert_eq!(replay_lrl_probe(&s, i), None);
        }
    }

    #[test]
    fn probe_walks_short_links_to_destination() {
        let s = ring_snapshot_with_lrl(16, &[(2, 7)]);
        // Rank distance 5 via r-links only.
        assert_eq!(
            replay_lrl_probe(&s, 2),
            Some(ProbeOutcome::Arrived { hops: 5 })
        );
    }

    #[test]
    fn probe_walks_leftward_too() {
        let s = ring_snapshot_with_lrl(16, &[(9, 3)]);
        assert_eq!(
            replay_lrl_probe(&s, 9),
            Some(ProbeOutcome::Arrived { hops: 6 })
        );
    }

    #[test]
    fn probe_uses_intermediate_shortcuts() {
        // Node 2 probes to 12; node 4 has a shortcut to 10.
        let s = ring_snapshot_with_lrl(16, &[(2, 12), (4, 10)]);
        // Path: 2→3→4 —lrl→ 10→11→12 = 5 hops instead of 10.
        assert_eq!(
            replay_lrl_probe(&s, 2),
            Some(ProbeOutcome::Arrived { hops: 5 })
        );
    }

    #[test]
    fn overshooting_shortcut_is_skipped() {
        // Node 4's shortcut goes past the destination: must not be taken.
        let s = ring_snapshot_with_lrl(16, &[(2, 8), (4, 13)]);
        assert_eq!(
            replay_lrl_probe(&s, 2),
            Some(ProbeOutcome::Arrived { hops: 6 })
        );
    }

    #[test]
    fn broken_chain_reports_repair() {
        let ids = evenly_spaced_ids(8);
        let cfg = ProtocolConfig::default();
        let mut nodes = make_sorted_ring(&ids, cfg);
        // Cut the list between ranks 4 and 5: node 4's r skips to 6.
        nodes[4] = Node::with_state(
            ids[4],
            swn_core::id::Extended::Fin(ids[3]),
            swn_core::id::Extended::Fin(ids[6]),
            ids[4],
            None,
            cfg,
        );
        // Probe from 2 to 5 must fall into the gap at node 4.
        let s = Snapshot::from_nodes(nodes);
        assert_eq!(
            replay_probe_to(&s, 2, ids[5]),
            ProbeOutcome::Repaired { hops: 2 }
        );
    }

    #[test]
    fn stable_state_probes_never_repair() {
        let s = ring_snapshot_with_lrl(32, &[(0, 20), (5, 31), (17, 2), (30, 1)]);
        for i in 0..32 {
            if let Some(outcome) = replay_lrl_probe(&s, i) {
                assert!(
                    matches!(outcome, ProbeOutcome::Arrived { .. }),
                    "node {i}: {outcome:?}"
                );
            }
        }
    }
}
