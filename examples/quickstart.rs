//! Quickstart: self-stabilize a small overlay from a hostile start and
//! watch the phases complete.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use self_stabilizing_smallworld::prelude::*;

fn main() {
    let n = 64;
    let seed = 42;
    let cfg = ProtocolConfig::default();

    println!("== self-stabilizing small-world: quickstart (n = {n}) ==\n");

    // 1. An adversarial initial state: a random weakly connected digraph
    //    with pointers stuffed into arbitrary slots.
    let ids = evenly_spaced_ids(n);
    let init = generate(InitialTopology::RandomSparse { extra: 3 }, &ids, cfg, seed);
    let mut net = init.into_network(seed);
    println!("initial phase: {:?}", classify(&net.snapshot()));

    // 2. Run the protocol; the network must pass through the proof's
    //    phases in order and never regress.
    let report = run_to_ring(&mut net, 1_000_000);
    assert!(report.stabilized(), "the theorem says this cannot fail");
    println!(
        "phase 1 (LCC weakly connected) after {:>5} rounds",
        report.rounds_to_lcc.unwrap()
    );
    println!(
        "phase 2 (sorted list)          after {:>5} rounds",
        report.rounds_to_list.unwrap()
    );
    println!(
        "phase 3 (sorted ring)          after {:>5} rounds",
        report.rounds_to_ring.unwrap()
    );
    println!(
        "messages: {}   monotone phases: {}\n",
        report.messages_to_ring, report.monotone
    );

    // 3. Keep running: move-and-forget spreads the long-range links.
    net.run(4000);
    let snap = net.snapshot();
    let lengths = lrl_lengths(&snap);
    println!(
        "long-range links live: {}/{n}   log-log slope: {:.2} (harmonic ≈ -1)",
        lengths.len(),
        log_log_slope(&lengths, n / 2).unwrap_or(f64::NAN)
    );

    // 4. The overlay is navigable: greedy routing succeeds on every pair.
    let g = Graph::from_snapshot(&snap, View::Cp);
    let stats = evaluate_routing(&g, 500, 10_000, 1, None);
    println!(
        "greedy routing: success {:.0}%  mean {:.1} hops  p99 {} hops (ring would need ≈ {})",
        100.0 * stats.success_rate(),
        stats.mean_hops,
        stats.p99_hops,
        n / 4
    );
}
