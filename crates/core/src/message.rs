//! Protocol messages.
//!
//! Section III of the paper defines seven message types. A message carries
//! a small set of identifiers plus a type tag that selects the receiver's
//! reaction (Algorithm 1). All links implied by in-flight messages are part
//! of the *channel connectivity graph* CC (Definition 4.2), so the message
//! payloads below are exactly the "temporary links" of the model.

use crate::id::{Extended, NodeId};
use serde::{Deserialize, Serialize};

/// A protocol message, tagged by type per Section III.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Message {
    /// `lin`: the linearization workhorse. Payload: the identifier being
    /// propagated into sorted position (Algorithm 2).
    Lin(NodeId),
    /// `inclrl`: marks an incoming long-range link. Payload: the identifier
    /// of the *origin* of the long-range link, so the endpoint can answer
    /// (Algorithm 3).
    IncLrl(NodeId),
    /// `reslrl`: answer to `inclrl` carrying the endpoint's left and right
    /// neighbours (possibly `±∞` during stabilization) for the
    /// move-and-forget step (Algorithm 4).
    ResLrl(Extended, Extended),
    /// `ring`: sent by a node missing its left (or right) neighbour to its
    /// current ring-edge target (Algorithm 9); answered by Algorithm 7.
    Ring(NodeId),
    /// `resring`: answer to `ring` carrying a better ring-edge candidate
    /// (Algorithm 8 applies it).
    ResRing(NodeId),
    /// `probr`: rightward probe; payload is the probe's destination
    /// (the prober's `lrl` or ring target). Forwarded by Algorithm 5.
    ProbR(NodeId),
    /// `probl`: leftward probe, mirror of `probr` (Algorithm 6).
    ProbL(NodeId),
}

/// The seven message type tags, used for per-kind accounting in the
/// simulator and the experiment harness.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MessageKind {
    /// Linearization (`lin`).
    Lin,
    /// Incoming long-range link announcement (`inclrl`).
    IncLrl,
    /// Long-range link response (`reslrl`).
    ResLrl,
    /// Ring-edge announcement (`ring`).
    Ring,
    /// Ring-edge response (`resring`).
    ResRing,
    /// Rightward probe (`probr`).
    ProbR,
    /// Leftward probe (`probl`).
    ProbL,
}

impl MessageKind {
    /// Number of message kinds. Every dense per-kind array (trace
    /// counters, tabulation buffers) must be sized with this constant so
    /// adding a message type is a one-site change caught by the compiler
    /// (and by `cargo xtask lint`, which flags literal-`7` arrays).
    pub const COUNT: usize = 7;

    /// All kinds, in a fixed order (useful for tabulation).
    pub const ALL: [MessageKind; Self::COUNT] = [
        MessageKind::Lin,
        MessageKind::IncLrl,
        MessageKind::ResLrl,
        MessageKind::Ring,
        MessageKind::ResRing,
        MessageKind::ProbR,
        MessageKind::ProbL,
    ];

    /// Stable index in `0..Self::COUNT`, for dense per-kind counters.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            MessageKind::Lin => 0,
            MessageKind::IncLrl => 1,
            MessageKind::ResLrl => 2,
            MessageKind::Ring => 3,
            MessageKind::ResRing => 4,
            MessageKind::ProbR => 5,
            MessageKind::ProbL => 6,
        }
    }

    /// Lower-case name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            MessageKind::Lin => "lin",
            MessageKind::IncLrl => "inclrl",
            MessageKind::ResLrl => "reslrl",
            MessageKind::Ring => "ring",
            MessageKind::ResRing => "resring",
            MessageKind::ProbR => "probr",
            MessageKind::ProbL => "probl",
        }
    }
}

impl Message {
    /// The message's type tag.
    #[inline]
    pub fn kind(&self) -> MessageKind {
        match self {
            Message::Lin(_) => MessageKind::Lin,
            Message::IncLrl(_) => MessageKind::IncLrl,
            Message::ResLrl(_, _) => MessageKind::ResLrl,
            Message::Ring(_) => MessageKind::Ring,
            Message::ResRing(_) => MessageKind::ResRing,
            Message::ProbR(_) => MessageKind::ProbR,
            Message::ProbL(_) => MessageKind::ProbL,
        }
    }

    /// The finite identifiers carried by this message. These are the
    /// temporary links the message contributes to the channel connectivity
    /// graph CC (Definition 4.2).
    pub fn carried_ids(&self) -> impl Iterator<Item = NodeId> {
        let (a, b): (Option<NodeId>, Option<NodeId>) = match *self {
            Message::Lin(id)
            | Message::IncLrl(id)
            | Message::Ring(id)
            | Message::ResRing(id)
            | Message::ProbR(id)
            | Message::ProbL(id) => (Some(id), None),
            Message::ResLrl(a, b) => (a.fin(), b.fin()),
        };
        a.into_iter().chain(b)
    }

    /// True for the message kinds that participate in the linearization
    /// process, i.e. whose implied links belong to LCC (Definition 4.2
    /// extensions: LCC counts `lin` messages and the stored `l`/`r` links).
    #[inline]
    pub fn in_lcc(&self) -> bool {
        matches!(self, Message::Lin(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Extended;

    fn id(f: f64) -> NodeId {
        NodeId::from_fraction(f)
    }

    #[test]
    fn kind_round_trip() {
        let msgs = [
            Message::Lin(id(0.1)),
            Message::IncLrl(id(0.2)),
            Message::ResLrl(Extended::Fin(id(0.1)), Extended::PosInf),
            Message::Ring(id(0.3)),
            Message::ResRing(id(0.4)),
            Message::ProbR(id(0.5)),
            Message::ProbL(id(0.6)),
        ];
        for (i, m) in msgs.iter().enumerate() {
            assert_eq!(m.kind(), MessageKind::ALL[i]);
            assert_eq!(m.kind().index(), i);
        }
    }

    #[test]
    fn kind_indices_are_dense_and_distinct() {
        let mut seen = [false; MessageKind::COUNT];
        for k in MessageKind::ALL {
            assert!(!seen[k.index()], "duplicate index for {:?}", k);
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn carried_ids_of_reslrl_skips_sentinels() {
        let m = Message::ResLrl(Extended::NegInf, Extended::Fin(id(0.7)));
        let ids: Vec<_> = m.carried_ids().collect();
        assert_eq!(ids, vec![id(0.7)]);

        let m = Message::ResLrl(Extended::NegInf, Extended::PosInf);
        assert_eq!(m.carried_ids().count(), 0);

        let m = Message::ResLrl(Extended::Fin(id(0.1)), Extended::Fin(id(0.9)));
        assert_eq!(m.carried_ids().count(), 2);
    }

    #[test]
    fn only_lin_contributes_to_lcc() {
        assert!(Message::Lin(id(0.5)).in_lcc());
        assert!(!Message::Ring(id(0.5)).in_lcc());
        assert!(!Message::ProbR(id(0.5)).in_lcc());
        assert!(!Message::IncLrl(id(0.5)).in_lcc());
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<_> = MessageKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec!["lin", "inclrl", "reslrl", "ring", "resring", "probr", "probl"]
        );
    }
}
