//! # swn-baselines — reference network models
//!
//! Every comparator the paper's argument rests on, built from scratch:
//!
//! * [`ring_lattice`] — regular lattices (Θ(n) routing; the ordered end
//!   of the Watts–Strogatz spectrum);
//! * [`kleinberg`] — the static harmonic small world the protocol
//!   converges to, plus the uniform-shortcut contrast (polynomial greedy
//!   routing);
//! * [`watts_strogatz`] — the rewiring model behind the C(p)/L(p) figure;
//! * [`chord`] — the uniformly structured overlay the paper positions
//!   small worlds against;
//! * [`random_graph`] — Erdős–Rényi G(n,m)/G(n,p);
//! * [`chaintreau`] — the pure (non-self-stabilizing) move-and-forget
//!   process of the paper's reference [4], the ground truth for the
//!   long-range-link length distribution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaintreau;
pub mod chord;
pub mod kleinberg;
pub mod random_graph;
pub mod ring_lattice;
pub mod torus;
pub mod watts_strogatz;
