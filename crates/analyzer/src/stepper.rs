//! Deterministic randomness policies and the handler-dispatch seam.
//!
//! [`Stepper`] is the one indirection between the explorer and
//! `swn_core::node::Node`: the real implementation forwards to the
//! protocol handlers, and the faulty ones exist solely to prove the
//! monitors can catch a broken protocol (and to exercise the
//! counterexample printer end to end).

use swn_core::message::Message;
use swn_core::node::Node;
use swn_core::outbox::Outbox;

/// Which constant word stream the handlers draw randomness from.
///
/// The only randomized handler is `move-forget` (Algorithm 4), which
/// draws one `random_bool(0.5)` for the candidate choice and one
/// `random::<f64>()` for the forget check. A constant stream makes both
/// draws deterministic, so the *scheduler* is the only source of
/// nondeterminism and the search space is exactly the interleavings:
///
/// * [`Policy::Zeros`] — every draw is `0`: picks the **first** candidate
///   and **forgets** whenever `φ(age) > 0`;
/// * [`Policy::Ones`] — every draw is `u64::MAX`: picks the **second**
///   candidate and **never forgets** (for any `φ(age) < 1`).
///
/// Running the search once per policy covers both branches of each draw
/// at every reachable drawing point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// All-zero word stream: first candidate, eager forget.
    Zeros,
    /// All-ones word stream: second candidate, never forget.
    Ones,
}

impl Policy {
    /// Both policies, for exhaustive sweeps.
    pub const ALL: [Policy; 2] = [Policy::Zeros, Policy::Ones];

    /// Human-readable policy name (also the CLI spelling).
    pub fn label(self) -> &'static str {
        match self {
            Policy::Zeros => "zeros",
            Policy::Ones => "ones",
        }
    }
}

/// A [`rand::Rng`] producing the constant stream selected by a [`Policy`].
#[derive(Clone, Copy, Debug)]
pub struct PolicyRng(pub Policy);

impl rand::Rng for PolicyRng {
    fn next_u64(&mut self) -> u64 {
        match self.0 {
            Policy::Zeros => 0,
            Policy::Ones => u64::MAX,
        }
    }
}

/// Dispatch seam between the explorer and the protocol handlers.
pub trait Stepper {
    /// Delivers `msg` to `node` (the receive action).
    fn deliver(&self, node: &mut Node, msg: Message, rng: &mut PolicyRng, out: &mut Outbox);

    /// Runs `node`'s regular action.
    fn regular(&self, node: &mut Node, out: &mut Outbox);

    /// Name for reports and traces.
    fn label(&self) -> &'static str;
}

/// The actual protocol: forwards to `Node::on_message` / `Node::on_regular`.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealStepper;

impl Stepper for RealStepper {
    fn deliver(&self, node: &mut Node, msg: Message, rng: &mut PolicyRng, out: &mut Outbox) {
        node.on_message(msg, rng, out);
    }

    fn regular(&self, node: &mut Node, out: &mut Outbox) {
        node.on_regular(out);
    }

    fn label(&self) -> &'static str {
        "real"
    }
}

/// Faulty fixture: silently discards every `lin` message instead of
/// linearizing it. The identifier the message carried vanishes from the
/// system, so a CC edge disappears — the explorer must report a
/// `weakly_connected(Cc)` monotonicity violation on any initial state
/// whose connectivity runs through a `lin` in flight.
#[derive(Clone, Copy, Debug, Default)]
pub struct DropLinStepper;

impl Stepper for DropLinStepper {
    fn deliver(&self, node: &mut Node, msg: Message, rng: &mut PolicyRng, out: &mut Outbox) {
        if matches!(msg, Message::Lin(_)) {
            return; // the bug: the carried identifier is lost
        }
        node.on_message(msg, rng, out);
    }

    fn regular(&self, node: &mut Node, out: &mut Outbox) {
        node.on_regular(out);
    }

    fn label(&self) -> &'static str {
        "drop-lin"
    }
}

/// Faulty fixture: handles messages correctly but then echoes each one
/// back to the receiver itself — an undeclared self-send the no-self-message
/// monitor must flag on the very first delivery.
#[derive(Clone, Copy, Debug, Default)]
pub struct SelfEchoStepper;

impl Stepper for SelfEchoStepper {
    fn deliver(&self, node: &mut Node, msg: Message, rng: &mut PolicyRng, out: &mut Outbox) {
        node.on_message(msg, rng, out);
        out.send(node.id(), msg); // the bug: undeclared self-send
    }

    fn regular(&self, node: &mut Node, out: &mut Outbox) {
        node.on_regular(out);
    }

    fn label(&self) -> &'static str {
        "self-echo"
    }
}

/// Faulty fixture for the **liveness** checker: `linearize`'s adopt case
/// is replaced by an overshoot — when `lin(x)` carries an identifier
/// that belongs strictly between this node and its finite neighbour on
/// `x`'s side, the handler forwards `x` *past the gap* to that neighbour
/// instead of adopting it (all other cases, including the sentinel
/// sides, stay correct). The carried identifier is never dropped, so
/// every safety monitor stays green — CC connectivity rides the
/// in-flight message, no self-sends, no duplicates — but the message
/// bounces between the two gap endpoints forever and the node it carries
/// is never linked in: a livelock. Exactly the bug class the fair-cycle
/// detector exists for; the safety explorer reports this stepper clean.
#[derive(Clone, Copy, Debug, Default)]
pub struct BounceLinStepper;

impl Stepper for BounceLinStepper {
    fn deliver(&self, node: &mut Node, msg: Message, rng: &mut PolicyRng, out: &mut Outbox) {
        use swn_core::id::Extended;
        if let Message::Lin(x) = msg {
            let me = node.id();
            if x > me {
                if let Extended::Fin(r) = node.right() {
                    if x < r {
                        out.send(r, Message::Lin(x)); // the bug: overshoot, never adopt
                        return;
                    }
                }
            } else if x < me {
                if let Extended::Fin(l) = node.left() {
                    if x > l {
                        out.send(l, Message::Lin(x)); // the bug, mirrored
                        return;
                    }
                }
            }
        }
        node.on_message(msg, rng, out);
    }

    fn regular(&self, node: &mut Node, out: &mut Outbox) {
        node.on_regular(out);
    }

    fn label(&self) -> &'static str {
        "bounce-lin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng as _, RngExt as _};

    #[test]
    fn zeros_policy_is_all_zero_words() {
        let mut rng = PolicyRng(Policy::Zeros);
        assert_eq!(rng.next_u64(), 0);
        assert!((rng.random::<f64>() - 0.0).abs() < f64::EPSILON);
        assert!(rng.random_bool(0.5), "0.0 < 0.5 picks the first candidate");
    }

    #[test]
    fn ones_policy_never_forgets() {
        let mut rng = PolicyRng(Policy::Ones);
        assert_eq!(rng.next_u64(), u64::MAX);
        let f = rng.random::<f64>();
        assert!(f < 1.0, "draw stays in [0,1)");
        assert!(f > 0.999, "draw is maximal");
        assert!(!rng.random_bool(0.5));
    }
}
