//! **E12 — Chaos campaign and adversarial behavior degradation.**
//!
//! Two instruments on top of the fault engine's adversarial model
//! (`swn_sim::faults`) and the chaos engine (`swn_sim::chaos`):
//!
//! * **E12a** runs each adversarial behavior class — selective-forward
//!   refusal, lying state (self-promote and scramble), a sybil cluster
//!   join, and a crash storm under both restart disciplines — against
//!   the stable harmonic fixture, and reports MTTR alongside the
//!   *in-window service degradation*: greedy-routing success and hop
//!   stretch measured mid-window on the live CP view against the
//!   pre-fault baseline. Durable restarts reload the crash-round
//!   snapshot instead of rejoining blank, so they recover in strictly
//!   fewer rounds than amnesia restarts on the same seeds.
//!
//! * **E12b** runs the seeded chaos campaign: hundreds of random valid
//!   fault-plan compositions, every run classified (recovered, or
//!   disconnected with a named culprit), every failure delta-debugged
//!   to a minimal JSON reproducer. The campaign table is the CI
//!   chaos-smoke gate: any unclassified run fails it, and the shrunk
//!   reproducers are written out as artifacts for replay.

use crate::table::{f2, mean, Table};
use crate::testbed::harmonic_network;
use swn_core::config::ProtocolConfig;
use swn_core::id::NodeId;
use swn_core::views::View;
use swn_sim::chaos::{
    default_failure, run_campaign, run_scenario, CampaignConfig, CampaignReport, RunResult,
    Scenario,
};
use swn_sim::faults::{watch_recovery, FaultPlan, LieMode, Misbehavior, Verdict, WatchReport};
use swn_sim::obs::{Histogram, NoopSink};
use swn_sim::parallel::run_trials;
use swn_sim::Network;
use swn_topology::routing::{evaluate_routing, RoutingStats};
use swn_topology::Graph;

/// Parameters for E12.
#[derive(Clone, Debug)]
pub struct Params {
    /// Network size for the behavior-class trials.
    pub n: usize,
    /// Trials per behavior class.
    pub trials: usize,
    /// Rounds each adversarial window (or crash downtime) stays open.
    pub window: u64,
    /// Crash-storm victims for the restart-discipline rows.
    pub crash_nodes: usize,
    /// Random source/target pairs per routing evaluation.
    pub routing_pairs: usize,
    /// Round budget per recovery watch.
    pub budget: u64,
    /// Master seed of the chaos campaign.
    pub campaign_seed: u64,
    /// Scenarios the campaign samples.
    pub scenarios: usize,
    /// Protocol ε.
    pub epsilon: f64,
}

impl Params {
    /// Full-scale run.
    pub fn full() -> Self {
        Params {
            n: 256,
            trials: 12,
            window: 40,
            crash_nodes: 6,
            routing_pairs: 400,
            budget: 100_000,
            campaign_seed: 0xe12a,
            scenarios: 200,
            epsilon: 0.1,
        }
    }

    /// Reduced scale (CI smoke).
    pub fn quick() -> Self {
        Params {
            n: 64,
            trials: 6,
            window: 16,
            crash_nodes: 4,
            routing_pairs: 200,
            budget: 30_000,
            campaign_seed: 0xe12a,
            scenarios: 50,
            epsilon: 0.1,
        }
    }
}

/// One behavior-class trial: the recovery watch plus the two routing
/// evaluations bracketing the fault window.
struct ClassTrial {
    rep: WatchReport,
    base: RoutingStats,
    mid: RoutingStats,
    dropped: u64,
    forged: u64,
}

/// Aggregated metrics for one adversarial behavior class.
#[derive(Clone, Debug)]
pub struct ChaosPoint {
    /// Class label (table row key).
    pub label: String,
    /// Trials whose watchdog verdict was `Recovered`.
    pub recovered: usize,
    /// Total trials.
    pub trials: usize,
    /// Post-horizon MTTR distribution (rounds from window close to
    /// sorted ring).
    pub mttr: Histogram,
    /// Mean pre-fault greedy-routing success.
    pub base_success: f64,
    /// Mean mid-window greedy-routing success on the degraded view.
    pub mid_success: f64,
    /// Mean ratio of mid-window to baseline mean hops (1.0 = no
    /// stretch; only trials where both evaluations delivered count).
    pub hop_stretch: f64,
    /// Mean messages destroyed by the adversary per trial.
    pub mean_dropped: f64,
    /// Mean messages forged by the adversary per trial.
    pub mean_forged: f64,
    /// Per-trial repair-cascade depth maxima (causal DAG hops).
    pub cascade_depth: Histogram,
}

/// Drives one class scenario: warm fixture, baseline routing, fault
/// window with a mid-window routing probe, then the recovery watch.
/// MTTR here is counted from the window *close* (all faults landed),
/// so it is pure repair work, not residual downtime.
fn run_class_trial(
    p: &Params,
    seed: u64,
    mk_plan: impl Fn(&Network, u64) -> FaultPlan,
) -> ClassTrial {
    let cfg = ProtocolConfig::with_epsilon(p.epsilon);
    let mut net = harmonic_network(p.n, cfg, seed);
    // The sink arms the causal tracer so the watch can bracket a
    // cascade window; observers consume no RNG, outcomes are unchanged.
    net.attach_sink(Box::new(NoopSink), u64::MAX);
    net.run(10);
    let hop_budget = u32::try_from(4 * p.n).unwrap_or(u32::MAX);
    let base_g = Graph::from_view(&net.view(), View::Cp);
    let base = evaluate_routing(&base_g, p.routing_pairs, hop_budget, seed ^ 0x0b5e, None);

    let start = net.round() + 1;
    net.attach_faults(mk_plan(&net, start));
    let mut dropped = 0;
    let mut forged = 0;
    let drive_to = |net: &mut Network, target: u64, dropped: &mut u64, forged: &mut u64| {
        while net.round() < target {
            let stats = net.step();
            *dropped += stats.dropped_fault;
            *forged += stats.forged_fault;
        }
    };
    // Probe the degraded service mid-window: the adversary is active,
    // crashes are down, sybils are joined.
    drive_to(&mut net, start + p.window / 2, &mut dropped, &mut forged);
    let mid_g = Graph::from_view(&net.view(), View::Cp);
    let mid = evaluate_routing(&mid_g, p.routing_pairs, hop_budget, seed ^ 0x51d, None);
    // Close the window (and let every crash restart), then watch.
    drive_to(&mut net, start + p.window, &mut dropped, &mut forged);
    let rep = watch_recovery(&mut net, p.budget);
    net.detach_faults();
    ClassTrial {
        rep,
        base,
        mid,
        dropped,
        forged,
    }
}

fn aggregate(label: String, trials: Vec<ClassTrial>) -> ChaosPoint {
    let mut mttr = Histogram::new();
    let mut cascade_depth = Histogram::new();
    let mut recovered = 0;
    let mut stretches = Vec::new();
    for t in &trials {
        if let Some(rounds) = t.rep.verdict.recovered_rounds() {
            recovered += 1;
            mttr.record(rounds);
        }
        if let Some(c) = &t.rep.cascade {
            cascade_depth.record(c.depth_max());
        }
        if t.base.mean_hops > 0.0 && t.mid.delivered > 0 {
            stretches.push(t.mid.mean_hops / t.base.mean_hops);
        }
    }
    let f64s = |f: &dyn Fn(&ClassTrial) -> f64| trials.iter().map(f).collect::<Vec<_>>();
    ChaosPoint {
        label,
        recovered,
        trials: trials.len(),
        mttr,
        base_success: mean(&f64s(&|t| t.base.success_rate())),
        mid_success: mean(&f64s(&|t| t.mid.success_rate())),
        hop_stretch: mean(&stretches),
        mean_dropped: mean(&f64s(&|t| t.dropped as f64)),
        mean_forged: mean(&f64s(&|t| t.forged as f64)),
        cascade_depth,
    }
}

/// Spread-out interior victims (crash storms, behavior hosts).
fn victims(net: &Network, count: usize) -> Vec<NodeId> {
    let ids = net.ids();
    let stride = (ids.len() / (count + 1)).max(1);
    (1..=count).map(|k| ids[(k * stride) % ids.len()]).collect()
}

fn behavior_point(
    p: &Params,
    label: &str,
    salt: u64,
    mk: impl Fn(&Network) -> Misbehavior + Sync,
) -> ChaosPoint {
    let trials = run_trials(p.trials, |t| {
        let seed = t as u64 * 53 + p.n as u64;
        run_class_trial(p, seed, |net, start| {
            let host = victims(net, 1)[0];
            FaultPlan::new(seed ^ salt).with_behavior(start, start + p.window, host, mk(net))
        })
    });
    aggregate(label.to_string(), trials)
}

/// The selective-forward row: the host refuses every `Lin` it would
/// forward. On the stable fixture every id is *stored* by its ring
/// neighbours, so the refusals degrade service without severing a sole
/// carrier — the class recovers once the window closes.
pub fn measure_selective_forward(p: &Params) -> ChaosPoint {
    behavior_point(p, "selective-forward (refuse Lin, p=1.0)", 0x5e1f, |_| {
        Misbehavior::SelectiveForward {
            kinds: vec![swn_core::message::MessageKind::Lin],
            p: 1.0,
        }
    })
}

/// The lying-state rows: the host advertises forged neighbour state
/// every round of the window (either promoting itself to both ring
/// extremes or scrambling its pointers over the live id pool).
pub fn measure_lying(p: &Params, mode: LieMode) -> ChaosPoint {
    let label = match mode {
        LieMode::SelfPromote => "lying state (self-promote)",
        LieMode::Scramble => "lying state (scramble)",
    };
    behavior_point(p, label, 0x11e5, move |_| Misbehavior::LyingState { mode })
}

/// The sybil row: the host injects a cluster of `k` derived identities
/// around a center mid-window; the process must absorb them into the
/// sorted ring.
pub fn measure_sybil(p: &Params, k: usize) -> ChaosPoint {
    let label = format!("sybil cluster (k={k})");
    behavior_point(p, &label, 0x5b11, move |net| {
        let ids = net.ids();
        Misbehavior::SybilCluster {
            k,
            center: ids[ids.len() / 3],
        }
    })
}

/// The restart-discipline rows: a crash storm of `crash_nodes` victims
/// down for the whole window, restarted blank (`durable = false`) or
/// from their crash-round snapshot (`durable = true`).
pub fn measure_crash_restart(p: &Params, durable: bool) -> ChaosPoint {
    let label = format!(
        "crash storm k={} ({} restart)",
        p.crash_nodes,
        if durable { "durable" } else { "amnesia" }
    );
    let trials = run_trials(p.trials, |t| {
        let seed = t as u64 * 59 + p.n as u64;
        run_class_trial(p, seed, |net, start| {
            let mut plan = FaultPlan::new(seed ^ 0xc4a5);
            for v in victims(net, p.crash_nodes) {
                plan = if durable {
                    plan.with_durable_crash(start, v, p.window, start)
                } else {
                    plan.with_crash(start, v, p.window)
                };
            }
            plan
        })
    });
    aggregate(label, trials)
}

/// Paired MTTRs for one seed under both restart disciplines.
#[derive(Clone, Copy, Debug)]
pub struct RestartPair {
    /// Trial seed (shared by both runs).
    pub seed: u64,
    /// Post-restart recovery rounds with durable restarts.
    pub durable_mttr: u64,
    /// Post-restart recovery rounds with amnesia restarts.
    pub amnesia_mttr: u64,
}

/// Runs the crash storm twice per seed — identical fixture, schedule
/// and injector stream, only the restart discipline differs — and
/// returns the paired recovery times. Durable victims reload their
/// crash-round snapshot, so their ring pointers are correct the moment
/// they return; amnesia victims rejoin blank through real message
/// exchanges. (A verdict other than `Recovered` maps to the watch
/// budget — it cannot win a comparison.)
pub fn measure_restart_pairs(p: &Params) -> Vec<RestartPair> {
    run_trials(p.trials, |t| {
        let seed = t as u64 * 59 + p.n as u64;
        let mttr_of = |durable: bool| {
            let trial = run_class_trial(p, seed, |net, start| {
                let mut plan = FaultPlan::new(seed ^ 0xc4a5);
                for v in victims(net, p.crash_nodes) {
                    plan = if durable {
                        plan.with_durable_crash(start, v, p.window, start)
                    } else {
                        plan.with_crash(start, v, p.window)
                    };
                }
                plan
            });
            match trial.rep.verdict {
                Verdict::Recovered { rounds } => rounds,
                _ => p.budget,
            }
        };
        RestartPair {
            seed,
            durable_mttr: mttr_of(true),
            amnesia_mttr: mttr_of(false),
        }
    })
}

fn point_row(pt: &ChaosPoint) -> Vec<String> {
    vec![
        pt.label.clone(),
        format!("{}/{}", pt.recovered, pt.trials),
        pt.mttr.approx_quantile(0.5).to_string(),
        pt.mttr.max().to_string(),
        f2(pt.base_success),
        f2(pt.mid_success),
        f2(pt.hop_stretch),
        f2(pt.mean_dropped),
        f2(pt.mean_forged),
        pt.cascade_depth.approx_quantile(0.5).to_string(),
        pt.cascade_depth.max().to_string(),
    ]
}

/// Runs E12a and renders the behavior-class table.
pub fn run(p: &Params) -> Table {
    let mut t = Table::new(
        format!(
            "E12a  Adversarial behavior classes: degradation and recovery (n={})",
            p.n
        ),
        "routing measured on the live CP view mid-window vs the pre-fault baseline; \
         mttr counted from window close (pure repair, no residual downtime); durable \
         restarts reload the crash-round snapshot and beat amnesia on the same seeds",
        &[
            "behavior class",
            "recovered",
            "mttr p50",
            "mttr max",
            "route ok pre",
            "route ok mid",
            "hop stretch",
            "dropped",
            "forged",
            "casc p50",
            "casc max",
        ],
    );
    t.push_row(point_row(&measure_selective_forward(p)));
    t.push_row(point_row(&measure_lying(p, LieMode::SelfPromote)));
    t.push_row(point_row(&measure_lying(p, LieMode::Scramble)));
    t.push_row(point_row(&measure_sybil(p, 4)));
    t.push_row(point_row(&measure_crash_restart(p, false)));
    t.push_row(point_row(&measure_crash_restart(p, true)));
    let pairs = measure_restart_pairs(p);
    let durable: Vec<f64> = pairs.iter().map(|x| x.durable_mttr as f64).collect();
    let amnesia: Vec<f64> = pairs.iter().map(|x| x.amnesia_mttr as f64).collect();
    let wins = pairs
        .iter()
        .filter(|x| x.durable_mttr < x.amnesia_mttr)
        .count();
    t.push_row(vec![
        "durable vs amnesia (paired seeds)".to_string(),
        format!("{}/{} wins", wins, pairs.len()),
        f2(mean(&durable)),
        f2(mean(&amnesia)),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]);
    t
}

/// Runs the seeded chaos campaign with the default failure predicate
/// (anything unclassified fails and is shrunk).
pub fn run_campaign_report(p: &Params) -> CampaignReport {
    let cfg = CampaignConfig::new(p.campaign_seed, p.scenarios);
    run_campaign(&cfg, &default_failure)
}

/// Renders a campaign report as the E12b table.
pub fn campaign_table(p: &Params, report: &CampaignReport) -> Table {
    let mut t = Table::new(
        format!(
            "E12b  Chaos campaign: {} random fault compositions (seed {:#x})",
            report.total, p.campaign_seed
        ),
        "every sampled scenario must be *classified*: it recovers, or it disconnects \
         with a culprit sole-carrier drop named. Panics, budget exhaustion and \
         unattributed disconnections are failures, shrunk to minimal JSON reproducers",
        &["outcome", "runs", "status"],
    );
    let ok = |good: bool| if good { "ok" } else { "FAIL" }.to_string();
    t.push_row(vec![
        "recovered".to_string(),
        report.recovered.to_string(),
        "ok".to_string(),
    ]);
    t.push_row(vec![
        "disconnected (attributed)".to_string(),
        report.disconnected.to_string(),
        "ok".to_string(),
    ]);
    t.push_row(vec![
        "disconnected (unattributed)".to_string(),
        report.unattributed.to_string(),
        ok(report.unattributed == 0),
    ]);
    t.push_row(vec![
        "budget exhausted".to_string(),
        report.budget_exhausted.to_string(),
        ok(report.budget_exhausted == 0),
    ]);
    t.push_row(vec![
        "panicked".to_string(),
        report.panicked.to_string(),
        ok(report.panicked == 0),
    ]);
    for f in &report.failures {
        t.push_row(vec![
            format!("  shrunk reproducer #{}", f.index),
            format!("{} entries", f.shrunk.plan.entry_count()),
            f.shrunk_result.outcome.label().to_string(),
        ]);
    }
    t
}

/// Writes every shrunk reproducer of a failed campaign into `dir` as
/// `reproducer-<index>.json`, replayable with `experiments replay`.
/// Returns the written paths.
pub fn write_reproducers(
    report: &CampaignReport,
    dir: &std::path::Path,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    let mut out = Vec::new();
    if report.failures.is_empty() {
        return Ok(out);
    }
    std::fs::create_dir_all(dir)?;
    for f in &report.failures {
        let path = dir.join(format!("reproducer-{}.json", f.index));
        std::fs::write(&path, f.shrunk.to_json())?;
        out.push(path);
    }
    Ok(out)
}

/// Replays a scenario file (a shrunk reproducer, or any hand-written
/// scenario) and returns the scenario plus its classified result.
pub fn replay_file(path: &str) -> Result<(Scenario, RunResult), String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let scenario = Scenario::from_json(&json)?;
    let result = run_scenario(&scenario);
    Ok((scenario, result))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Params {
        let mut p = Params::quick();
        p.n = 32;
        p.trials = 3;
        p.window = 10;
        p.crash_nodes = 3;
        p.routing_pairs = 100;
        p.budget = 20_000;
        p.scenarios = 10;
        p
    }

    #[test]
    fn adversarial_windows_degrade_service_but_recover() {
        let p = tiny();
        for pt in [
            measure_selective_forward(&p),
            measure_lying(&p, LieMode::SelfPromote),
            measure_lying(&p, LieMode::Scramble),
            measure_sybil(&p, 3),
        ] {
            assert_eq!(
                pt.recovered, pt.trials,
                "{}: bounded-window adversaries on the stable fixture must heal",
                pt.label
            );
            assert!(
                pt.base_success > 0.99,
                "{}: the harmonic fixture routes pre-fault ({})",
                pt.label,
                pt.base_success
            );
        }
        // The refusal and forgery classes actually exercise their lever.
        let sf = measure_selective_forward(&p);
        assert!(sf.mean_dropped > 0.0, "refusals destroy messages");
        let lie = measure_lying(&p, LieMode::SelfPromote);
        assert!(lie.mean_forged > 0.0, "lies forge messages");
    }

    #[test]
    fn crash_storm_degrades_routing_mid_window() {
        let p = tiny();
        let pt = measure_crash_restart(&p, false);
        assert_eq!(pt.recovered, pt.trials, "{pt:?}");
        assert!(
            pt.mid_success < pt.base_success,
            "downed nodes must show up as routing loss: pre {} vs mid {}",
            pt.base_success,
            pt.mid_success
        );
    }

    #[test]
    fn durable_restart_beats_amnesia_on_every_seed() {
        let p = tiny();
        for pair in measure_restart_pairs(&p) {
            assert!(
                pair.durable_mttr < pair.amnesia_mttr,
                "seed {}: durable restart ({} rounds) must recover in strictly \
                 fewer rounds than amnesia ({} rounds)",
                pair.seed,
                pair.durable_mttr,
                pair.amnesia_mttr
            );
        }
    }

    #[test]
    fn campaign_smoke_is_clean_and_tables_render() {
        let p = tiny();
        let report = run_campaign_report(&p);
        assert_eq!(report.total, p.scenarios);
        assert!(
            report.clean(),
            "campaign failures: {:?}",
            report
                .failures
                .iter()
                .map(|f| (&f.result.outcome, f.scenario.to_json()))
                .collect::<Vec<_>>()
        );
        let rendered = campaign_table(&p, &report).render();
        assert!(rendered.contains("E12b"), "{rendered}");
        assert!(rendered.contains("recovered"), "{rendered}");
        assert!(!rendered.contains("FAIL"), "{rendered}");
    }

    #[test]
    fn reproducers_round_trip_through_the_replay_path() {
        // Build a synthetic failed campaign (a scenario whose budget is
        // too small to finish) and check the artifact + replay plumbing.
        use swn_sim::chaos::{shrink, FailureCase, Outcome, Start};
        let scenario = Scenario {
            n: 16,
            net_seed: 3,
            start: Start::Sparse { extra: 2 },
            budget: 1,
            plan: FaultPlan::new(7).with_drop(1, 3, 0.9),
        };
        let strict = |r: &RunResult| !matches!(r.outcome, Outcome::Recovered { .. });
        let result = run_scenario(&scenario);
        assert!(strict(&result), "starved budget must fail: {result:?}");
        let shrunk = shrink(&scenario, &|c| strict(&run_scenario(c)));
        let shrunk_result = run_scenario(&shrunk);
        let report = CampaignReport {
            total: 1,
            failures: vec![FailureCase {
                index: 0,
                scenario,
                result,
                shrunk,
                shrunk_result,
            }],
            ..Default::default()
        };
        let dir = std::env::temp_dir().join("swn_e12_reproducers_test");
        let _ = std::fs::remove_dir_all(&dir);
        let paths = write_reproducers(&report, &dir).expect("write artifacts");
        assert_eq!(paths.len(), 1);
        let (replayed, res) = replay_file(paths[0].to_str().expect("utf-8 path")).expect("replay");
        assert_eq!(replayed, report.failures[0].shrunk);
        assert_eq!(res, report.failures[0].shrunk_result);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
