//! **E9 — Stable-state message overhead and the forget horizon**
//! (Section IV.F; the O(n) w.h.p. bound in the proof of Theorem 4.22).
//!
//! Two measurements:
//!
//! * **messages per node per round**, by kind, on a stabilized network —
//!   the protocol's standing cost. Shape: a small constant (2 lin + 2
//!   echoes + 1 inclrl + replies + probes), independent of n.
//! * **rounds until every long-range link has been forgotten at least
//!   once**, vs n — the Theorem 4.22 proof needs this to be O(n) w.h.p.;
//!   measured on the fast move-and-forget baseline (median over seeds,
//!   since the w.h.p. bound has a polynomial tail).

use crate::table::{f2, Table};
use crate::testbed::stabilized_network;
use swn_baselines::chaintreau::MoveForgetRing;
use swn_core::config::ProtocolConfig;
use swn_core::message::MessageKind;
use swn_sim::parallel::run_trials;

/// Parameters for E9.
#[derive(Clone, Debug)]
pub struct Params {
    /// Sizes for the per-round message census.
    pub sizes: Vec<usize>,
    /// Warmup before the census.
    pub warmup: u64,
    /// Census window (rounds).
    pub window: u64,
    /// Horizon (in multiples of n) for the max-age measurement.
    pub age_horizon_factor: u64,
    /// Protocol ε.
    pub epsilon: f64,
}

impl Params {
    /// Full-scale run.
    pub fn full() -> Self {
        Params {
            sizes: vec![128, 256, 512, 1024, 2048],
            warmup: 3_000,
            window: 300,
            age_horizon_factor: 50,
            epsilon: 0.1,
        }
    }

    /// Reduced scale.
    pub fn quick() -> Self {
        Params {
            sizes: vec![64, 128],
            warmup: 800,
            window: 100,
            age_horizon_factor: 20,
            epsilon: 0.1,
        }
    }
}

/// Message census at one size.
#[derive(Clone, Debug)]
pub struct Census {
    /// Network size.
    pub n: usize,
    /// Mean messages per node per round, by kind index.
    pub per_kind: [f64; MessageKind::COUNT],
    /// Total mean messages per node per round.
    pub total: f64,
}

/// Runs the stable-state message census.
pub fn census(n: usize, p: &Params, seed: u64) -> Census {
    let cfg = ProtocolConfig::with_epsilon(p.epsilon);
    let mut net = stabilized_network(n, cfg, seed, p.warmup);
    let start = net.trace().len();
    net.run(p.window);
    let sent = net.trace().sent_by_kind_in(start..net.trace().len());
    let denom = (n as u64 * p.window) as f64;
    let mut per_kind = [0f64; MessageKind::COUNT];
    for (v, &s) in per_kind.iter_mut().zip(&sent) {
        *v = s as f64 / denom;
    }
    Census {
        n,
        per_kind,
        total: per_kind.iter().sum(),
    }
}

/// Rounds until every token has been forgotten at least once — the
/// quantity the Theorem 4.22 proof bounds by O(n) w.h.p. Measured on the
/// fast baseline with a `factor·n` round budget.
pub fn rounds_all_forgotten(n: usize, p: &Params, seed: u64) -> u64 {
    let mut mf = MoveForgetRing::new(n, p.epsilon, seed);
    mf.rounds_until_all_forgotten(p.age_horizon_factor * n as u64)
        .unwrap_or(p.age_horizon_factor * n as u64)
}

/// Median of [`rounds_all_forgotten`] over several seeds — the "w.h.p."
/// in the O(n) bound leaves a polynomially decaying tail (a single run
/// can legitimately blow past any fixed multiple of n), so the median is
/// the stable summary.
pub fn rounds_all_forgotten_median(n: usize, p: &Params, seeds: usize) -> u64 {
    // Per-seed trials in parallel; each seed is a function of the trial
    // index alone, so the median is worker-count independent.
    let mut xs = run_trials(seeds, |s| {
        rounds_all_forgotten(n, p, 99 + s as u64 * 7 + n as u64)
    });
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Runs E9 and renders the table.
pub fn run(p: &Params) -> Table {
    let mut t = Table::new(
        "E9  Stable-state overhead and forget horizon",
        "messages per node per round are O(1) independent of n; all links are forgotten at least once within O(n) rounds w.h.p. (Sec. IV.F / Thm 4.22)",
        &[
            "n", "msgs/node/rd", "lin", "inclrl", "reslrl", "prob", "ring+res",
            "all-forgot rd", "rd/n",
        ],
    );
    // One trial per size (the census simulation dominates); seeds depend
    // only on n, so the table is worker-count independent.
    let rows = run_trials(p.sizes.len(), |i| {
        let n = p.sizes[i];
        (
            census(n, p, 99 + n as u64),
            rounds_all_forgotten_median(n, p, 5),
        )
    });
    for (c, age) in rows {
        let n = c.n;
        let k = |kind: MessageKind| c.per_kind[kind.index()];
        t.push_row(vec![
            n.to_string(),
            f2(c.total),
            f2(k(MessageKind::Lin)),
            f2(k(MessageKind::IncLrl)),
            f2(k(MessageKind::ResLrl)),
            f2(k(MessageKind::ProbR) + k(MessageKind::ProbL)),
            f2(k(MessageKind::Ring) + k(MessageKind::ResRing)),
            age.to_string(),
            f2(age as f64 / n as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_node_rate_is_constant_in_n() {
        let p = Params::quick();
        let small = census(64, &p, 1);
        let large = census(128, &p, 1);
        // O(1)/node/round: the two rates differ by a small factor only.
        assert!(
            (small.total - large.total).abs() / small.total < 0.25,
            "rates {} vs {} not O(1)",
            small.total,
            large.total
        );
        // The floor: every node sends ≥ 2 lin + 1 inclrl per round.
        assert!(large.total >= 3.0, "rate {} below the floor", large.total);
        assert!(large.total < 15.0, "rate {} absurdly high", large.total);
    }

    #[test]
    fn every_kind_appears_in_stable_state() {
        let p = Params::quick();
        let c = census(64, &p, 5);
        assert!(c.per_kind[MessageKind::Lin.index()] > 1.5);
        assert!(c.per_kind[MessageKind::IncLrl.index()] > 0.9);
        assert!(c.per_kind[MessageKind::ResLrl.index()] > 0.5);
        // Probes exist whenever tokens are off-origin.
        assert!(
            c.per_kind[MessageKind::ProbR.index()] + c.per_kind[MessageKind::ProbL.index()] > 0.1
        );
    }

    #[test]
    fn all_links_forgotten_within_linear_rounds() {
        let p = Params::quick();
        // Median over seeds: the O(n) bound holds w.h.p. with a
        // polynomial tail, so single runs may run long.
        let a64 = rounds_all_forgotten_median(64, &p, 5).max(1);
        let a256 = rounds_all_forgotten_median(256, &p, 5).max(1);
        let r64 = a64 as f64 / 64.0;
        let r256 = a256 as f64 / 256.0;
        assert!(r64 < 10.0, "median rounds/n at 64: {r64}");
        assert!(r256 < 10.0, "median rounds/n at 256: {r256}");
    }

    #[test]
    fn table_has_one_row_per_size() {
        let mut p = Params::quick();
        p.sizes = vec![64];
        let t = run(&p);
        assert_eq!(t.rows.len(), 1);
    }
}
