//! Greedy routing evaluation.
//!
//! The stabilized network supports Kleinberg-style greedy routing: a
//! message at node `u` headed for `t` moves to the neighbour of `u`
//! closest to `t` in ring distance. On a harmonic small world this takes
//! O(ln^(2+ε) n) expected hops (Theorem 4.22 / Lemma 4.23); on a plain
//! ring Θ(n); with uniformly random long links Kleinberg's lower bound
//! says polynomial — the routing-hops experiment separates the three.
//!
//! Routing operates on a [`Graph`] whose node indices are *ring ranks*
//! (as produced by [`Graph::from_snapshot`] or the baseline generators),
//! so the ring metric is `ring_distance(u, t, n)`.

use crate::graph::Graph;
use crate::paths::ring_distance;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use serde::{Deserialize, Serialize};

/// Outcome of one greedy route.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteResult {
    /// Reached the target in the given number of hops.
    Arrived(u32),
    /// No neighbour was strictly closer to the target (greedy dead end —
    /// possible only on damaged graphs).
    Stuck {
        /// Rank at which no strictly closer neighbour existed.
        at: usize,
        /// Hops taken before getting stuck.
        after: u32,
    },
    /// Exceeded the hop budget.
    Exhausted,
}

impl RouteResult {
    /// Hops on success.
    pub fn hops(self) -> Option<u32> {
        match self {
            RouteResult::Arrived(h) => Some(h),
            _ => None,
        }
    }
}

/// Routes greedily from `src` to `dst` (ring ranks), moving to the
/// neighbour strictly closest to `dst` in ring distance, tie-broken by
/// lower index for determinism.
pub fn greedy_route(g: &Graph, src: usize, dst: usize, max_hops: u32) -> RouteResult {
    let n = g.n();
    let mut cur = src;
    let mut hops = 0u32;
    while cur != dst {
        if hops >= max_hops {
            return RouteResult::Exhausted;
        }
        let here = ring_distance(cur, dst, n);
        let mut best: Option<(usize, usize)> = None; // (distance, node)
        for &v in g.neighbors(cur) {
            let d = ring_distance(v as usize, dst, n);
            if d < here && best.is_none_or(|(bd, bv)| d < bd || (d == bd && (v as usize) < bv)) {
                best = Some((d, v as usize));
            }
        }
        match best {
            Some((_, v)) => {
                cur = v;
                hops += 1;
            }
            None => {
                return RouteResult::Stuck {
                    at: cur,
                    after: hops,
                }
            }
        }
    }
    RouteResult::Arrived(hops)
}

/// Aggregate greedy-routing statistics over random source/target pairs.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct RoutingStats {
    /// Pairs attempted.
    pub attempts: u64,
    /// Pairs that arrived.
    pub delivered: u64,
    /// Mean hops over delivered pairs.
    pub mean_hops: f64,
    /// Maximum hops over delivered pairs.
    pub max_hops: u32,
    /// 99th-percentile hops over delivered pairs.
    pub p99_hops: u32,
}

impl RoutingStats {
    /// Delivery success rate in `[0, 1]`.
    pub fn success_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.delivered as f64 / self.attempts as f64
        }
    }
}

/// Evaluates greedy routing over `pairs` random (src ≠ dst) pairs.
/// `alive` optionally masks failed nodes (failed sources/targets are
/// re-drawn; failed intermediate nodes simply have no edges if the graph
/// was filtered with [`Graph::without_nodes`]).
pub fn evaluate_routing(
    g: &Graph,
    pairs: usize,
    max_hops: u32,
    seed: u64,
    alive: Option<&[bool]>,
) -> RoutingStats {
    let n = g.n();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = RoutingStats::default();
    let mut hops_all: Vec<u32> = Vec::new();
    let alive_count = alive.map_or(n, |a| a.iter().filter(|&&x| x).count());
    if n < 2 || alive_count < 2 {
        return stats;
    }
    let draw = |rng: &mut StdRng| loop {
        let v = rng.random_range(0..n);
        if alive.is_none_or(|a| a[v]) {
            return v;
        }
    };
    for _ in 0..pairs {
        let s = draw(&mut rng);
        let mut t = draw(&mut rng);
        while t == s {
            t = draw(&mut rng);
        }
        stats.attempts += 1;
        if let RouteResult::Arrived(h) = greedy_route(g, s, t, max_hops) {
            stats.delivered += 1;
            hops_all.push(h);
        }
    }
    if !hops_all.is_empty() {
        hops_all.sort_unstable();
        stats.mean_hops = hops_all.iter().map(|&h| h as f64).sum::<f64>() / hops_all.len() as f64;
        stats.max_hops = *hops_all.last().expect("non-empty");
        // len·0.99 is in [0, len], non-negative by construction.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let idx = ((hops_all.len() as f64) * 0.99).ceil() as usize;
        stats.p99_hops = hops_all[idx.saturating_sub(1).min(hops_all.len() - 1)];
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bidirectional cycle on n ranks.
    fn ring(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
            g.add_edge((i + 1) % n, i);
        }
        g
    }

    #[test]
    fn ring_routing_takes_ring_distance_hops() {
        let g = ring(16);
        assert_eq!(greedy_route(&g, 0, 5, 100), RouteResult::Arrived(5));
        assert_eq!(greedy_route(&g, 0, 13, 100), RouteResult::Arrived(3));
        assert_eq!(greedy_route(&g, 7, 7, 100), RouteResult::Arrived(0));
    }

    #[test]
    fn shortcut_is_taken_when_closer() {
        let mut g = ring(32);
        g.add_edge(0, 16);
        assert_eq!(greedy_route(&g, 0, 16, 100), RouteResult::Arrived(1));
        assert_eq!(greedy_route(&g, 0, 15, 100), RouteResult::Arrived(2));
    }

    #[test]
    fn overshooting_shortcut_ignored() {
        let mut g = ring(32);
        g.add_edge(0, 3); // shortcut closer to target 2? d(3,2)=1 < d(0,2)=2: taken
        assert_eq!(greedy_route(&g, 0, 2, 100), RouteResult::Arrived(2));
    }

    #[test]
    fn hop_budget_enforced() {
        let g = ring(64);
        assert_eq!(greedy_route(&g, 0, 32, 10), RouteResult::Exhausted);
    }

    #[test]
    fn damaged_graph_gets_stuck() {
        let mut g = ring(8);
        let removed = vec![false, true, false, false, false, false, false, true];
        let h = g.without_nodes(&removed);
        // 0's both ring neighbours (1 and 7) are gone: immediately stuck.
        match greedy_route(&h, 0, 4, 100) {
            RouteResult::Stuck { at: 0, after: 0 } => {}
            other => panic!("expected stuck at 0, got {other:?}"),
        }
        g.add_edge(0, 4);
    }

    #[test]
    fn evaluate_routing_on_ring() {
        let g = ring(32);
        let stats = evaluate_routing(&g, 500, 1000, 7, None);
        assert_eq!(stats.attempts, 500);
        assert_eq!(stats.delivered, 500);
        // Mean ring distance over random pairs ≈ n/4 = 8.
        assert!(
            (6.0..10.0).contains(&stats.mean_hops),
            "{}",
            stats.mean_hops
        );
        assert!(stats.max_hops <= 16);
        assert!(stats.p99_hops <= stats.max_hops);
        assert_eq!(stats.success_rate(), 1.0);
    }

    #[test]
    fn evaluate_routing_respects_alive_mask() {
        let g = ring(16);
        let mut alive = vec![true; 16];
        for a in &mut alive[8..16] {
            *a = false;
        }
        let damaged = g.without_nodes(&alive.iter().map(|&a| !a).collect::<Vec<_>>());
        let stats = evaluate_routing(&damaged, 200, 100, 9, Some(&alive));
        assert_eq!(stats.attempts, 200);
        // Sources/targets only among 0..8; the surviving arc is connected,
        // but greedy may need to cross the dead arc for wrapped pairs.
        assert!(stats.delivered > 0);
    }

    #[test]
    fn empty_or_tiny_graphs() {
        let g = ring(1);
        let stats = evaluate_routing(&g, 10, 10, 1, None);
        assert_eq!(stats.attempts, 0);
    }
}
