//! Dense id→slot index: O(1) message routing for the step engine.
//!
//! The simulator stores nodes and channels in slot vectors; every send
//! must map a destination [`NodeId`] to its slot. A `BTreeMap` lookup
//! costs O(log n) pointer chases per message, which PR 3's profiling put
//! squarely on the hot path (several lookups per node per round). This
//! index keeps **two** synchronized structures:
//!
//! * an open-addressing hash table (fibonacci hashing, linear probing,
//!   backward-shift deletion) answering [`SlotIndex::get`] in O(1) with
//!   no per-entry allocation — the routing path;
//! * a `BTreeMap` for *ordered* traversal — `ids()`, snapshots, views
//!   and the round-order materialization, which must stay deterministic
//!   and sorted by id.
//!
//! The hash table is **never iterated**, so its (hash-dependent, hence
//! insertion-order-dependent) internal layout can never leak into the
//! simulation: determinism rests on the BTreeMap alone. Slot churn is
//! the dangerous case — `remove_node` pushes a slot onto a free list and
//! a later insert reuses it for a *different* id — and is covered by a
//! proptest pitting this index against a `BTreeMap` oracle over random
//! insert/remove/lookup sequences (`tests/slot_index_prop.rs`).

use std::collections::BTreeMap;
use swn_core::id::NodeId;

/// Initial hash-table capacity (power of two).
const INITIAL_CAPACITY: usize = 16;

/// An id→slot map with O(1) lookup and ordered iteration.
#[derive(Clone, Debug)]
pub struct SlotIndex {
    /// Ordered spelling: authoritative for iteration and length.
    ordered: BTreeMap<NodeId, usize>,
    /// Open-addressing table, power-of-two length, load factor ≤ 1/2.
    table: Vec<Option<(NodeId, usize)>>,
}

impl Default for SlotIndex {
    fn default() -> Self {
        SlotIndex::new()
    }
}

impl SlotIndex {
    /// An empty index.
    pub fn new() -> Self {
        SlotIndex {
            ordered: BTreeMap::new(),
            table: vec![None; INITIAL_CAPACITY],
        }
    }

    /// Fibonacci hashing: the high bits of `bits · φ⁻¹·2⁶⁴` mapped onto
    /// the power-of-two table. High bits, because the low bits of a
    /// multiplicative hash depend only on the low bits of the key.
    #[inline]
    fn home(bits: u64, table_len: usize) -> usize {
        let h = bits.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        // The shift leaves log2(table_len) bits, which fit usize.
        #[allow(clippy::cast_possible_truncation)]
        {
            (h >> (64 - table_len.trailing_zeros())) as usize
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.ordered.len()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.ordered.is_empty()
    }

    /// O(1) slot lookup — the message-routing hot path.
    #[inline]
    pub fn get(&self, id: NodeId) -> Option<usize> {
        let mask = self.table.len() - 1;
        let mut i = Self::home(id.bits(), self.table.len());
        loop {
            match self.table[i] {
                None => return None,
                Some((k, slot)) if k == id => return Some(slot),
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    /// True when `id` is present.
    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        self.get(id).is_some()
    }

    /// Inserts `id → slot`. Returns false (and changes nothing) when the
    /// id is already present.
    pub fn insert(&mut self, id: NodeId, slot: usize) -> bool {
        if self.contains(id) {
            return false;
        }
        self.ordered.insert(id, slot);
        if (self.ordered.len() + 1) * 2 > self.table.len() {
            self.grow();
        }
        Self::raw_insert(&mut self.table, id, slot);
        true
    }

    /// Removes `id`, returning its slot.
    pub fn remove(&mut self, id: NodeId) -> Option<usize> {
        let slot = self.ordered.remove(&id)?;
        let mask = self.table.len() - 1;
        let mut i = Self::home(id.bits(), self.table.len());
        // The entry exists (the ordered map had it), so this terminates.
        while self.table[i].is_none_or(|(k, _)| k != id) {
            i = (i + 1) & mask;
        }
        self.table[i] = None;
        // Backward-shift deletion: close the hole so later probes never
        // stop early at it. An occupied entry at j moves into the hole at
        // i exactly when i lies cyclically within [home(j-entry), j].
        let mut j = (i + 1) & mask;
        while let Some((k, s)) = self.table[j] {
            let h = Self::home(k.bits(), self.table.len());
            if j.wrapping_sub(h) & mask >= j.wrapping_sub(i) & mask {
                self.table[i] = Some((k, s));
                self.table[j] = None;
                i = j;
            }
            j = (j + 1) & mask;
        }
        Some(slot)
    }

    /// The ids in ascending order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.ordered.keys().copied()
    }

    /// The slots in ascending *id* order — the deterministic traversal
    /// the round loop, snapshots and views are built from.
    pub fn slots_by_id(&self) -> impl Iterator<Item = usize> + '_ {
        self.ordered.values().copied()
    }

    fn grow(&mut self) {
        let mut table = vec![None; self.table.len() * 2];
        for entry in self.table.iter().flatten() {
            Self::raw_insert(&mut table, entry.0, entry.1);
        }
        self.table = table;
    }

    fn raw_insert(table: &mut [Option<(NodeId, usize)>], id: NodeId, slot: usize) {
        let mask = table.len() - 1;
        let mut i = Self::home(id.bits(), table.len());
        while table[i].is_some() {
            i = (i + 1) & mask;
        }
        table[i] = Some((id, slot));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(bits: u64) -> NodeId {
        NodeId::from_bits(bits)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut idx = SlotIndex::new();
        assert!(idx.is_empty());
        assert!(idx.insert(id(10), 0));
        assert!(idx.insert(id(5), 1));
        assert!(!idx.insert(id(10), 9), "duplicate insert must be refused");
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.get(id(10)), Some(0));
        assert_eq!(idx.get(id(5)), Some(1));
        assert_eq!(idx.get(id(7)), None);
        assert_eq!(idx.remove(id(10)), Some(0));
        assert_eq!(idx.remove(id(10)), None);
        assert_eq!(idx.get(id(10)), None);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn ordered_iteration_is_ascending_by_id() {
        let mut idx = SlotIndex::new();
        for (slot, bits) in [40u64, 7, 99, 23].into_iter().enumerate() {
            idx.insert(id(bits), slot);
        }
        let ids: Vec<u64> = idx.ids().map(NodeId::bits).collect();
        assert_eq!(ids, vec![7, 23, 40, 99]);
        // Slots follow the id order, not insertion order.
        let slots: Vec<usize> = idx.slots_by_id().collect();
        assert_eq!(slots, vec![1, 3, 0, 2]);
    }

    #[test]
    fn survives_growth_past_many_rehashes() {
        let mut idx = SlotIndex::new();
        for k in 0..1000usize {
            assert!(idx.insert(id(k as u64 * 0x1_0001), k));
        }
        assert_eq!(idx.len(), 1000);
        for k in 0..1000usize {
            assert_eq!(idx.get(id(k as u64 * 0x1_0001)), Some(k));
        }
    }

    #[test]
    fn backward_shift_keeps_probe_chains_intact() {
        // Fill enough keys that probe chains form, then delete from the
        // middle of chains and verify every survivor is still found.
        let keys: Vec<u64> = (0..256u64).map(|k| k.wrapping_mul(0x9e3779b9)).collect();
        let mut idx = SlotIndex::new();
        for (slot, &k) in keys.iter().enumerate() {
            idx.insert(id(k), slot);
        }
        for (slot, &k) in keys.iter().enumerate() {
            if slot % 3 == 0 {
                assert_eq!(idx.remove(id(k)), Some(slot));
            }
        }
        for (slot, &k) in keys.iter().enumerate() {
            let expect = if slot % 3 == 0 { None } else { Some(slot) };
            assert_eq!(idx.get(id(k)), expect, "key {k} after deletions");
        }
    }

    #[test]
    fn slot_reuse_after_remove_reroutes_to_the_new_owner() {
        // The churn pattern the network uses: a removed node's slot is
        // recycled for a different id; lookups must route to the new id
        // only.
        let mut idx = SlotIndex::new();
        idx.insert(id(1), 0);
        idx.insert(id(2), 1);
        assert_eq!(idx.remove(id(1)), Some(0));
        idx.insert(id(3), 0); // reuse slot 0
        assert_eq!(idx.get(id(1)), None);
        assert_eq!(idx.get(id(3)), Some(0));
        assert_eq!(idx.get(id(2)), Some(1));
    }
}
