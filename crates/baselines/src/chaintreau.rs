//! The pure move-and-forget process of Chaintreau, Fraigniaud and Lebhar
//! (ICALP 2008) on an already-formed ring — the paper's reference [4] and
//! the non-self-stabilizing baseline for experiment E2.
//!
//! On the 1-D ring the process is a lazy walk: each node owns a token
//! starting at itself; each round the token steps to a uniformly chosen
//! ring neighbour of its current position and is forgotten (reset to its
//! origin) with probability φ(age). The stationary token displacement is
//! the 1-harmonic distribution, which is what makes the graph navigable.
//!
//! Because the ring is fixed, the whole process reduces to integer
//! arithmetic on ranks — no messages — so it runs orders of magnitude
//! faster than the full protocol and serves as the ground truth the
//! self-stabilized network must match.

use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use swn_core::forget::phi;
use swn_topology::paths::ring_distance;
use swn_topology::Graph;

/// State of the direct move-and-forget simulation.
#[derive(Debug)]
pub struct MoveForgetRing {
    n: usize,
    epsilon: f64,
    /// Token position (ring rank) per node.
    pos: Vec<usize>,
    /// Token age per node.
    age: Vec<u64>,
    rng: StdRng,
    forgets: u64,
    max_age_seen: u64,
    rounds: u64,
    first_forget: Vec<Option<u64>>,
}

impl MoveForgetRing {
    /// All tokens at their origins, age 0.
    pub fn new(n: usize, epsilon: f64, seed: u64) -> Self {
        assert!(n >= 4, "need at least 4 nodes, got {n}");
        MoveForgetRing {
            n,
            epsilon,
            pos: (0..n).collect(),
            age: vec![0; n],
            rng: StdRng::seed_from_u64(seed),
            forgets: 0,
            max_age_seen: 0,
            rounds: 0,
            first_forget: vec![None; n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the ring is empty (never: `new` requires n ≥ 4).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// One synchronous round: every token moves ±1 and then faces the
    /// forget check.
    pub fn step(&mut self) {
        self.rounds += 1;
        for i in 0..self.n {
            self.age[i] += 1;
            self.pos[i] = if self.rng.random_bool(0.5) {
                (self.pos[i] + 1) % self.n
            } else {
                (self.pos[i] + self.n - 1) % self.n
            };
            let p = phi(self.age[i], self.epsilon);
            if p > 0.0 && self.rng.random::<f64>() < p {
                self.max_age_seen = self.max_age_seen.max(self.age[i]);
                self.pos[i] = i;
                self.age[i] = 0;
                self.forgets += 1;
                if self.first_forget[i].is_none() {
                    self.first_forget[i] = Some(self.rounds);
                }
            }
        }
    }

    /// Runs `rounds` rounds.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Current link lengths (ring distance origin→token), zero-length
    /// (at-origin) tokens excluded.
    pub fn lengths(&self) -> Vec<usize> {
        (0..self.n)
            .filter_map(|i| {
                let d = ring_distance(i, self.pos[i], self.n);
                (d > 0).then_some(d)
            })
            .collect()
    }

    /// Total forget events so far.
    pub fn forgets(&self) -> u64 {
        self.forgets
    }

    /// Largest age observed at a forget event.
    pub fn max_age_seen(&self) -> u64 {
        self.max_age_seen
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Runs until every token has been forgotten at least once and
    /// returns the round at which the last first-forget happened — the
    /// quantity the proof of Theorem 4.22 bounds by O(n) w.h.p. ("after
    /// at most O(n) steps all long-range links have been forgotten at
    /// least once"). Returns `None` if `max_rounds` elapse first.
    pub fn rounds_until_all_forgotten(&mut self, max_rounds: u64) -> Option<u64> {
        while self.rounds < max_rounds {
            if let Some(done) = self.all_forgotten_at() {
                return Some(done);
            }
            self.step();
        }
        self.all_forgotten_at()
    }

    fn all_forgotten_at(&self) -> Option<u64> {
        self.first_forget
            .iter()
            .copied()
            .collect::<Option<Vec<u64>>>()
            .map(|v| v.into_iter().max().unwrap_or(0))
    }

    /// The resulting graph: the cycle plus one directed long-range link
    /// per node at the token's current position.
    pub fn graph(&self) -> Graph {
        let mut g = crate::ring_lattice::cycle(self.n);
        for (i, &t) in self.pos.iter().enumerate() {
            g.add_edge(i, t);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swn_topology::distribution::{ks_to_harmonic, log_log_slope};
    use swn_topology::routing::evaluate_routing;

    #[test]
    fn tokens_stay_on_the_ring() {
        let mut mf = MoveForgetRing::new(32, 0.1, 1);
        mf.run(500);
        for i in 0..32 {
            assert!(mf.pos[i] < 32);
        }
    }

    #[test]
    fn forgets_happen_and_reset_age() {
        let mut mf = MoveForgetRing::new(16, 0.1, 2);
        mf.run(200);
        assert!(mf.forgets() > 0, "200 rounds must produce forgets");
        assert!(mf.max_age_seen() >= 3, "forgets only at age ≥ 3");
    }

    #[test]
    fn stationary_lengths_follow_the_log_corrected_harmonic_law() {
        let n = 512;
        let mut mf = MoveForgetRing::new(n, 0.1, 3);
        mf.run(20_000);
        let mut lengths = Vec::new();
        for _ in 0..300 {
            mf.run(10);
            lengths.extend(mf.lengths());
        }
        // The finite-time stationary law is 1/(d·ln^{1+ε} d) — harmonic up
        // to a slowly varying factor. The corrected CDF must fit strictly
        // better than the plain harmonic one, and the log–log slope must
        // be a clear heavy-tailed power law near −1 (uniform would give 0,
        // geometric −∞).
        let ks_plain = ks_to_harmonic(&lengths, n / 2);
        let ks_corr = swn_topology::distribution::ks_to_cdf(
            &lengths,
            &swn_topology::distribution::log_corrected_harmonic_cdf(n / 2, 0.1),
        );
        assert!(
            ks_corr < ks_plain,
            "corrected {ks_corr} vs plain {ks_plain}"
        );
        assert!(ks_corr < 0.30, "KS to corrected law = {ks_corr}");
        let slope = log_log_slope(&lengths, n / 2).expect("enough bins");
        assert!((-2.2..=-1.0).contains(&slope), "slope {slope}");
    }

    #[test]
    fn converged_graph_routes_much_better_than_the_ring() {
        let n = 2048;
        let mut mf = MoveForgetRing::new(n, 0.1, 4);
        mf.run(20_000);
        let mf_stats = evaluate_routing(&mf.graph(), 300, 100_000, 5, None);
        let ring_stats = evaluate_routing(&crate::ring_lattice::cycle(n), 300, 100_000, 5, None);
        assert_eq!(mf_stats.success_rate(), 1.0);
        // Ring mean ≈ n/4 = 512; the move-and-forget overlay must cut it
        // by well over 2× at this (finite) convergence horizon, trending
        // to the O(ln^{2+ε} n) regime as warmup grows.
        assert!(
            mf_stats.mean_hops * 2.0 < ring_stats.mean_hops,
            "mf {} vs ring {}",
            mf_stats.mean_hops,
            ring_stats.mean_hops
        );
        assert!(
            mf_stats.mean_hops < 250.0,
            "mean hops {} suspiciously high",
            mf_stats.mean_hops
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a = MoveForgetRing::new(64, 0.1, 9);
        let mut b = MoveForgetRing::new(64, 0.1, 9);
        a.run(100);
        b.run(100);
        assert_eq!(a.pos, b.pos);
        assert_eq!(a.forgets(), b.forgets());
    }
}
