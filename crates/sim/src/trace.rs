//! Per-round metrics collection.
//!
//! The experiments measure the protocol in *rounds* and *messages* — the
//! units every theorem is stated in. The trace records, per round, the
//! message counts by kind plus the structured protocol events (probe
//! repairs, token moves/forgets, sanitation) emitted by the handlers.

use serde::{Deserialize, Serialize};
use swn_core::message::MessageKind;
use swn_core::outbox::ProtocolEvent;

/// Counters for one simulated round. `Copy` (it is a fixed pile of
/// integers), so the round loop records it into the trace without a
/// clone call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Messages sent this round, by kind index (see
    /// [`MessageKind::index`]).
    pub sent: [u64; MessageKind::COUNT],
    /// Messages delivered this round, by kind index.
    pub delivered: [u64; MessageKind::COUNT],
    /// Messages whose destination no longer exists (possible during
    /// churn) and whose payload is safely stored elsewhere; they are
    /// dropped.
    pub dropped_churn: u64,
    /// Messages destroyed by the fault injector (loss rate, partition
    /// cut, or a crashed destination). Unlike churn drops, the payload
    /// is *not* known to be stored elsewhere — a fault drop may sever
    /// the sole carrier of an identifier (see `swn_sim::faults`).
    pub dropped_fault: u64,
    /// Extra copies created by the fault injector's duplication rate.
    /// Counted on top of `sent` (the original is counted there).
    pub duplicated_fault: u64,
    /// Messages whose payload a lying-state behavior forged in flight.
    /// The true payload is destroyed (and logged as a drop) even though
    /// *a* message is still delivered, so a forgery can sever a sole
    /// carrier exactly like a fault drop can.
    pub forged_fault: u64,
    /// Stored pointer values a state perturbation overwrote. The old
    /// target may have been the knowledge graph's only edge into its
    /// component, so an erasure can sever connectivity exactly like a
    /// sole-carrier drop; each erased value is logged in the injector's
    /// drop log so the watchdog can attribute the disconnection.
    pub erased_fault: u64,
    /// `lin` messages to a departed destination that were handed back to
    /// their sender for reprocessing (the payload named a live node, so
    /// the message may be its sole carrier). Not drops: the payload stays
    /// in the system.
    pub bounced: u64,
    /// True when this round may have changed the network's phase: a
    /// message was delivered, some node's link state (`l`/`r`/`lrl`/ring)
    /// changed, or a message bounced/dropped. Conservative — a round with
    /// `links_changed == false` provably preserves the
    /// [`classify`](swn_core::invariants::classify) result, so observers
    /// may skip reclassification (see DESIGN.md).
    pub links_changed: bool,
    /// Probe-repair events: a probe got stuck and created an edge.
    pub probe_repairs: u64,
    /// Long-range token moves.
    pub lrl_moves: u64,
    /// Long-range link forget events.
    pub lrl_forgets: u64,
    /// Sum of ages at forget (ratio with `lrl_forgets` gives the mean).
    pub forget_age_sum: u64,
    /// Maximal age observed at a forget event this round.
    pub forget_age_max: u64,
    /// Ring-edge bootstrap/resets.
    pub ring_resets: u64,
    /// Ill-typed pointers salvaged by sanitation.
    pub pointers_salvaged: u64,
    /// Left/right neighbour adoptions during linearization.
    pub neighbor_adoptions: u64,
    /// Messages carrying the id registered with `Network::track_id`.
    pub tracked_sent: u64,
}

impl RoundStats {
    /// Total messages sent this round.
    pub fn total_sent(&self) -> u64 {
        self.sent.iter().sum()
    }

    /// Total messages delivered this round.
    pub fn total_delivered(&self) -> u64 {
        self.delivered.iter().sum()
    }

    /// Records a send.
    pub fn count_sent(&mut self, kind: MessageKind) {
        self.sent[kind.index()] += 1;
    }

    /// Records a delivery.
    pub fn count_delivered(&mut self, kind: MessageKind) {
        self.delivered[kind.index()] += 1;
    }

    /// Total messages dropped this round, from either cause (churn
    /// departures or injected faults).
    pub fn dropped(&self) -> u64 {
        self.dropped_churn + self.dropped_fault
    }

    /// Folds a protocol event into the counters.
    pub fn count_event(&mut self, ev: &ProtocolEvent) {
        match ev {
            ProtocolEvent::ProbeRepair { .. } => self.probe_repairs += 1,
            ProtocolEvent::LrlMoved { .. } => self.lrl_moves += 1,
            ProtocolEvent::LrlForgotten { age } => {
                self.lrl_forgets += 1;
                self.forget_age_sum += age;
                self.forget_age_max = self.forget_age_max.max(*age);
            }
            ProtocolEvent::RingReset { .. } => self.ring_resets += 1,
            ProtocolEvent::PointerSalvaged { .. } => self.pointers_salvaged += 1,
            ProtocolEvent::NeighborAdopted { .. } => self.neighbor_adoptions += 1,
        }
    }
}

/// The full history of a simulation run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    rounds: Vec<RoundStats>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends a finished round.
    pub fn push(&mut self, stats: RoundStats) {
        self.rounds.push(stats);
    }

    /// Per-round stats, oldest first.
    pub fn rounds(&self) -> &[RoundStats] {
        &self.rounds
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// True when no rounds have been recorded.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Total messages sent over the whole run.
    pub fn total_sent(&self) -> u64 {
        self.rounds.iter().map(RoundStats::total_sent).sum()
    }

    /// Total messages sent of one kind.
    pub fn total_sent_of(&self, kind: MessageKind) -> u64 {
        self.rounds.iter().map(|r| r.sent[kind.index()]).sum()
    }

    /// Total messages bounced back to their sender over the whole run.
    pub fn total_bounced(&self) -> u64 {
        self.rounds.iter().map(|r| r.bounced).sum()
    }

    /// Total messages dropped over the whole run, from either cause.
    pub fn total_dropped(&self) -> u64 {
        self.rounds.iter().map(RoundStats::dropped).sum()
    }

    /// Total churn-induced drops (message to a departed destination
    /// whose payload is safely stored elsewhere).
    pub fn total_dropped_churn(&self) -> u64 {
        self.rounds.iter().map(|r| r.dropped_churn).sum()
    }

    /// Total fault-injected drops (loss rate, partition cut, crashed
    /// destination — see `swn_sim::faults`).
    pub fn total_dropped_fault(&self) -> u64 {
        self.rounds.iter().map(|r| r.dropped_fault).sum()
    }

    /// Total fault-injected duplicate copies over the whole run.
    pub fn total_duplicated_fault(&self) -> u64 {
        self.rounds.iter().map(|r| r.duplicated_fault).sum()
    }

    /// Total lying-state forgeries over the whole run (see
    /// `RoundStats::forged_fault`).
    pub fn total_forged_fault(&self) -> u64 {
        self.rounds.iter().map(|r| r.forged_fault).sum()
    }

    /// Total perturbation-erased pointer values over the whole run (see
    /// `RoundStats::erased_fault`).
    pub fn total_erased_fault(&self) -> u64 {
        self.rounds.iter().map(|r| r.erased_fault).sum()
    }

    /// Total probe repairs over the whole run.
    pub fn total_probe_repairs(&self) -> u64 {
        self.rounds.iter().map(|r| r.probe_repairs).sum()
    }

    /// Total forget events.
    pub fn total_forgets(&self) -> u64 {
        self.rounds.iter().map(|r| r.lrl_forgets).sum()
    }

    /// Largest link age seen at any forget event.
    pub fn max_forget_age(&self) -> u64 {
        self.rounds
            .iter()
            .map(|r| r.forget_age_max)
            .max()
            .unwrap_or(0)
    }

    /// The last round in which a probe repair happened, if any.
    pub fn last_probe_repair_round(&self) -> Option<usize> {
        self.rounds.iter().rposition(|r| r.probe_repairs > 0)
    }

    /// Total tracked-id messages (see `Network::track_id`).
    pub fn total_tracked(&self) -> u64 {
        self.rounds.iter().map(|r| r.tracked_sent).sum()
    }

    /// Messages sent summed over a suffix window (for stable-state
    /// overhead measurements).
    pub fn sent_in_last(&self, window: usize) -> u64 {
        let start = self.rounds.len().saturating_sub(window);
        self.rounds[start..]
            .iter()
            .map(RoundStats::total_sent)
            .sum()
    }

    /// Total messages delivered over the whole run.
    pub fn total_delivered(&self) -> u64 {
        self.rounds.iter().map(RoundStats::total_delivered).sum()
    }

    /// Messages sent from round index `start` (0-based into
    /// [`Trace::rounds`]) to the end — the windowed sum the ablations
    /// and golden-trace code used to recompute by hand. A `start` past
    /// the end yields 0.
    pub fn sent_since(&self, start: usize) -> u64 {
        self.rounds
            .get(start.min(self.rounds.len())..)
            .map_or(0, |w| w.iter().map(RoundStats::total_sent).sum())
    }

    /// Messages sent by kind over the round-index window `range`
    /// (clamped to the recorded rounds).
    pub fn sent_by_kind_in(&self, range: std::ops::Range<usize>) -> [u64; MessageKind::COUNT] {
        let lo = range.start.min(self.rounds.len());
        let hi = range.end.min(self.rounds.len());
        let mut out = [0u64; MessageKind::COUNT];
        for r in &self.rounds[lo..hi.max(lo)] {
            for (acc, &sent) in out.iter_mut().zip(&r.sent) {
                *acc += sent;
            }
        }
        out
    }

    /// The cumulative sent series for one kind: element `r` is the total
    /// number of `kind` messages sent in rounds `0..=r`. Cumulative
    /// series from consecutive runs merge by offsetting with the last
    /// element — the report's message-mix-over-time view is built from
    /// these.
    pub fn cumulative_sent_of(&self, kind: MessageKind) -> Vec<u64> {
        let mut acc = 0;
        self.rounds
            .iter()
            .map(|r| {
                acc += r.sent[kind.index()];
                acc
            })
            .collect()
    }

    /// Mean and max lrl age at forget over the round-index window
    /// `range` (clamped), or `None` when the window saw no forget
    /// events.
    pub fn forget_age_stats_in(&self, range: std::ops::Range<usize>) -> Option<(f64, u64)> {
        let lo = range.start.min(self.rounds.len());
        let hi = range.end.min(self.rounds.len());
        let w = &self.rounds[lo..hi.max(lo)];
        let forgets: u64 = w.iter().map(|r| r.lrl_forgets).sum();
        if forgets == 0 {
            return None;
        }
        let sum: u64 = w.iter().map(|r| r.forget_age_sum).sum();
        let max = w.iter().map(|r| r.forget_age_max).max().unwrap_or(0);
        #[allow(clippy::cast_precision_loss)]
        Some((sum as f64 / forgets as f64, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swn_core::id::NodeId;

    #[test]
    fn round_stats_accumulate() {
        let mut r = RoundStats::default();
        r.count_sent(MessageKind::Lin);
        r.count_sent(MessageKind::Lin);
        r.count_sent(MessageKind::ProbR);
        r.count_delivered(MessageKind::Lin);
        assert_eq!(r.total_sent(), 3);
        assert_eq!(r.total_delivered(), 1);
        assert_eq!(r.sent[MessageKind::Lin.index()], 2);
    }

    #[test]
    fn events_fold_into_counters() {
        let mut r = RoundStats::default();
        let a = NodeId::from_fraction(0.1);
        let b = NodeId::from_fraction(0.9);
        r.count_event(&ProtocolEvent::ProbeRepair { at: a, dest: b });
        r.count_event(&ProtocolEvent::LrlMoved { from: a, to: b });
        r.count_event(&ProtocolEvent::LrlForgotten { age: 10 });
        r.count_event(&ProtocolEvent::LrlForgotten { age: 4 });
        r.count_event(&ProtocolEvent::RingReset { to: None });
        r.count_event(&ProtocolEvent::PointerSalvaged { value: b });
        r.count_event(&ProtocolEvent::NeighborAdopted {
            side: swn_core::outbox::Side::Left,
            old: swn_core::id::Extended::NegInf,
            new: b,
        });
        assert_eq!(r.neighbor_adoptions, 1);
        assert_eq!(r.probe_repairs, 1);
        assert_eq!(r.lrl_moves, 1);
        assert_eq!(r.lrl_forgets, 2);
        assert_eq!(r.forget_age_sum, 14);
        assert_eq!(r.forget_age_max, 10);
        assert_eq!(r.ring_resets, 1);
        assert_eq!(r.pointers_salvaged, 1);
    }

    #[test]
    fn trace_aggregates() {
        let mut t = Trace::new();
        let mut r1 = RoundStats::default();
        r1.count_sent(MessageKind::Lin);
        r1.probe_repairs = 2;
        r1.lrl_forgets = 1;
        r1.forget_age_max = 8;
        t.push(r1);
        let mut r2 = RoundStats::default();
        r2.count_sent(MessageKind::Ring);
        r2.count_sent(MessageKind::Lin);
        t.push(r2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_sent(), 3);
        assert_eq!(t.total_sent_of(MessageKind::Lin), 2);
        assert_eq!(t.total_probe_repairs(), 2);
        assert_eq!(t.total_forgets(), 1);
        assert_eq!(t.max_forget_age(), 8);
        assert_eq!(t.last_probe_repair_round(), Some(0));
        assert_eq!(t.sent_in_last(1), 2);
        assert_eq!(t.sent_in_last(10), 3);
    }

    #[test]
    fn windowed_and_cumulative_accessors() {
        let mut t = Trace::new();
        for k in 0..4u64 {
            let mut r = RoundStats::default();
            r.sent[MessageKind::Lin.index()] = k + 1; // 1, 2, 3, 4
            r.sent[MessageKind::Ring.index()] = 1;
            r.lrl_forgets = u64::from(k >= 2);
            r.forget_age_sum = if k >= 2 { 6 * (k - 1) } else { 0 }; // 6, 12
            r.forget_age_max = if k >= 2 { 6 * (k - 1) } else { 0 };
            t.push(r);
        }
        // sent_since equals the hand-rolled suffix sum it replaces.
        assert_eq!(t.sent_since(0), t.total_sent());
        assert_eq!(t.sent_since(2), (3 + 1) + (4 + 1));
        assert_eq!(t.sent_since(99), 0, "out-of-range start is empty");
        // Per-kind window, clamped.
        let w = t.sent_by_kind_in(1..3);
        assert_eq!(w[MessageKind::Lin.index()], 2 + 3);
        assert_eq!(w[MessageKind::Ring.index()], 2);
        assert_eq!(t.sent_by_kind_in(3..99)[MessageKind::Lin.index()], 4);
        // A reversed range is exactly the degenerate input the clamp
        // must turn into an empty window.
        #[allow(clippy::reversed_empty_ranges)]
        let reversed = 5..2;
        assert_eq!(t.sent_by_kind_in(reversed), [0; MessageKind::COUNT]);
        // Cumulative series is a running sum ending at the kind total.
        let cum = t.cumulative_sent_of(MessageKind::Lin);
        assert_eq!(cum, vec![1, 3, 6, 10]);
        assert_eq!(*cum.last().unwrap(), t.total_sent_of(MessageKind::Lin));
        // Forget-age stats over windows with and without events.
        assert_eq!(t.forget_age_stats_in(0..2), None);
        let (mean, max) = t.forget_age_stats_in(0..4).unwrap();
        assert!((mean - 9.0).abs() < 1e-9, "mean {mean}");
        assert_eq!(max, 12);
        // Delivered totals.
        assert_eq!(t.total_delivered(), 0);
    }

    #[test]
    fn empty_trace_defaults() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.total_sent(), 0);
        assert_eq!(t.max_forget_age(), 0);
        assert_eq!(t.last_probe_repair_round(), None);
    }
}
