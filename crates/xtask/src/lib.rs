//! Protocol-conformance lints the stock toolchain cannot express.
//!
//! `cargo xtask lint` enforces repo-specific rules that sit above
//! rustc/clippy's pay grade because they encode *protocol* knowledge:
//!
//! * [`Rule::WildcardMessageMatch`] — a `match` whose arm patterns name
//!   `Message::…` or `MessageKind::…` variants must not contain a `_`
//!   arm. Handler dispatch has to break when a message variant is added,
//!   not silently ignore it. (Matches over other types may use `_`
//!   freely; only message matches are protocol dispatch.)
//! * [`Rule::HandlerUnwrap`] — the protocol handler modules of
//!   `swn-core` (`node`, `linearize`, `lrl`, `probing`, `ring`,
//!   `forget`) must not call `.unwrap()` / `.expect(…)` outside
//!   `#[cfg(test)]` items: a malformed peer message must never be able
//!   to panic a node. Handlers express absence with guards and early
//!   returns instead.
//! * [`Rule::HardcodedKindCount`] — in any file that refers to
//!   `MessageKind`, an array length spelled as the literal `7` (the
//!   current number of message kinds) must be `MessageKind::COUNT`
//!   instead, so per-kind tables grow with the enum. Arrays of length 7
//!   in files that never mention `MessageKind` (e.g. the seven routing
//!   systems of `e3_routing`) are untouched.
//! * [`Rule::MissingForbidUnsafe`] — every crate root (`src/lib.rs`)
//!   must carry `#![forbid(unsafe_code)]` so the workspace-level deny
//!   cannot be overridden locally.
//! * [`Rule::BtreeHotPath`] — the per-round hot-path modules of
//!   `swn-sim` (`slots`, `network`, `channel`, `sched`) must not use
//!   `BTreeMap` outside `#[cfg(test)]` items: the round engine replaced
//!   ordered-map traversal with flat slot arenas and an incrementally
//!   maintained sorted order (DESIGN.md §12), and a stray `BTreeMap`
//!   silently reintroduces O(log n) pointer chasing per message. Tests
//!   may keep `BTreeMap` oracles; non-test exceptions need a waiver.
//! * [`Rule::Nondeterminism`] — non-test code in the deterministic
//!   crates (`swn-core`, `swn-sim`, `swn-analyzer`) must not reach for
//!   randomized-iteration hash collections (`HashMap`/`HashSet`), wall
//!   clocks (`Instant::now`/`SystemTime::now`) or unseeded randomness
//!   (`thread_rng`/`from_entropy`). Replay, the analyzer's exhaustive
//!   search and the seeded experiments all assume the same seed yields
//!   the same execution; each exception needs a waiver stating why it
//!   cannot leak into observable behavior (e.g. a hash map used only
//!   for keyed lookup, never iterated).
//! * [`Rule::PrintlnInLib`] — library code (any `crates/*/src/` file
//!   that is not a `main.rs` or under `bin/`) must not print to the
//!   console with `println!`/`print!`/`eprintln!`/`eprint!`. Libraries
//!   return strings or take writers and let the *binary* decide where
//!   output goes — a stray `println!` in a library corrupts JSONL
//!   streams and machine-read pipelines. Intentional console surfaces
//!   (e.g. `Table::print`) carry a waiver.
//! * [`Rule::UnwrapInLib`] — the robustness modules of `swn-sim`
//!   (`faults`, `persist`, `chaos`) must not call `.unwrap()` /
//!   `.expect(…)` outside `#[cfg(test)]` items. These are exactly the
//!   paths exercised while injecting faults, restoring corrupted
//!   checkpoints and classifying chaos scenarios: a panic there is
//!   indistinguishable from the protocol bug being hunted, so errors
//!   must surface as `Result`s/named outcomes. Each deliberate panic
//!   (e.g. serializing an in-memory value tree) carries a waiver
//!   stating why it cannot be reached by untrusted input.
//!
//! A finding is suppressed by a waiver comment `// lint: allow(<rule>)`
//! on the offending line or the line directly above it.
//!
//! The scanner is hand-rolled (comments and string literals are blanked,
//! then brace/paren-depth is tracked to split match arms); the offline
//! build environment has no `syn`, and these rules only need token-level
//! structure. The scanner is exact on rustfmt-formatted code, which CI
//! guarantees.

#![forbid(unsafe_code)]

use std::fmt;
use std::path::{Path, PathBuf};

/// The lint rules, in reporting order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// `_` arm in a `match` over `Message`/`MessageKind` patterns.
    WildcardMessageMatch,
    /// `.unwrap()`/`.expect(` in protocol handler code.
    HandlerUnwrap,
    /// Array length `7` where `MessageKind::COUNT` is meant.
    HardcodedKindCount,
    /// Crate root without `#![forbid(unsafe_code)]`.
    MissingForbidUnsafe,
    /// Nondeterministic construct in a deterministic crate.
    Nondeterminism,
    /// `BTreeMap` in a simulator hot-path module.
    BtreeHotPath,
    /// Console print macro in library (non-binary) code.
    PrintlnInLib,
    /// `.unwrap()`/`.expect(` in fault/persist/chaos library code.
    UnwrapInLib,
}

impl Rule {
    /// The waiver spelling: `// lint: allow(<name>)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WildcardMessageMatch => "wildcard-message-match",
            Rule::HandlerUnwrap => "handler-unwrap",
            Rule::HardcodedKindCount => "hardcoded-kind-count",
            Rule::MissingForbidUnsafe => "missing-forbid-unsafe",
            Rule::Nondeterminism => "determinism",
            Rule::BtreeHotPath => "btree-hot-path",
            Rule::PrintlnInLib => "println-in-lib",
            Rule::UnwrapInLib => "unwrap-in-lib",
        }
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Path as given to [`lint_source`].
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Replaces comments and string/char literals with spaces, preserving
/// newlines and column positions, so the structural scan never trips on
/// braces or `=>` inside them.
fn blank_noncode(src: &str) -> String {
    #[derive(PartialEq)]
    enum S {
        Code,
        Line,
        Block(u32),
        Str,
        RawStr(usize),
        Char,
    }
    let mut out = String::with_capacity(src.len());
    let b: Vec<char> = src.chars().collect();
    let mut st = S::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        let next = |k: usize| b.get(i + k).copied();
        match st {
            S::Code => {
                if c == '/' && next(1) == Some('/') {
                    st = S::Line;
                    out.push(' ');
                } else if c == '/' && next(1) == Some('*') {
                    st = S::Block(1);
                    out.push(' ');
                } else if c == '"' {
                    st = S::Str;
                    out.push(' ');
                } else if c == 'r' && (next(1) == Some('"') || next(1) == Some('#')) {
                    // Raw string r"…" / r#"…"# — count the hashes.
                    let mut hashes = 0;
                    while next(1 + hashes) == Some('#') {
                        hashes += 1;
                    }
                    if next(1 + hashes) == Some('"') {
                        st = S::RawStr(hashes);
                        for _ in 0..=(1 + hashes) {
                            out.push(' ');
                        }
                        i += 1 + hashes + 1;
                        continue;
                    }
                    out.push(c);
                } else if c == '\'' && next(2) == Some('\'') && next(1).is_some_and(|m| m != '\\') {
                    // Plain char literal 'x' (lifetimes never end in ').
                    out.push_str("   ");
                    i += 3;
                    continue;
                } else if c == '\'' && next(1) == Some('\\') {
                    st = S::Char;
                    out.push(' ');
                } else {
                    out.push(c);
                }
            }
            S::Line => {
                if c == '\n' {
                    st = S::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            S::Block(d) => {
                if c == '*' && next(1) == Some('/') {
                    st = if d == 1 { S::Code } else { S::Block(d - 1) };
                    out.push_str("  ");
                    i += 2;
                    continue;
                } else if c == '/' && next(1) == Some('*') {
                    st = S::Block(d + 1);
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
            S::Str => {
                if c == '\\' {
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '"' {
                    st = S::Code;
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
            S::RawStr(hashes) => {
                if c == '"' && (0..hashes).all(|k| next(1 + k) == Some('#')) {
                    st = S::Code;
                    for _ in 0..=hashes {
                        out.push(' ');
                    }
                    i += hashes + 1;
                    continue;
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
            S::Char => {
                if c == '\'' {
                    st = S::Code;
                }
                out.push(' ');
            }
        }
        i += 1;
    }
    out
}

/// Line numbers (1-based) covered by `#[cfg(test)]` items: from the
/// attribute to the close of the brace block that follows it.
///
/// Scans the *blanked* text: the attribute is code so it survives
/// blanking, occurrences quoted in comments or strings are erased, and
/// — crucially — the byte offset of a hit stays aligned with the brace
/// walk. (Searching the original and reusing its offsets in the blanked
/// text silently desynchronizes the walk as soon as a comment contains
/// a multi-byte character, which blanking collapses to one space.)
fn test_region_lines(blanked: &str) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let line_of = |pos: usize| blanked[..pos].matches('\n').count() + 1;
    let bytes: Vec<char> = blanked.chars().collect();
    let mut search = 0;
    while let Some(rel) = blanked[search..].find("#[cfg(test)]") {
        let at = search + rel;
        let start_line = line_of(at);
        // Find the item's opening brace and walk to its match.
        let mut depth = 0usize;
        let mut end_line = start_line;
        let mut k = blanked[..at].chars().count();
        let mut opened = false;
        while k < bytes.len() {
            match bytes[k] {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        let pos: usize = bytes[..=k].iter().map(|c| c.len_utf8()).sum();
                        end_line = line_of(pos.min(blanked.len()));
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        regions.push((start_line, end_line.max(start_line)));
        search = at + 1;
    }
    regions
}

/// True when `line` carries (or the line above carries) a waiver for
/// `rule`.
fn waived(lines: &[&str], line: usize, rule: Rule) -> bool {
    let marker = format!("lint: allow({})", rule.name());
    let hit = |n: usize| {
        n >= 1
            && lines
                .get(n - 1)
                .is_some_and(|l| l.contains("//") && l.contains(&marker))
    };
    hit(line) || hit(line.saturating_sub(1))
}

/// The match-arm structure of one `match` block: `(pattern, line)` per
/// arm, extracted from blanked source by depth tracking.
fn match_arms(blanked: &str, block_start: usize, block_end: usize) -> Vec<(String, usize)> {
    let body = &blanked[block_start + 1..block_end];
    let mut arms = Vec::new();
    let mut depth = 0i32;
    let mut pat_start = 0usize;
    let mut in_body = false;
    let mut chars = body.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        match c {
            '{' | '(' | '[' => {
                depth += 1;
            }
            '}' | ')' | ']' => {
                depth -= 1;
                // A `{ … }` arm body closing at depth 0 ends the arm even
                // without a trailing comma.
                if depth == 0 && in_body && c == '}' {
                    in_body = false;
                    pat_start = i + 1;
                }
            }
            '=' if depth == 0 && !in_body && body[i + 1..].starts_with('>') => {
                let pat = body[pat_start..i].trim().to_string();
                let line = blanked[..block_start + 1 + i].matches('\n').count() + 1;
                arms.push((pat, line));
                in_body = true;
                chars.next();
            }
            ',' if depth == 0 && in_body => {
                in_body = false;
                pat_start = i + 1;
            }
            _ => {}
        }
    }
    arms
}

/// Scans `blanked` for `match` keyword occurrences and yields
/// `(block_open_idx, block_close_idx)` for each match body.
fn match_blocks(blanked: &str) -> Vec<(usize, usize)> {
    let mut blocks = Vec::new();
    let bytes = blanked.as_bytes();
    let mut search = 0;
    while let Some(rel) = blanked[search..].find("match") {
        let at = search + rel;
        search = at + 5;
        // Word boundaries: reject `matches!`, `rematch`, field names.
        let before_ok = at == 0
            || !bytes[at - 1].is_ascii_alphanumeric()
                && bytes[at - 1] != b'_'
                && bytes[at - 1] != b'.';
        let after_ok = bytes
            .get(at + 5)
            .is_none_or(|b| !b.is_ascii_alphanumeric() && *b != b'_' && *b != b'!');
        if !before_ok || !after_ok {
            continue;
        }
        // The scrutinee runs to the first `{` at bracket-depth 0.
        let mut depth = 0i32;
        let mut open = None;
        for (k, c) in blanked[at + 5..].char_indices() {
            match c {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                '{' if depth == 0 => {
                    open = Some(at + 5 + k);
                    break;
                }
                ';' if depth == 0 => break, // not a match expression
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        // Walk to the matching close brace.
        let mut d = 0i32;
        for (k, c) in blanked[open..].char_indices() {
            match c {
                '{' => d += 1,
                '}' => {
                    d -= 1;
                    if d == 0 {
                        blocks.push((open, open + k));
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    blocks
}

/// Which rule sets apply to a file, decided from its (workspace-
/// relative) path.
struct FileClass {
    message_match: bool,
    handler_unwrap: bool,
    crate_root: bool,
    determinism: bool,
    btree_hot_path: bool,
    println_in_lib: bool,
    unwrap_in_lib: bool,
}

/// Handler modules of `swn-core` where a peer-triggered panic is a
/// protocol bug.
const HANDLER_FILES: [&str; 6] = [
    "node.rs",
    "linearize.rs",
    "lrl.rs",
    "probing.rs",
    "ring.rs",
    "forget.rs",
];

/// Crates whose executions must replay bit-for-bit from a seed: the
/// protocol itself, the simulator, and the exhaustive checker.
const DETERMINISTIC_CRATES: [&str; 3] = [
    "crates/core/src/",
    "crates/sim/src/",
    "crates/analyzer/src/",
];

/// Per-round hot-path modules of the simulator: every message and every
/// turn crosses these, so ordered-map traversal is banned outside tests
/// (the arenas + sorted lanes of DESIGN.md §12 replaced it).
const HOT_PATH_FILES: [&str; 4] = ["slots.rs", "network.rs", "channel.rs", "sched.rs"];

/// Robustness modules of the simulator: the fault injector, the
/// durability layer and the chaos engine. These run while the system is
/// deliberately being broken, so a panic is never an acceptable way to
/// report an error — it would be classified as the very failure the
/// campaign is hunting.
const ROBUSTNESS_FILES: [&str; 3] = ["faults.rs", "persist.rs", "chaos.rs"];

fn classify(path: &str) -> FileClass {
    let p = path.replace('\\', "/");
    let in_core = p.contains("crates/core/src/");
    let is_fixture = p.contains("fixtures/");
    let file = p.rsplit('/').next().unwrap_or(&p);
    FileClass {
        message_match: in_core || is_fixture,
        handler_unwrap: (in_core && HANDLER_FILES.contains(&file)) || is_fixture,
        crate_root: file == "lib.rs" && (p.ends_with("src/lib.rs") || is_fixture),
        determinism: DETERMINISTIC_CRATES.iter().any(|c| p.contains(c)) || is_fixture,
        btree_hot_path: (p.contains("crates/sim/src/") && HOT_PATH_FILES.contains(&file))
            || is_fixture,
        // Library code: crate sources that are not the binary entry
        // points. `main.rs` and everything under `bin/` may print.
        println_in_lib: (p.contains("crates/")
            && p.contains("/src/")
            && file != "main.rs"
            && !p.contains("/bin/"))
            || is_fixture,
        unwrap_in_lib: (p.contains("crates/sim/src/") && ROBUSTNESS_FILES.contains(&file))
            || is_fixture,
    }
}

/// Lints one file's source text. `path` decides which rules apply (see
/// the module docs); fixture paths containing `fixtures/` get every
/// rule.
pub fn lint_source(path: &str, src: &str) -> Vec<Violation> {
    let class = classify(path);
    let blanked = blank_noncode(src);
    let lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();
    let mut push = |rule: Rule, line: usize, message: String| {
        if !waived(&lines, line, rule) {
            out.push(Violation {
                file: path.to_string(),
                line,
                rule,
                message,
            });
        }
    };

    if class.message_match {
        for (open, close) in match_blocks(&blanked) {
            let arms = match_arms(&blanked, open, close);
            let is_message_match = arms
                .iter()
                .any(|(pat, _)| pat.contains("Message::") || pat.contains("MessageKind::"));
            if !is_message_match {
                continue;
            }
            for (pat, line) in &arms {
                let head = pat.split_whitespace().next().unwrap_or("");
                if head == "_" {
                    push(
                        Rule::WildcardMessageMatch,
                        *line,
                        "wildcard `_` arm in a match over Message/MessageKind; \
                         spell every variant so new message kinds fail to compile"
                            .to_string(),
                    );
                }
            }
        }
    }

    let tests = if class.handler_unwrap
        || class.determinism
        || class.btree_hot_path
        || class.println_in_lib
        || class.unwrap_in_lib
    {
        test_region_lines(&blanked)
    } else {
        Vec::new()
    };
    let in_tests = |n: usize| tests.iter().any(|&(a, b)| n >= a && n <= b);

    if class.handler_unwrap {
        for (i, line) in blanked.lines().enumerate() {
            let n = i + 1;
            if in_tests(n) {
                continue;
            }
            for needle in [".unwrap(", ".expect("] {
                if line.contains(needle) {
                    push(
                        Rule::HandlerUnwrap,
                        n,
                        format!(
                            "`{needle})` in protocol handler code; a malformed peer \
                             message must not panic a node — guard and return instead"
                        ),
                    );
                }
            }
        }
    }

    if class.unwrap_in_lib {
        for (i, line) in blanked.lines().enumerate() {
            let n = i + 1;
            if in_tests(n) {
                continue;
            }
            for needle in [".unwrap(", ".expect("] {
                if line.contains(needle) {
                    push(
                        Rule::UnwrapInLib,
                        n,
                        format!(
                            "`{needle})` in fault/persist/chaos library code; these \
                             paths run while faults are live, so errors must surface \
                             as Results or named outcomes, never panics — or waive \
                             with a justification that untrusted input cannot reach it"
                        ),
                    );
                }
            }
        }
    }

    if class.determinism {
        const NEEDLES: [(&str, &str); 6] = [
            (
                "HashMap",
                "std::collections::HashMap iterates in randomized order",
            ),
            (
                "HashSet",
                "std::collections::HashSet iterates in randomized order",
            ),
            ("Instant::now", "wall-clock reads are not replayable"),
            ("SystemTime::now", "wall-clock reads are not replayable"),
            ("thread_rng", "unseeded randomness is not replayable"),
            ("from_entropy", "unseeded randomness is not replayable"),
        ];
        for (i, line) in blanked.lines().enumerate() {
            let n = i + 1;
            if in_tests(n) {
                continue;
            }
            for (needle, why) in NEEDLES {
                if line.contains(needle) {
                    push(
                        Rule::Nondeterminism,
                        n,
                        format!(
                            "`{needle}` in a deterministic crate: {why}; use an \
                             ordered/seeded alternative or waive with a justification \
                             that it cannot reach observable behavior"
                        ),
                    );
                }
            }
        }
    }

    if class.btree_hot_path {
        for (i, line) in blanked.lines().enumerate() {
            let n = i + 1;
            if in_tests(n) {
                continue;
            }
            if line.contains("BTreeMap") {
                push(
                    Rule::BtreeHotPath,
                    n,
                    "`BTreeMap` in a simulator hot-path module; the round engine \
                     routes through flat slot arenas and the incrementally \
                     maintained sorted order (DESIGN.md §12) — use `SlotIndex`, \
                     or waive with a justification that the map is off the \
                     per-round path"
                        .to_string(),
                );
            }
        }
    }

    if class.println_in_lib {
        // Longest needle first: `eprintln!` contains `println!` and
        // `println!` contains `print!` — break after the first hit so
        // each offending line yields exactly one finding, named after
        // the macro actually used.
        const PRINT_NEEDLES: [&str; 4] = ["eprintln!", "println!", "eprint!", "print!"];
        for (i, line) in blanked.lines().enumerate() {
            let n = i + 1;
            if in_tests(n) {
                continue;
            }
            if let Some(needle) = PRINT_NEEDLES.iter().find(|m| line.contains(*m)) {
                push(
                    Rule::PrintlnInLib,
                    n,
                    format!(
                        "`{needle}` in library code; return a string or take a \
                         writer and let the binary print — or waive for an \
                         intentional console surface"
                    ),
                );
            }
        }
    }

    // `MessageKind` mentioned anywhere (in code) makes literal-7 array
    // lengths suspect in the whole file.
    if blanked.contains("MessageKind") {
        for (i, line) in blanked.lines().enumerate() {
            if line.contains("; 7]") {
                push(
                    Rule::HardcodedKindCount,
                    i + 1,
                    "array length literal `7` in a file using MessageKind; \
                     spell it `MessageKind::COUNT` so per-kind tables track the enum"
                        .to_string(),
                );
            }
        }
    }

    if class.crate_root && !blanked.contains("#![forbid(unsafe_code)]") {
        push(
            Rule::MissingForbidUnsafe,
            1,
            "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
        );
    }

    out
}

/// Recursively collects the `.rs` files lint runs over: `src/` and
/// `crates/*/src/` plus crate `tests/`, skipping `vendor/`, `target/`
/// and the linter's own `fixtures/`.
fn collect_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if p.is_dir() {
                if ["vendor", "target", "fixtures", ".git", ".github"].contains(&name.as_ref()) {
                    continue;
                }
                stack.push(p);
            } else if name.ends_with(".rs") {
                files.push(p);
            }
        }
    }
    files.sort();
    files
}

/// Lints every source file under `root` (the workspace). Paths in the
/// returned violations are workspace-relative.
pub fn lint_repo(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in collect_files(root) {
        let Ok(src) = std::fs::read_to_string(&file) else {
            continue;
        };
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        out.extend(lint_source(&rel, &src));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanking_preserves_line_structure() {
        let src = "let a = \"x => {\"; // match m {\nlet b = 'y';\n";
        let blanked = blank_noncode(src);
        assert_eq!(blanked.matches('\n').count(), src.matches('\n').count());
        assert!(!blanked.contains("=>"));
        assert!(!blanked.contains("match"));
    }

    #[test]
    fn wildcard_in_message_match_is_flagged() {
        let src = r"
fn dispatch(m: Message) {
    match m {
        Message::Lin(id) => handle(id),
        _ => {}
    }
}
";
        let v = lint_source("crates/core/src/node.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::WildcardMessageMatch);
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn wildcard_over_other_types_is_fine() {
        // `Message::` appears in an arm *body*, not a pattern: this is a
        // match over `Extended`, where `_` is idiomatic.
        let src = r"
fn f(e: Extended) {
    match e {
        Extended::Fin(v) => out.send(id, Message::Lin(v)),
        _ => self.linearize(id, out),
    }
}
";
        assert!(lint_source("crates/core/src/ring.rs", src).is_empty());
    }

    #[test]
    fn exhaustive_message_match_is_fine() {
        let src = r"
fn dispatch(m: Message) {
    match m {
        Message::Lin(id) => a(id),
        Message::Ring(id) => b(id),
    }
}
";
        assert!(lint_source("crates/core/src/node.rs", src).is_empty());
    }

    #[test]
    fn handler_unwrap_flagged_outside_tests_only() {
        let src = r#"
fn handler(x: Option<u32>) -> u32 {
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1).unwrap();
        Some(2).expect("fine in tests");
    }
}
"#;
        let v = lint_source("crates/core/src/lrl.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::HandlerUnwrap);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn unwrap_outside_handler_modules_is_fine() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint_source("crates/core/src/message.rs", src).is_empty());
        assert!(lint_source("crates/sim/src/engine.rs", src).is_empty());
    }

    #[test]
    fn hardcoded_kind_count_needs_messagekind_in_scope() {
        let with = "use swn_core::message::MessageKind;\npub sent: [u64; 7],\n";
        let v = lint_source("crates/sim/src/trace.rs", with);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::HardcodedKindCount);
        // Seven unrelated things in a file that never mentions
        // MessageKind — e3_routing's seven routing systems.
        let without = "pub const ALL: [System; 7] = [];\n";
        assert!(lint_source("crates/harness/src/e3_routing.rs", without).is_empty());
    }

    #[test]
    fn missing_forbid_unsafe_flagged_and_waivable() {
        let bare = "//! A crate.\npub fn f() {}\n";
        let v = lint_source("crates/foo/src/lib.rs", bare);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::MissingForbidUnsafe);
        let waived = "// lint: allow(missing-forbid-unsafe)\npub fn f() {}\n";
        assert!(lint_source("crates/foo/src/lib.rs", waived).is_empty());
        let good = "#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert!(lint_source("crates/foo/src/lib.rs", good).is_empty());
        // Non-crate-root files don't need the attribute.
        assert!(lint_source("crates/foo/src/util.rs", bare).is_empty());
    }

    #[test]
    fn waiver_suppresses_on_same_or_previous_line() {
        let same = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint: allow(handler-unwrap)\n";
        assert!(lint_source("crates/core/src/node.rs", same).is_empty());
        let above = "// lint: allow(handler-unwrap)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint_source("crates/core/src/node.rs", above).is_empty());
    }

    #[test]
    fn seeded_fixture_fails() {
        let src = include_str!("../fixtures/broken_handler.rs");
        let v = lint_source("fixtures/broken_handler.rs", src);
        let rules: Vec<Rule> = v.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&Rule::WildcardMessageMatch), "{v:?}");
        assert!(rules.contains(&Rule::HandlerUnwrap), "{v:?}");
        assert!(rules.contains(&Rule::HardcodedKindCount), "{v:?}");
        assert!(rules.contains(&Rule::Nondeterminism), "{v:?}");
        assert!(rules.contains(&Rule::BtreeHotPath), "{v:?}");
        assert!(rules.contains(&Rule::PrintlnInLib), "{v:?}");
        assert!(rules.contains(&Rule::UnwrapInLib), "{v:?}");
    }

    #[test]
    fn test_regions_survive_multibyte_comments() {
        // Regression: an em-dash (3 bytes, blanked to 1 space) before
        // the test mod used to desynchronize the byte offsets of the
        // region walk, so everything inside `#[cfg(test)]` got linted.
        let src = "// prose — with a multi-byte dash\n\
                   #[cfg(test)]\n\
                   mod tests {\n    \
                       fn t() { Some(1).unwrap(); }\n\
                   }\n";
        assert!(lint_source("crates/sim/src/chaos.rs", src).is_empty());
    }

    #[test]
    fn unwrap_flagged_in_robustness_modules_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        for file in ["faults.rs", "persist.rs", "chaos.rs"] {
            let v = lint_source(&format!("crates/sim/src/{file}"), src);
            assert!(
                v.iter().any(|x| x.rule == Rule::UnwrapInLib),
                "{file}: {v:?}"
            );
        }
        // Other sim modules, other crates and the sim's integration
        // tests are outside the rule's scope.
        assert!(lint_source("crates/sim/src/network.rs", src)
            .iter()
            .all(|x| x.rule != Rule::UnwrapInLib));
        assert!(lint_source("crates/core/src/faults.rs", src)
            .iter()
            .all(|x| x.rule != Rule::UnwrapInLib));
        assert!(lint_source("crates/sim/tests/chaos_prop.rs", src)
            .iter()
            .all(|x| x.rule != Rule::UnwrapInLib));
    }

    #[test]
    fn unwrap_in_lib_spares_tests_and_honors_waivers() {
        let in_test = "#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n";
        assert!(lint_source("crates/sim/src/chaos.rs", in_test).is_empty());
        let waived = "// lint: allow(unwrap-in-lib) — in-memory value tree, cannot fail.\n\
                      fn f() -> String { serde_json::to_string(&1).expect(\"infallible\") }\n";
        assert!(lint_source("crates/sim/src/persist.rs", waived)
            .iter()
            .all(|x| x.rule != Rule::UnwrapInLib));
        let expect = "fn f(x: Option<u32>) -> u32 { x.expect(\"boom\") }\n";
        let v = lint_source("crates/sim/src/faults.rs", expect);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::UnwrapInLib);
    }

    #[test]
    fn btree_flagged_in_hot_path_modules_only() {
        let src = "use std::collections::BTreeMap;\n";
        for file in ["slots.rs", "network.rs", "channel.rs", "sched.rs"] {
            let v = lint_source(&format!("crates/sim/src/{file}"), src);
            assert!(
                v.iter().any(|x| x.rule == Rule::BtreeHotPath),
                "{file}: {v:?}"
            );
        }
        // Off the per-round path: fault plans, other crates, the sim's
        // own integration tests (which keep BTreeMap oracles).
        assert!(lint_source("crates/sim/src/faults.rs", src)
            .iter()
            .all(|x| x.rule != Rule::BtreeHotPath));
        assert!(lint_source("crates/core/src/node.rs", src)
            .iter()
            .all(|x| x.rule != Rule::BtreeHotPath));
        assert!(lint_source("crates/sim/tests/slot_index_prop.rs", src)
            .iter()
            .all(|x| x.rule != Rule::BtreeHotPath));
    }

    #[test]
    fn btree_spares_tests_doc_comments_and_waivers() {
        let in_test = "#[cfg(test)]\nmod tests {\n    use std::collections::BTreeMap;\n}\n";
        assert!(lint_source("crates/sim/src/slots.rs", in_test)
            .iter()
            .all(|x| x.rule != Rule::BtreeHotPath));
        let in_doc = "//! Replaces the `BTreeMap` the index once was.\npub struct SlotIndex;\n";
        assert!(lint_source("crates/sim/src/slots.rs", in_doc).is_empty());
        let waived = "// lint: allow(btree-hot-path) — cold config table, never per-message.\n\
                      use std::collections::BTreeMap;\n";
        assert!(lint_source("crates/sim/src/network.rs", waived)
            .iter()
            .all(|x| x.rule != Rule::BtreeHotPath));
    }

    #[test]
    fn nondeterminism_flagged_in_deterministic_crates_only() {
        let src = "use std::collections::HashMap;\n";
        for dir in ["crates/core/src", "crates/sim/src", "crates/analyzer/src"] {
            let v = lint_source(&format!("{dir}/x.rs"), src);
            assert_eq!(v.len(), 1, "{dir}: {v:?}");
            assert_eq!(v[0].rule, Rule::Nondeterminism);
        }
        // Harness/bench code may use wall clocks and hash maps freely.
        assert!(lint_source("crates/harness/src/x.rs", src).is_empty());
        assert!(lint_source("crates/xtask/src/lint.rs", src).is_empty());
    }

    #[test]
    fn nondeterminism_spares_tests_and_honors_waivers() {
        let in_test = "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
        assert!(lint_source("crates/sim/src/x.rs", in_test).is_empty());
        let waived = "// lint: allow(determinism) — lookup only, never iterated.\n\
                      use std::collections::HashMap;\n";
        assert!(lint_source("crates/analyzer/src/x.rs", waived).is_empty());
        let clock = "fn f() { let t = std::time::Instant::now(); }\n";
        let v = lint_source("crates/sim/src/network.rs", clock);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::Nondeterminism);
    }

    #[test]
    fn println_flagged_in_library_code_only() {
        let src = "pub fn f() { println!(\"hi\"); }\n";
        for file in [
            "crates/sim/src/network.rs",
            "crates/harness/src/table.rs",
            "crates/core/src/node.rs",
        ] {
            let v = lint_source(file, src);
            assert!(
                v.iter().any(|x| x.rule == Rule::PrintlnInLib),
                "{file}: {v:?}"
            );
        }
        // Binary entry points may print freely.
        assert!(lint_source("crates/harness/src/bin/experiments.rs", src).is_empty());
        assert!(lint_source("crates/xtask/src/main.rs", src).is_empty());
    }

    #[test]
    fn println_yields_one_finding_per_line_named_after_the_macro() {
        // `eprintln!` contains both `println!` and `print!` as
        // substrings; the needle order must still report it once, as
        // itself.
        let v = lint_source("crates/sim/src/x.rs", "fn f() { eprintln!(\"x\"); }\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::PrintlnInLib);
        assert!(v[0].message.contains("`eprintln!`"), "{}", v[0].message);
    }

    #[test]
    fn println_spares_tests_doc_comments_and_waivers() {
        let in_test = "#[cfg(test)]\nmod tests {\n    fn t() { println!(\"dbg\"); }\n}\n";
        assert!(lint_source("crates/sim/src/x.rs", in_test).is_empty());
        let in_doc = "//! Call `println!` yourself from the binary.\npub fn f() {}\n";
        assert!(lint_source("crates/sim/src/x.rs", in_doc).is_empty());
        let waived = "// lint: allow(println-in-lib) — intentional console surface.\n\
                      pub fn print(s: &str) { println!(\"{s}\"); }\n";
        assert!(lint_source("crates/harness/src/table.rs", waived).is_empty());
    }

    #[test]
    fn whole_repo_is_clean() {
        // CARGO_MANIFEST_DIR = crates/xtask; the workspace root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let v = lint_repo(root);
        assert!(
            v.is_empty(),
            "repo must lint clean:\n{}",
            v.iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
