//! **E3 — Greedy routing takes O(ln^(2+ε) n) hops on the stabilized
//! network** (Theorem 4.22, Lemma 4.23, Kleinberg [14]).
//!
//! Mean greedy-routing hops vs n for six systems:
//!
//! * `protocol` — the self-stabilized network (full simulation; the
//!   expensive one, so capped at `protocol_max_n`);
//! * `move-forget` — the pure process on the formed ring (provably the
//!   protocol's stable-state dynamics; scales further);
//! * `kleinberg` — the static harmonic construction (the ideal the
//!   process converges to);
//! * `uniform` — uniformly random shortcuts (Kleinberg's lower bound:
//!   polynomial greedy routing — must lose at scale);
//! * `chord` — the structured overlay (log n with log n degree, vs our
//!   constant degree);
//! * `ring` — no shortcuts (Θ(n) — must lose badly).
//!
//! Shape to verify: protocol ≈ move-forget ≈ kleinberg, polylog growth
//! (the `ln²⁺ᵉn` column tracks it); uniform grows clearly faster; ring is
//! linear.

use crate::table::{f2, polylog_exponent, Table};
use crate::testbed::{default_warmup, stabilized_graph};
use swn_baselines::chaintreau::MoveForgetRing;
use swn_baselines::chord::chord;
use swn_baselines::kleinberg::{kleinberg_ring, uniform_shortcut_ring};
use swn_baselines::ring_lattice::cycle;
use swn_core::config::ProtocolConfig;
use swn_sim::parallel::par_map;
use swn_topology::routing::{evaluate_routing, RoutingStats};
use swn_topology::Graph;

/// Parameters for E3.
#[derive(Clone, Debug)]
pub struct Params {
    /// Sizes to sweep.
    pub sizes: Vec<usize>,
    /// Protocol simulation only up to this size (it is the slow system).
    pub protocol_max_n: usize,
    /// Random (s,t) pairs per measurement.
    pub pairs: usize,
    /// Protocol ε.
    pub epsilon: f64,
}

impl Params {
    /// Full-scale run.
    pub fn full() -> Self {
        Params {
            sizes: vec![128, 256, 512, 1024, 2048, 4096, 8192],
            protocol_max_n: 1024,
            pairs: 1000,
            epsilon: 0.1,
        }
    }

    /// Reduced scale.
    pub fn quick() -> Self {
        Params {
            sizes: vec![128, 256, 512],
            protocol_max_n: 256,
            pairs: 200,
            epsilon: 0.1,
        }
    }
}

/// The systems measured by E3.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum System {
    /// The protocol, warmed up from tokens-at-origin for the affordable
    /// number of rounds (finite mixing — slightly pessimistic).
    Protocol,
    /// The protocol seeded directly into its provable stationary state
    /// (harmonic lrls) — the asymptotic claim of Theorem 4.22.
    ProtocolStationary,
    /// The pure move-and-forget process at the same warmup horizon.
    MoveForget,
    /// The static harmonic construction (the asymptotic ideal).
    Kleinberg,
    /// Uniform random shortcuts (Kleinberg's polynomial lower bound).
    Uniform,
    /// The idealized structured overlay (log n fingers per node).
    Chord,
    /// The bare cycle (linear routing).
    Ring,
}

impl System {
    /// All systems in display order.
    pub const ALL: [System; 7] = [
        System::Protocol,
        System::ProtocolStationary,
        System::MoveForget,
        System::Kleinberg,
        System::Uniform,
        System::Chord,
        System::Ring,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            System::Protocol => "protocol",
            System::ProtocolStationary => "protocol-st",
            System::MoveForget => "move-forget",
            System::Kleinberg => "kleinberg",
            System::Uniform => "uniform",
            System::Chord => "chord",
            System::Ring => "ring",
        }
    }
}

/// Builds the routing graph of a system at size `n` (None when the system
/// is skipped at this size).
pub fn build_graph(sys: System, n: usize, p: &Params, seed: u64) -> Option<Graph> {
    match sys {
        System::Protocol => {
            if n > p.protocol_max_n {
                return None;
            }
            let cfg = ProtocolConfig::with_epsilon(p.epsilon);
            Some(stabilized_graph(n, cfg, seed, default_warmup(n)))
        }
        System::ProtocolStationary => {
            let cfg = ProtocolConfig::with_epsilon(p.epsilon);
            let net = crate::testbed::harmonic_network(n, cfg, seed);
            Some(Graph::from_view(&net.view(), swn_core::views::View::Cp))
        }
        System::MoveForget => {
            let mut mf = MoveForgetRing::new(n, p.epsilon, seed);
            mf.run(default_warmup(n) * 2);
            Some(mf.graph())
        }
        System::Kleinberg => Some(kleinberg_ring(n, seed)),
        System::Uniform => Some(uniform_shortcut_ring(n, seed)),
        System::Chord => Some(chord(n)),
        System::Ring => Some(cycle(n)),
    }
}

/// Measures one (system, n) cell.
pub fn measure(sys: System, n: usize, p: &Params, seed: u64) -> Option<RoutingStats> {
    let g = build_graph(sys, n, p, seed)?;
    Some(evaluate_routing(
        &g,
        p.pairs,
        (8 * u32::try_from(n).expect("graph size fits u32")).max(1024),
        seed,
        None,
    ))
}

/// Runs E3 and renders the table; appends a per-system polylog-exponent
/// summary row set.
pub fn run(p: &Params) -> Table {
    let mut t = Table::new(
        "E3  Greedy routing hops vs n",
        "protocol/move-forget/kleinberg scale polylogarithmically (exponent near 2); \
         uniform shortcuts scale polynomially; ring is linear (Thm 4.22 / Lemma 4.23)",
        &["system", "n", "mean hops", "p99", "success", "ln^2 n"],
    );
    let mut series: Vec<(System, Vec<(f64, f64)>)> =
        System::ALL.iter().map(|&s| (s, Vec::new())).collect();
    // Every (size, system) cell is an independent seeded measurement
    // (seed depends only on n), so run them all in parallel and render
    // in the deterministic cell order afterwards.
    let cells: Vec<(usize, System)> = p
        .sizes
        .iter()
        .flat_map(|&n| System::ALL.iter().map(move |&sys| (n, sys)))
        .collect();
    let measured = par_map(&cells, |&(n, sys)| measure(sys, n, p, 1000 + n as u64));
    for (&(n, sys), stats) in cells.iter().zip(&measured) {
        let Some(stats) = stats else {
            continue;
        };
        let lnsq = (n as f64).ln().powi(2);
        series
            .iter_mut()
            .find(|(s, _)| *s == sys)
            .expect("series exists")
            .1
            .push((n as f64, stats.mean_hops));
        t.push_row(vec![
            sys.label().to_string(),
            n.to_string(),
            f2(stats.mean_hops),
            stats.p99_hops.to_string(),
            f2(stats.success_rate()),
            f2(lnsq),
        ]);
    }
    for (sys, pts) in &series {
        if let Some(e) = polylog_exponent(pts) {
            t.push_row(vec![
                format!("{}*", sys.label()),
                "fit".to_string(),
                f2(e),
                "-".to_string(),
                "-".to_string(),
                "exp of ln^e n".to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_protocol_close_to_kleinberg_ring_linear() {
        let p = Params::quick();
        let n = 256;
        let proto = measure(System::Protocol, n, &p, 3).expect("protocol runs at 256");
        let klein = measure(System::Kleinberg, n, &p, 3).unwrap();
        let ring = measure(System::Ring, n, &p, 3).unwrap();
        assert_eq!(proto.success_rate(), 1.0);
        // Protocol must beat the ring clearly and be within a modest
        // factor of the static ideal (at n = 256 the token walks have had
        // finite mixing time, so the gap to the ideal is a few x).
        assert!(
            proto.mean_hops * 1.4 < ring.mean_hops,
            "{} vs ring {}",
            proto.mean_hops,
            ring.mean_hops
        );
        assert!(
            proto.mean_hops < klein.mean_hops * 6.0,
            "protocol {} too far from kleinberg {}",
            proto.mean_hops,
            klein.mean_hops
        );
    }

    #[test]
    fn uniform_loses_to_harmonic_at_scale() {
        // The asymptotic separation (polylog vs polynomial) needs scale to
        // show above the noise floor; n = 4096 separates cleanly.
        let mut p = Params::quick();
        p.pairs = 400;
        let n = 4096;
        let klein = measure(System::Kleinberg, n, &p, 5).unwrap();
        let unif = measure(System::Uniform, n, &p, 5).unwrap();
        assert!(
            klein.mean_hops * 1.3 < unif.mean_hops,
            "kleinberg {} vs uniform {}",
            klein.mean_hops,
            unif.mean_hops
        );
    }

    #[test]
    fn ring_exponent_is_huge_kleinberg_small() {
        let mut p = Params::quick();
        p.sizes = vec![128, 512, 2048];
        let series = |sys: System| -> Vec<(f64, f64)> {
            p.sizes
                .iter()
                .map(|&n| (n as f64, measure(sys, n, &p, 9).unwrap().mean_hops))
                .collect()
        };
        let ring_e = polylog_exponent(&series(System::Ring)).unwrap();
        let klein_e = polylog_exponent(&series(System::Kleinberg)).unwrap();
        assert!(ring_e > 4.0, "ring exponent {ring_e}");
        assert!(klein_e < 3.5, "kleinberg exponent {klein_e}");
        assert!(klein_e < ring_e);
    }

    #[test]
    fn protocol_skipped_above_cap() {
        let p = Params::quick();
        assert!(measure(System::Protocol, 512, &p, 1).is_none());
    }
}
