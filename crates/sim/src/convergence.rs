//! Convergence measurement: drive a network until it stabilizes and record
//! when each phase of the proof was reached.

use crate::network::Network;
use crate::obs::Event;
use serde::{Deserialize, Serialize};
use swn_core::invariants::{classify_view, is_sorted_list_view, is_sorted_ring_view, Phase};

/// When each phase milestone was first reached (in rounds from the start
/// of measurement), plus run-wide accounting.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ConvergenceReport {
    /// First round with LCC weakly connected (phase 1).
    pub rounds_to_lcc: Option<u64>,
    /// First round with LCP the sorted list (phase 2).
    pub rounds_to_list: Option<u64>,
    /// First round with RCP the sorted ring (phase 3).
    pub rounds_to_ring: Option<u64>,
    /// Last round (before the ring formed) in which a probe repair
    /// happened — after Theorem 4.3's point, probing is always successful.
    pub last_probe_repair: Option<u64>,
    /// Total messages sent until the ring formed (or until timeout).
    pub messages_to_ring: u64,
    /// True iff the sorted-list and sorted-ring properties, once observed,
    /// held in every later observed state — the monotonicity Theorems
    /// 4.9/4.18 guarantee. (LCC weak connectivity may legitimately flicker
    /// *before* phase 1's probing fixpoint is reached: a `lin` message
    /// forwarded over a long-range link moves a channel edge across a gap
    /// that is not yet LCP-connected — the very situation Lemma 4.4's
    /// eventual argument exists for — so it is not part of this flag.)
    pub monotone: bool,
    /// Rounds actually executed.
    pub rounds_run: u64,
}

impl ConvergenceReport {
    /// Did the network reach the sorted ring?
    pub fn stabilized(&self) -> bool {
        self.rounds_to_ring.is_some()
    }
}

/// Runs `net` until RCP solves the sorted-ring problem (or `max_rounds`
/// pass), recording phase milestones after every round.
///
/// Snapshot-free: each observation classifies a borrowed
/// [`Network::view`] instead of cloning the state, and rounds whose
/// [`links_changed`](crate::trace::RoundStats::links_changed) flag is
/// clear are not reclassified at all — a clean round provably preserves
/// the phase (see DESIGN.md on dirty-tracking soundness).
///
/// Observation is additionally *leveled*: once the LCC milestone is
/// recorded, the remaining questions (did the sorted list form? did the
/// ring close? did a formed list regress?) are all decided by the O(n)
/// allocation-free sorted-list scan — a sorted list implies LCC weak
/// connectivity, and every sub-list phase is interchangeable for the
/// report once `rounds_to_lcc` is set — so the per-round union-find over
/// all stored links and channel contents disappears from the hot loop.
/// The produced report is field-for-field identical to classifying from
/// scratch every round (the golden-trace test pins this).
pub fn run_to_ring(net: &mut Network, max_rounds: u64) -> ConvergenceReport {
    let mut report = ConvergenceReport {
        monotone: true,
        ..Default::default()
    };
    let mut best = Phase::Disconnected;
    let note = |phase: Phase, round: u64, report: &mut ConvergenceReport| {
        if phase >= Phase::LccConnected && report.rounds_to_lcc.is_none() {
            report.rounds_to_lcc = Some(round);
        }
        if phase >= Phase::SortedList && report.rounds_to_list.is_none() {
            report.rounds_to_list = Some(round);
        }
        if phase >= Phase::SortedRing && report.rounds_to_ring.is_none() {
            report.rounds_to_ring = Some(round);
        }
    };

    let mut phase = classify_view(&net.view());
    best = best.max(phase);
    note(phase, 0, &mut report);
    let mut announced = [false; 3];
    emit_new_milestones(net, &report, &mut announced);

    let mut round = 0;
    while report.rounds_to_ring.is_none() && round < max_rounds {
        let stats = net.step();
        round += 1;
        report.messages_to_ring += stats.total_sent();
        if stats.probe_repairs > 0 {
            report.last_probe_repair = Some(round);
        }
        if stats.links_changed {
            let v = net.view();
            phase = if report.rounds_to_lcc.is_some() {
                // Leveled observation: the sorted-list scan alone decides
                // every phase distinction the report still cares about.
                // `LccConnected` stands in for all sub-list phases — the
                // LCC milestone is already recorded, `best` is already at
                // least `LccConnected`, and the monotonicity check only
                // compares against `best >= SortedList`.
                if is_sorted_list_view(&v) {
                    if is_sorted_ring_view(&v) {
                        Phase::SortedRing
                    } else {
                        Phase::SortedList
                    }
                } else {
                    Phase::LccConnected
                }
            } else {
                classify_view(&v)
            };
        }
        if best >= Phase::SortedList && phase < best {
            report.monotone = false;
        }
        best = best.max(phase);
        note(phase, round, &mut report);
        emit_new_milestones(net, &report, &mut announced);
    }
    report.rounds_run = round;
    report
}

/// Runs `net` until [`Network::is_quiescent`] reports an empty agenda
/// (or `max_rounds` pass), returning the number of rounds stepped, or
/// `None` on timeout. Only meaningful under
/// [`ScheduleMode::ActiveSet`](crate::sched::ScheduleMode::ActiveSet) —
/// a full-scan network is never quiescent, so the call times out.
///
/// On a converged fault-free ring this drains in a handful of rounds:
/// the first active round verifies every certificate, the next ones
/// deliver the in-flight tail (fixpoint re-advertisements, `res_lrl`
/// answers), after which the agenda is empty and every subsequent
/// [`Network::step`] is a no-op on node, channel and RNG state (pinned
/// by `tests/quiescence_prop.rs`).
pub fn drain_to_quiescence(net: &mut Network, max_rounds: u64) -> Option<u64> {
    for k in 0..=max_rounds {
        if net.is_quiescent() {
            return Some(k);
        }
        if k == max_rounds {
            break;
        }
        net.step();
    }
    None
}

/// Emits a `Transition` timeline event for every milestone the report
/// reached that has not been announced yet (no-op without a sink). Event
/// labels: `"lcc"`, `"list"`, `"ring"`; rounds count from the start of
/// the measurement loop.
fn emit_new_milestones(net: &mut Network, report: &ConvergenceReport, announced: &mut [bool; 3]) {
    if !net.has_sink() {
        return;
    }
    let milestones = [
        (report.rounds_to_lcc, "lcc"),
        (report.rounds_to_list, "list"),
        (report.rounds_to_ring, "ring"),
    ];
    for (k, (reached, label)) in milestones.iter().enumerate() {
        if let Some(round) = reached {
            if !announced[k] {
                announced[k] = true;
                net.emit(Event::Transition {
                    round: *round,
                    phase: (*label).to_string(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{generate, InitialTopology};
    use swn_core::config::ProtocolConfig;
    use swn_core::id::evenly_spaced_ids;

    fn stabilize(kind: InitialTopology, n: usize, seed: u64) -> ConvergenceReport {
        let ids = evenly_spaced_ids(n);
        let mut net = generate(kind, &ids, ProtocolConfig::default(), seed).into_network(seed);
        run_to_ring(&mut net, 20_000)
    }

    #[test]
    fn stable_start_reports_zero_rounds() {
        let rep = stabilize(InitialTopology::SortedRing, 8, 1);
        assert_eq!(rep.rounds_to_ring, Some(0));
        assert_eq!(rep.messages_to_ring, 0);
        assert!(rep.monotone);
    }

    #[test]
    fn list_start_only_needs_ring_phase() {
        let rep = stabilize(InitialTopology::SortedListNoRing, 16, 2);
        assert!(rep.stabilized(), "list-no-ring did not close the ring");
        assert_eq!(rep.rounds_to_lcc, Some(0));
        assert_eq!(rep.rounds_to_list, Some(0));
        assert!(rep.rounds_to_ring.unwrap() > 0);
        assert!(rep.monotone, "phases must not regress");
    }

    #[test]
    fn star_stabilizes() {
        let rep = stabilize(InitialTopology::Star, 16, 3);
        assert!(rep.stabilized(), "star did not stabilize: {rep:?}");
        assert!(rep.monotone, "phases regressed: {rep:?}");
        assert!(
            rep.rounds_to_lcc <= rep.rounds_to_list && rep.rounds_to_list <= rep.rounds_to_ring,
            "phases out of order: {rep:?}"
        );
    }

    #[test]
    fn random_chain_stabilizes() {
        let rep = stabilize(InitialTopology::RandomChain, 24, 4);
        assert!(rep.stabilized(), "random chain did not stabilize: {rep:?}");
        assert!(rep.monotone);
    }

    #[test]
    fn random_sparse_stabilizes_across_seeds() {
        for seed in 0..5 {
            let rep = stabilize(InitialTopology::RandomSparse { extra: 3 }, 20, seed);
            assert!(rep.stabilized(), "seed {seed} failed: {rep:?}");
            assert!(rep.monotone, "seed {seed} regressed");
        }
    }

    #[test]
    fn two_blobs_merge() {
        let rep = stabilize(InitialTopology::TwoBlobs, 20, 5);
        assert!(rep.stabilized(), "two blobs did not merge: {rep:?}");
    }

    #[test]
    fn clique_collapses_to_ring() {
        let rep = stabilize(InitialTopology::Clique, 20, 6);
        assert!(rep.stabilized(), "clique did not stabilize: {rep:?}");
    }

    #[test]
    fn corrupted_ring_recovers() {
        let rep = stabilize(InitialTopology::CorruptedRing { corruptions: 5 }, 20, 7);
        assert!(rep.stabilized(), "corrupted ring did not recover: {rep:?}");
    }

    #[test]
    fn timeout_reports_unstabilized() {
        let ids = evenly_spaced_ids(32);
        let mut net =
            generate(InitialTopology::Star, &ids, ProtocolConfig::default(), 8).into_network(8);
        let rep = run_to_ring(&mut net, 1); // 1 round cannot possibly suffice
        assert!(!rep.stabilized());
        assert_eq!(rep.rounds_run, 1);
    }
}
