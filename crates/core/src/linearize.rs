//! `linearize(id)` — Algorithm 2.
//!
//! The heart of the sorting process (after Onus/Richa/Scheideler's
//! *linearization* and Nor/Nesterenko/Scheideler's *Corona*), extended by
//! the paper with long-range shortcuts: when a received identifier lies
//! beyond the node's long-range link, it is forwarded over that link
//! instead of crawling neighbour by neighbour.
//!
//! Invariant maintained by every branch: the received identifier is either
//! **stored** (as the new `l`/`r`, with the displaced old neighbour
//! forwarded onward) or **forwarded** — never dropped — so linearization
//! only ever shortens links in LCC and never disconnects it (Lemma 4.10).

use crate::id::{Extended, NodeId};
use crate::message::Message;
use crate::node::Node;
use crate::outbox::{Outbox, ProtocolEvent, Side};

impl Node {
    /// Processes an identifier received in a `lin` message (or re-injected
    /// internally by probing/sanitation). See module docs.
    pub(crate) fn linearize(&mut self, id: NodeId, out: &mut Outbox) {
        let me = self.id();
        if id == me {
            return; // our own id echoed back: nothing to learn
        }
        if id > me {
            if id < self.r {
                // id is a closer right neighbour: adopt it, forward the
                // displaced one so its link survives in LCC.
                if let Extended::Fin(old_r) = self.r {
                    out.send(id, Message::Lin(old_r));
                }
                out.event(ProtocolEvent::NeighborAdopted {
                    side: Side::Right,
                    old: self.r,
                    new: id,
                });
                self.r = Extended::Fin(id);
            } else if self.config().lrl_shortcut
                && id > self.lrl
                && Extended::Fin(self.lrl) > self.r
            {
                // Long-range shortcut: lrl lies strictly between r and id.
                out.send(self.lrl, Message::Lin(id));
            } else if let Extended::Fin(rv) = self.r {
                // id ≥ r: forward right (a no-op echo when id == r).
                out.send(rv, Message::Lin(id));
            }
            // self.r = +∞ and id ≥ +∞ is impossible: id is finite.
        } else {
            // id < me, mirror image.
            if id > self.l {
                if let Extended::Fin(old_l) = self.l {
                    out.send(id, Message::Lin(old_l));
                }
                out.event(ProtocolEvent::NeighborAdopted {
                    side: Side::Left,
                    old: self.l,
                    new: id,
                });
                self.l = Extended::Fin(id);
            } else if self.config().lrl_shortcut
                && id < self.lrl
                && Extended::Fin(self.lrl) < self.l
            {
                out.send(self.lrl, Message::Lin(id));
            } else if let Extended::Fin(lv) = self.l {
                out.send(lv, Message::Lin(id));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;

    fn id(f: f64) -> NodeId {
        NodeId::from_fraction(f)
    }

    fn node(l: Option<f64>, me: f64, r: Option<f64>, lrl: f64) -> Node {
        Node::with_state(
            id(me),
            l.map(|f| Extended::Fin(id(f))).unwrap_or(Extended::NegInf),
            r.map(|f| Extended::Fin(id(f))).unwrap_or(Extended::PosInf),
            id(lrl),
            None,
            ProtocolConfig::default(),
        )
    }

    #[test]
    fn adopts_closer_right_neighbour_and_forwards_old() {
        let mut n = node(Some(0.2), 0.5, Some(0.9), 0.5);
        let mut out = Outbox::new();
        n.linearize(id(0.7), &mut out);
        assert_eq!(n.right(), Extended::Fin(id(0.7)));
        // Old right neighbour 0.9 forwarded to the newcomer.
        assert_eq!(out.sends(), &[(id(0.7), Message::Lin(id(0.9)))]);
    }

    #[test]
    fn adopts_closer_left_neighbour_and_forwards_old() {
        let mut n = node(Some(0.2), 0.5, Some(0.9), 0.5);
        let mut out = Outbox::new();
        n.linearize(id(0.3), &mut out);
        assert_eq!(n.left(), Extended::Fin(id(0.3)));
        assert_eq!(out.sends(), &[(id(0.3), Message::Lin(id(0.2)))]);
    }

    #[test]
    fn first_right_neighbour_adopted_silently() {
        let mut n = node(None, 0.5, None, 0.5);
        let mut out = Outbox::new();
        n.linearize(id(0.7), &mut out);
        assert_eq!(n.right(), Extended::Fin(id(0.7)));
        assert!(out.sends().is_empty(), "no old neighbour to forward");
    }

    #[test]
    fn farther_id_forwarded_right() {
        let mut n = node(Some(0.2), 0.5, Some(0.6), 0.5);
        let mut out = Outbox::new();
        n.linearize(id(0.9), &mut out);
        assert_eq!(n.right(), Extended::Fin(id(0.6)), "r unchanged");
        assert_eq!(out.sends(), &[(id(0.6), Message::Lin(id(0.9)))]);
    }

    #[test]
    fn farther_id_forwarded_left() {
        let mut n = node(Some(0.4), 0.5, Some(0.6), 0.5);
        let mut out = Outbox::new();
        n.linearize(id(0.1), &mut out);
        assert_eq!(n.left(), Extended::Fin(id(0.4)));
        assert_eq!(out.sends(), &[(id(0.4), Message::Lin(id(0.1)))]);
    }

    #[test]
    fn lrl_shortcut_used_rightward() {
        // lrl = 0.8 lies strictly between r = 0.6 and id = 0.9: shortcut.
        let mut n = node(Some(0.2), 0.5, Some(0.6), 0.8);
        let mut out = Outbox::new();
        n.linearize(id(0.9), &mut out);
        assert_eq!(out.sends(), &[(id(0.8), Message::Lin(id(0.9)))]);
    }

    #[test]
    fn lrl_shortcut_used_leftward() {
        let mut n = node(Some(0.4), 0.5, Some(0.6), 0.2);
        let mut out = Outbox::new();
        n.linearize(id(0.1), &mut out);
        assert_eq!(out.sends(), &[(id(0.2), Message::Lin(id(0.1)))]);
    }

    #[test]
    fn lrl_shortcut_not_used_when_beyond_target() {
        // lrl = 0.95 is beyond id = 0.9: no shortcut, forward to r.
        let mut n = node(Some(0.2), 0.5, Some(0.6), 0.95);
        let mut out = Outbox::new();
        n.linearize(id(0.9), &mut out);
        assert_eq!(out.sends(), &[(id(0.6), Message::Lin(id(0.9)))]);
    }

    #[test]
    fn lrl_shortcut_disabled_by_config() {
        let cfg = ProtocolConfig {
            lrl_shortcut: false,
            ..ProtocolConfig::default()
        };
        let mut n = Node::with_state(
            id(0.5),
            Extended::Fin(id(0.2)),
            Extended::Fin(id(0.6)),
            id(0.8),
            None,
            cfg,
        );
        let mut out = Outbox::new();
        n.linearize(id(0.9), &mut out);
        assert_eq!(
            out.sends(),
            &[(id(0.6), Message::Lin(id(0.9)))],
            "with the ablation flag off, plain linearization forwards to r"
        );
    }

    #[test]
    fn equal_to_right_neighbour_echoes_harmlessly() {
        let mut n = node(Some(0.2), 0.5, Some(0.6), 0.5);
        let mut out = Outbox::new();
        n.linearize(id(0.6), &mut out);
        assert_eq!(n.right(), Extended::Fin(id(0.6)));
        // Faithful to Algorithm 2: id == p.r falls to the forward branch.
        assert_eq!(out.sends(), &[(id(0.6), Message::Lin(id(0.6)))]);
    }

    #[test]
    fn own_id_is_ignored() {
        let mut n = node(Some(0.2), 0.5, Some(0.6), 0.5);
        let mut out = Outbox::new();
        n.linearize(id(0.5), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn never_drops_an_identifier() {
        // Exhaustive small-universe check: for every combination of
        // l < me < r and every received id ≠ me, the id is either stored
        // or appears in exactly one outgoing message.
        let ids: Vec<f64> = vec![0.1, 0.2, 0.3, 0.4, 0.6, 0.7, 0.8, 0.9];
        for &l in &ids {
            for &r in &ids {
                if !(l < 0.5 && r > 0.5) {
                    continue;
                }
                for &lrl in &ids {
                    for &x in &ids {
                        let mut n = node(Some(l), 0.5, Some(r), lrl);
                        let mut out = Outbox::new();
                        n.linearize(id(x), &mut out);
                        let stored = n.left() == id(x) || n.right() == id(x);
                        let forwarded = out
                            .sends()
                            .iter()
                            .filter(|(_, m)| matches!(m, Message::Lin(v) if *v == id(x)))
                            .count();
                        assert!(
                            stored || forwarded == 1,
                            "id {x} dropped at node(l={l}, r={r}, lrl={lrl})"
                        );
                    }
                }
            }
        }
    }
}
