//! Plain-text result tables — the "rows the paper would report".

use serde::Serialize;

/// A printable experiment result table.
#[derive(Clone, Debug, Serialize)]
pub struct Table {
    /// Experiment id + one-line title.
    pub title: String,
    /// What the paper claims, and what shape to look for in the rows.
    pub claim: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (stringified cells).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, claim: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            claim: claim.into(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in table '{}'",
            self.title
        );
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        if !self.claim.is_empty() {
            out.push_str(&format!("   claim: {}\n", self.claim));
        }
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        // lint: allow(println-in-lib) — Table is the experiments' console surface.
        println!("{}", self.render());
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Maximum of a slice (0 for empty).
pub fn fmax(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, f64::max)
}

/// Ordinary-least-squares slope of y against x.
pub fn ols_slope(points: &[(f64, f64)]) -> Option<f64> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        None
    } else {
        Some((n * sxy - sx * sy) / denom)
    }
}

/// Fits `y ≈ c · ln^e(n)` over `(n, y)` pairs and returns the exponent
/// `e` — the scaling diagnostic for the paper's O(ln^(2+ε) n) claims.
/// Polylog data yields a small constant; linear data yields an exponent
/// that grows with the range (clearly > 4 on our sweeps).
pub fn polylog_exponent(points: &[(f64, f64)]) -> Option<f64> {
    let transformed: Vec<(f64, f64)> = points
        .iter()
        .filter(|(n, y)| *n > 1.0 && *y > 0.0)
        .map(|(n, y)| (n.ln().ln(), y.ln()))
        .collect();
    ols_slope(&transformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("T", "c", &["n", "hops"]);
        t.push_row(vec!["128".into(), "3.14".into()]);
        t.push_row(vec!["4096".into(), "10.00".into()]);
        let r = t.render();
        assert!(r.contains("== T =="));
        assert!(r.contains("claim: c"));
        assert!(r.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("T", "", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert_eq!(fmax(&[1.0, 5.0, 3.0]), 5.0);
    }

    #[test]
    fn ols_recovers_line() {
        let pts: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        assert!((ols_slope(&pts).unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn polylog_exponent_of_ln_squared_is_two() {
        let pts: Vec<(f64, f64)> = [64.0, 256.0, 1024.0, 4096.0, 16384.0]
            .iter()
            .map(|&n: &f64| (n, n.ln().powi(2)))
            .collect();
        let e = polylog_exponent(&pts).unwrap();
        assert!((e - 2.0).abs() < 1e-6, "exponent {e}");
    }

    #[test]
    fn polylog_exponent_flags_linear_growth() {
        let pts: Vec<(f64, f64)> = [64.0, 256.0, 1024.0, 4096.0, 16384.0]
            .iter()
            .map(|&n: &f64| (n, n))
            .collect();
        let e = polylog_exponent(&pts).unwrap();
        assert!(e > 4.0, "linear data must show a huge exponent, got {e}");
    }
}
