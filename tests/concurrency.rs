//! Integration tests for the threaded runtime: the protocol stabilizes
//! under genuine concurrency, not just under the simulator's sequential
//! interleavings.

use self_stabilizing_smallworld::prelude::*;
use self_stabilizing_smallworld::runtime::{Runtime, RuntimeConfig};
use std::time::Duration;
use swn_core::views::Snapshot;
use swn_sim::init::generate;

fn spawn_family(family: InitialTopology, n: usize, seed: u64) -> Runtime {
    let ids = evenly_spaced_ids(n);
    let init = generate(family, &ids, ProtocolConfig::default(), seed);
    assert!(
        init.preloads.is_empty(),
        "concurrency tests need preload-free families"
    );
    Runtime::spawn(
        init.nodes,
        RuntimeConfig {
            seed,
            ..Default::default()
        },
    )
}

fn assert_stabilizes(family: InitialTopology, n: usize, seed: u64) {
    let rt = spawn_family(family, n, seed);
    let ok = rt.wait_until(
        Duration::from_secs(60),
        Duration::from_millis(15),
        is_sorted_ring,
    );
    let sent = rt.messages_sent();
    let finals = rt.shutdown();
    assert!(
        ok,
        "{} (n={n}) did not stabilize concurrently ({sent} msgs sent)",
        family.label()
    );
    assert!(is_sorted_ring(&Snapshot::from_nodes(finals)));
}

#[test]
fn star_stabilizes_concurrently() {
    assert_stabilizes(InitialTopology::Star, 16, 1);
}

#[test]
fn random_chain_stabilizes_concurrently() {
    assert_stabilizes(InitialTopology::RandomChain, 16, 2);
}

#[test]
fn list_without_ring_closes_concurrently() {
    assert_stabilizes(InitialTopology::SortedListNoRing, 20, 3);
}

#[test]
fn concurrent_run_matches_simulator_outcome() {
    // Both execution environments must reach the same unique stable
    // topology (the sorted ring over the same ids) from the same start.
    let n = 12;
    let family = InitialTopology::RandomChain;
    let ids = evenly_spaced_ids(n);

    // Simulator.
    let mut net = generate(family, &ids, ProtocolConfig::default(), 5).into_network(5);
    let rep = run_to_ring(&mut net, 100_000);
    assert!(rep.stabilized());
    let sim_snapshot = net.snapshot();

    // Threaded runtime.
    let rt = spawn_family(family, n, 5);
    let ok = rt.wait_until(
        Duration::from_secs(60),
        Duration::from_millis(10),
        is_sorted_ring,
    );
    assert!(ok);
    let rt_finals = rt.shutdown();

    // The l/r/ring structure is identical (the lrl tokens differ — they
    // are random walks).
    for (sim_idx, rt_node) in sim_snapshot.sorted_indices().into_iter().zip(&rt_finals) {
        let sim_node = &sim_snapshot.nodes()[sim_idx];
        assert_eq!(sim_node.id(), rt_node.id());
        assert_eq!(sim_node.left(), rt_node.left());
        assert_eq!(sim_node.right(), rt_node.right());
        assert_eq!(sim_node.ring(), rt_node.ring());
    }
}

#[test]
fn snapshots_are_consistent_while_running() {
    // Concurrent snapshotting must never observe an ill-typed node (the
    // per-node lock guarantees action atomicity).
    let rt = spawn_family(InitialTopology::RandomChain, 16, 9);
    for _ in 0..50 {
        let s = rt.snapshot();
        for node in s.nodes() {
            if let Extended::Fin(l) = node.left() {
                assert!(l < node.id(), "snapshot caught ill-typed l");
            }
            if let Extended::Fin(r) = node.right() {
                assert!(r > node.id(), "snapshot caught ill-typed r");
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    rt.shutdown();
}
