//! Probing: Algorithms 5 (`probingr`), 6 (`probingl`) and 10 (`probing`).
//!
//! Probing guards the network against silently relying on long-range and
//! ring links for connectivity. Each period, every node launches a probe
//! toward its `lrl` endpoint (and, if extremal, toward its ring target).
//! A probe greedily approaches its destination along `r`/`lrl` (resp.
//! `l`/`lrl`) links **without ever overshooting it**. If it gets stuck —
//! the destination falls strictly between a node and its next neighbour —
//! the missing edge is created on the spot via `linearize`, restoring a
//! left-to-right path of short links (Theorem 4.3). In the stable state no
//! probe ever gets stuck, and each takes only O(ln^(2+ε) d) hops
//! (Lemma 4.23).

use crate::id::{Extended, NodeId};
use crate::message::Message;
use crate::node::Node;
use crate::outbox::{Outbox, ProtocolEvent};

impl Node {
    /// `probingr(id)` — Algorithm 5: forward a rightward probe with
    /// destination `dest`, repairing the topology if it cannot progress.
    pub(crate) fn probing_r(&mut self, dest: NodeId, out: &mut Outbox) {
        let me = self.id();
        if dest >= self.lrl && Extended::Fin(self.lrl) > self.r {
            // Our long-range link is a usable shortcut (beyond r, not past
            // the destination).
            out.send(self.lrl, Message::ProbR(dest));
        } else if let Extended::Fin(rv) = self.r {
            if dest >= rv {
                out.send(rv, Message::ProbR(dest));
                return;
            }
            if dest > me {
                // me < dest < r: the short-link path to dest is broken.
                out.event(ProtocolEvent::ProbeRepair { at: me, dest });
                self.linearize(dest, out);
            }
            // dest ≤ me: stale probe, drop.
        } else if dest > me {
            // r = +∞ and the destination is still to our right: repair.
            out.event(ProtocolEvent::ProbeRepair { at: me, dest });
            self.linearize(dest, out);
        }
    }

    /// `probingl(id)` — Algorithm 6, mirror of `probingr`.
    pub(crate) fn probing_l(&mut self, dest: NodeId, out: &mut Outbox) {
        let me = self.id();
        if dest <= self.lrl && Extended::Fin(self.lrl) < self.l {
            out.send(self.lrl, Message::ProbL(dest));
        } else if let Extended::Fin(lv) = self.l {
            if dest <= lv {
                out.send(lv, Message::ProbL(dest));
                return;
            }
            if dest < me {
                out.event(ProtocolEvent::ProbeRepair { at: me, dest });
                self.linearize(dest, out);
            }
        } else if dest < me {
            out.event(ProtocolEvent::ProbeRepair { at: me, dest });
            self.linearize(dest, out);
        }
    }

    /// `probing()` — Algorithm 10: launch probes toward our ring target
    /// (extremal nodes only) and toward our long-range link endpoint.
    pub(crate) fn probing(&mut self, out: &mut Outbox) {
        if self.l.is_neg_inf() || self.r.is_pos_inf() {
            if let Some(ring) = self.ring() {
                self.probe_toward(ring, out);
            }
        }
        let lrl = self.lrl;
        if lrl != self.id() {
            self.probe_toward(lrl, out);
        }
    }

    /// The common originate-a-probe step of Algorithm 10: hand the probe
    /// to the neighbour on the destination's side, or repair immediately
    /// when the destination falls inside our own gap.
    fn probe_toward(&mut self, dest: NodeId, out: &mut Outbox) {
        let me = self.id();
        if dest < me {
            if let Extended::Fin(lv) = self.l {
                if dest <= lv {
                    out.send(lv, Message::ProbL(dest));
                    return;
                }
            }
            // l = −∞, or l < dest < me: our own left link is the gap.
            out.event(ProtocolEvent::ProbeRepair { at: me, dest });
            self.linearize(dest, out);
        } else if dest > me {
            if let Extended::Fin(rv) = self.r {
                if dest >= rv {
                    out.send(rv, Message::ProbR(dest));
                    return;
                }
            }
            out.event(ProtocolEvent::ProbeRepair { at: me, dest });
            self.linearize(dest, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;

    fn id(f: f64) -> NodeId {
        NodeId::from_fraction(f)
    }

    fn node(l: Option<f64>, me: f64, r: Option<f64>, lrl: f64, ring: Option<f64>) -> Node {
        Node::with_state(
            id(me),
            l.map(|f| Extended::Fin(id(f))).unwrap_or(Extended::NegInf),
            r.map(|f| Extended::Fin(id(f))).unwrap_or(Extended::PosInf),
            id(lrl),
            ring.map(id),
            ProtocolConfig::default(),
        )
    }

    fn repairs(out: &Outbox) -> usize {
        out.events()
            .iter()
            .filter(|e| matches!(e, ProtocolEvent::ProbeRepair { .. }))
            .count()
    }

    // ---- probingr (Algorithm 5) ----

    #[test]
    fn probe_uses_lrl_shortcut_when_not_overshooting() {
        // lrl = 0.7 > r = 0.6, dest = 0.9 ≥ lrl: jump the shortcut.
        let mut n = node(Some(0.2), 0.5, Some(0.6), 0.7, None);
        let mut out = Outbox::new();
        n.probing_r(id(0.9), &mut out);
        assert_eq!(out.sends(), &[(id(0.7), Message::ProbR(id(0.9)))]);
        assert_eq!(repairs(&out), 0);
    }

    #[test]
    fn probe_skips_overshooting_lrl() {
        // lrl = 0.95 would overshoot dest = 0.9: fall back to r.
        let mut n = node(Some(0.2), 0.5, Some(0.6), 0.95, None);
        let mut out = Outbox::new();
        n.probing_r(id(0.9), &mut out);
        assert_eq!(out.sends(), &[(id(0.6), Message::ProbR(id(0.9)))]);
    }

    #[test]
    fn probe_forwards_along_right_neighbour() {
        let mut n = node(Some(0.2), 0.5, Some(0.6), 0.5, None);
        let mut out = Outbox::new();
        n.probing_r(id(0.9), &mut out);
        assert_eq!(out.sends(), &[(id(0.6), Message::ProbR(id(0.9)))]);
    }

    #[test]
    fn stuck_probe_repairs_edge() {
        // dest = 0.55 lies strictly between me = 0.5 and r = 0.6: the path
        // of short links is broken; linearize adopts dest as new r.
        let mut n = node(Some(0.2), 0.5, Some(0.6), 0.5, None);
        let mut out = Outbox::new();
        n.probing_r(id(0.55), &mut out);
        assert_eq!(repairs(&out), 1);
        assert_eq!(n.right(), Extended::Fin(id(0.55)));
        // Displaced old neighbour forwarded to the newcomer (linearize).
        assert_eq!(out.sends(), &[(id(0.55), Message::Lin(id(0.6)))]);
    }

    #[test]
    fn probe_at_destination_is_absorbed() {
        // dest == me: probe completed, nothing emitted.
        let mut n = node(Some(0.2), 0.5, Some(0.6), 0.5, None);
        let mut out = Outbox::new();
        n.probing_r(id(0.5), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn stale_leftward_probr_dropped() {
        // dest < me on a rightward probe: a stale message from a corrupt
        // initial channel; must be dropped, not repaired.
        let mut n = node(Some(0.2), 0.5, Some(0.6), 0.5, None);
        let mut out = Outbox::new();
        n.probing_r(id(0.3), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn probe_repairs_at_list_end() {
        // r = +∞ but dest > me: we are the last short-link node; repair.
        let mut n = node(Some(0.2), 0.5, None, 0.5, None);
        let mut out = Outbox::new();
        n.probing_r(id(0.9), &mut out);
        assert_eq!(repairs(&out), 1);
        assert_eq!(n.right(), Extended::Fin(id(0.9)));
    }

    // ---- probingl (Algorithm 6) ----

    #[test]
    fn leftward_probe_mirrors_rightward() {
        let mut n = node(Some(0.4), 0.5, Some(0.8), 0.3, None);
        let mut out = Outbox::new();
        n.probing_l(id(0.1), &mut out);
        // lrl = 0.3 < l = 0.4 and dest = 0.1 ≤ lrl: shortcut.
        assert_eq!(out.sends(), &[(id(0.3), Message::ProbL(id(0.1)))]);
    }

    #[test]
    fn leftward_probe_forwards_along_left_neighbour() {
        let mut n = node(Some(0.4), 0.5, Some(0.8), 0.5, None);
        let mut out = Outbox::new();
        n.probing_l(id(0.1), &mut out);
        assert_eq!(out.sends(), &[(id(0.4), Message::ProbL(id(0.1)))]);
    }

    #[test]
    fn leftward_stuck_probe_repairs() {
        let mut n = node(Some(0.2), 0.5, Some(0.8), 0.5, None);
        let mut out = Outbox::new();
        n.probing_l(id(0.3), &mut out);
        assert_eq!(repairs(&out), 1);
        assert_eq!(n.left(), Extended::Fin(id(0.3)));
    }

    // ---- probing() origination (Algorithm 10) ----

    #[test]
    fn origin_probes_its_lrl_rightward() {
        let mut n = node(Some(0.2), 0.5, Some(0.6), 0.9, None);
        let mut out = Outbox::new();
        n.probing(&mut out);
        assert_eq!(out.sends(), &[(id(0.6), Message::ProbR(id(0.9)))]);
    }

    #[test]
    fn origin_probes_its_lrl_leftward() {
        let mut n = node(Some(0.4), 0.5, Some(0.6), 0.1, None);
        let mut out = Outbox::new();
        n.probing(&mut out);
        assert_eq!(out.sends(), &[(id(0.4), Message::ProbL(id(0.1)))]);
    }

    #[test]
    fn token_at_origin_probes_nothing() {
        let mut n = node(Some(0.4), 0.5, Some(0.6), 0.5, None);
        let mut out = Outbox::new();
        n.probing(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn lrl_inside_own_gap_repairs_immediately() {
        // lrl = 0.55 with r = 0.6: destination inside our own gap.
        let mut n = node(Some(0.2), 0.5, Some(0.6), 0.55, None);
        let mut out = Outbox::new();
        n.probing(&mut out);
        assert_eq!(repairs(&out), 1);
        assert_eq!(n.right(), Extended::Fin(id(0.55)));
    }

    #[test]
    fn extremal_node_probes_ring_edge() {
        // Max candidate with ring pointing far left: probe via l.
        let mut n = node(Some(0.7), 0.9, None, 0.9, Some(0.1));
        let mut out = Outbox::new();
        n.probing(&mut out);
        assert_eq!(out.sends(), &[(id(0.7), Message::ProbL(id(0.1)))]);
    }

    #[test]
    fn interior_node_does_not_probe_ring() {
        // Ring edge only probed while extremal. (An interior node with a
        // stale ring has it cleared by sanitize at the next action; here we
        // call probing() directly to pin down Algorithm 10's guard.)
        let mut n = node(Some(0.4), 0.5, Some(0.6), 0.5, Some(0.9));
        let mut out = Outbox::new();
        n.probing(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn min_with_ring_in_own_gap_repairs() {
        // Min candidate whose ring target 0.2 lies inside (me, r): the ring
        // target is actually our next neighbour — adopt it.
        let mut n = node(None, 0.1, Some(0.4), 0.1, Some(0.2));
        let mut out = Outbox::new();
        n.probing(&mut out);
        assert_eq!(repairs(&out), 1);
        assert_eq!(n.right(), Extended::Fin(id(0.2)));
    }

    #[test]
    fn probe_walks_a_broken_chain_and_repairs_once() {
        // Three-node chain with a missing middle link: a probe from the
        // left end repairs exactly the broken hop.
        // a(0.1, r=0.5) -> b(0.5, r=0.9 but dest 0.7 missing) ...
        let mut b = node(Some(0.1), 0.5, Some(0.9), 0.5, None);
        let mut out = Outbox::new();
        // probe dest = 0.7 arriving at b: 0.5 < 0.7 < 0.9 ⇒ repair at b.
        b.probing_r(id(0.7), &mut out);
        assert_eq!(repairs(&out), 1);
        assert_eq!(b.right(), Extended::Fin(id(0.7)));
        // and 0.9 was handed to 0.7 so the chain stays connected.
        assert_eq!(out.sends(), &[(id(0.7), Message::Lin(id(0.9)))]);
    }
}
