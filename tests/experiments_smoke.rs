//! Smoke test: every experiment of the harness runs end to end at a tiny
//! scale and produces a well-formed table. (The scientific assertions
//! live in each experiment module's own tests; this guards the wiring the
//! `experiments` binary relies on.)

use swn_harness::table::Table;
use swn_harness::*;

fn check(t: &Table, min_rows: usize) {
    assert!(!t.title.is_empty());
    assert!(
        t.rows.len() >= min_rows,
        "{}: only {} rows",
        t.title,
        t.rows.len()
    );
    for row in &t.rows {
        assert_eq!(row.len(), t.headers.len(), "{}: ragged row", t.title);
    }
    let rendered = t.render();
    assert!(rendered.contains(&t.title));
}

#[test]
fn e1_smoke() {
    let p = e1_convergence::Params {
        sizes: vec![12],
        trials: 2,
        families: vec![swn_sim::init::InitialTopology::Star],
        max_rounds: 100_000,
    };
    check(&e1_convergence::run(&p), 1);
}

#[test]
fn e2_smoke() {
    let p = e2_distribution::Params {
        sizes: vec![64],
        warmup: 300,
        epochs: 10,
        epoch_gap: 5,
        epsilon: 0.1,
    };
    check(&e2_distribution::run(&p), 2);
}

#[test]
fn e3_smoke() {
    let p = e3_routing::Params {
        sizes: vec![128],
        protocol_max_n: 128,
        pairs: 40,
        epsilon: 0.1,
    };
    // 7 systems + fit rows.
    check(&e3_routing::run(&p), 7);
}

#[test]
fn e4_smoke() {
    let p = e4_probing::Params {
        n: 64,
        warmup: 100,
        epochs: 5,
        epoch_gap: 5,
        epsilon: 0.1,
    };
    check(&e4_probing::run(&p), 2);
}

#[test]
fn e5_e6_smoke() {
    let p = e5_join_leave::Params {
        sizes: vec![32],
        trials: 2,
        max_rounds: 100_000,
        epsilon: 0.1,
    };
    check(&e5_join_leave::run_join(&p), 1);
    check(&e5_join_leave::run_leave(&p), 1);
}

#[test]
fn e7_smoke() {
    let p = e7_robustness::Params {
        n: 64,
        fractions: vec![0.0, 0.3],
        pairs: 30,
        epsilon: 0.1,
    };
    check(&e7_robustness::run(&p), 8);
}

#[test]
fn e8_smoke() {
    let p = e8_watts_strogatz::Params {
        n: 100,
        k: 6,
        ps: vec![0.1],
        seeds: 2,
        path_samples: 20,
    };
    check(&e8_watts_strogatz::run(&p), 1);
}

#[test]
fn e9_smoke() {
    let p = e9_overhead::Params {
        sizes: vec![32],
        warmup: 100,
        window: 30,
        age_horizon_factor: 30,
        epsilon: 0.1,
    };
    check(&e9_overhead::run(&p), 1);
}

#[test]
fn ablations_smoke() {
    let p = ablations::Params {
        sizes: vec![16],
        trials: 2,
        n: 48,
        warmup: 200,
    };
    check(&ablations::run_a1(&p), 1);
    check(&ablations::run_a2(&p), 4);
    check(&ablations::run_a3(&p), 4);
}
