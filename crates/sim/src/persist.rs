//! Snapshot persistence: save and restore global states as JSON.
//!
//! Long experiments become checkpointable and failures replayable: a
//! [`Snapshot`](swn_core::views::Snapshot) round-trips through a
//! versioned JSON document, and a network can be rebuilt from one
//! (channel contents included, so the restored computation continues
//! from exactly the persisted CC state).

use serde::{Deserialize, Serialize};
use swn_core::message::Message;
use swn_core::node::Node;
use swn_core::views::Snapshot;

use crate::network::Network;

/// Current document version (bumped on breaking layout changes).
pub const FORMAT_VERSION: u32 = 1;

/// The serializable form of a snapshot.
#[derive(Serialize, Deserialize)]
struct Doc {
    version: u32,
    nodes: Vec<Node>,
    channels: Vec<Vec<Message>>,
}

/// Serializes a snapshot to JSON.
pub fn snapshot_to_json(s: &Snapshot) -> String {
    let doc = Doc {
        version: FORMAT_VERSION,
        nodes: s.nodes().to_vec(),
        channels: s.channels().to_vec(),
    };
    serde_json::to_string(&doc).expect("snapshot serialization cannot fail")
}

/// Deserializes a snapshot from JSON.
pub fn snapshot_from_json(json: &str) -> Result<Snapshot, String> {
    let doc: Doc = serde_json::from_str(json).map_err(|e| e.to_string())?;
    if doc.version != FORMAT_VERSION {
        return Err(format!(
            "unsupported snapshot version {} (expected {FORMAT_VERSION})",
            doc.version
        ));
    }
    if doc.nodes.len() != doc.channels.len() {
        return Err("node/channel count mismatch".to_string());
    }
    let mut ids: Vec<_> = doc.nodes.iter().map(swn_core::node::Node::id).collect();
    ids.sort_unstable();
    if ids.windows(2).any(|w| w[0] == w[1]) {
        return Err("duplicate node ids in snapshot".to_string());
    }
    Ok(Snapshot::new(doc.nodes, doc.channels))
}

/// Rebuilds a runnable network from a snapshot: node states are adopted
/// verbatim and persisted channel contents are preloaded, so the restored
/// computation continues from the same CC state (scheduler randomness is
/// freshly seeded — the model guarantees stabilization under *any*
/// fair schedule, so checkpoints never need to capture the RNG).
pub fn network_from_snapshot(s: &Snapshot, seed: u64) -> Network {
    let mut net = Network::new(s.nodes().to_vec(), seed);
    for (idx, msgs) in s.channels().iter().enumerate() {
        let dest = s.nodes()[idx].id();
        for &m in msgs {
            net.preload(dest, m);
        }
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::run_to_ring;
    use crate::init::{generate, InitialTopology};
    use swn_core::config::ProtocolConfig;
    use swn_core::id::evenly_spaced_ids;
    use swn_core::invariants::{classify, Phase};

    fn sample_network() -> Network {
        let ids = evenly_spaced_ids(12);
        let mut net = generate(
            InitialTopology::RandomSparse { extra: 2 },
            &ids,
            ProtocolConfig::default(),
            5,
        )
        .into_network(5);
        net.run(3); // some in-flight messages
        net
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let net = sample_network();
        let s = net.snapshot();
        let json = snapshot_to_json(&s);
        let back = snapshot_from_json(&json).expect("round trip");
        assert_eq!(back.nodes(), s.nodes());
        assert_eq!(back.channels(), s.channels());
    }

    #[test]
    fn restored_network_continues_to_stabilize() {
        let net = sample_network();
        let json = snapshot_to_json(&net.snapshot());
        let restored = snapshot_from_json(&json).expect("parse");
        let mut net2 = network_from_snapshot(&restored, 99);
        let rep = run_to_ring(&mut net2, 100_000);
        assert!(rep.stabilized(), "restored computation must stabilize");
        assert_eq!(classify(&net2.snapshot()), Phase::SortedRing);
    }

    #[test]
    fn version_mismatch_rejected() {
        let net = sample_network();
        let json = snapshot_to_json(&net.snapshot()).replace("\"version\":1", "\"version\":999");
        assert!(snapshot_from_json(&json)
            .unwrap_err()
            .contains("unsupported snapshot version"));
    }

    #[test]
    fn garbage_rejected_gracefully() {
        assert!(snapshot_from_json("not json").is_err());
        assert!(snapshot_from_json("{}").is_err());
    }

    #[test]
    fn stable_state_persists_its_stability() {
        let ids = evenly_spaced_ids(8);
        let nodes = swn_core::invariants::make_sorted_ring(&ids, ProtocolConfig::default());
        let s = swn_core::views::Snapshot::from_nodes(nodes);
        let back = snapshot_from_json(&snapshot_to_json(&s)).expect("round trip");
        assert_eq!(classify(&back), Phase::SortedRing);
    }
}
