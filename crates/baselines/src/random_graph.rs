//! Erdős–Rényi random graphs — the "disordered" reference point.

use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use swn_topology::Graph;

/// G(n, m): exactly `m` distinct undirected edges drawn uniformly.
///
/// # Panics
/// Panics if `m` exceeds the number of possible edges.
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    let max_m = n * (n.saturating_sub(1)) / 2;
    assert!(m <= max_m, "m = {m} exceeds max {max_m} for n = {n}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    let mut placed = 0usize;
    let mut seen = std::collections::HashSet::new();
    while placed < m {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            g.add_edge(u, v);
            g.add_edge(v, u);
            placed += 1;
        }
    }
    g
}

/// G(n, p): each undirected pair independently present with probability
/// `p`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random_bool(p) {
                g.add_edge(u, v);
                g.add_edge(v, u);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use swn_topology::clustering::average_clustering;
    use swn_topology::connectivity::is_weakly_connected;

    #[test]
    fn gnm_places_exact_edge_count() {
        let g = gnm(50, 100, 1);
        assert_eq!(g.m(), 200, "100 undirected edges stored both ways");
    }

    #[test]
    fn gnp_density_close_to_p() {
        let n = 200;
        let g = gnp(n, 0.1, 2);
        let pairs = (n * (n - 1) / 2) as f64;
        let density = (g.m() / 2) as f64 / pairs;
        assert!((0.08..0.12).contains(&density), "density {density}");
    }

    #[test]
    fn supercritical_gnp_is_usually_connected() {
        // p = 3 ln n / n is well above the connectivity threshold.
        let n = 300;
        let p = 3.0 * (n as f64).ln() / n as f64;
        for seed in 0..3 {
            assert!(is_weakly_connected(&gnp(n, p, seed)), "seed {seed}");
        }
    }

    #[test]
    fn random_graphs_have_low_clustering() {
        let g = gnm(500, 2500, 3); // mean degree 10
        let c = average_clustering(&g);
        // Expected C ≈ k/n = 0.02.
        assert!(c < 0.08, "clustering {c} too high for ER");
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(gnm(40, 60, 9), gnm(40, 60, 9));
        assert_eq!(gnp(40, 0.2, 9), gnp(40, 0.2, 9));
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn gnm_rejects_impossible_m() {
        let _ = gnm(4, 100, 1);
    }
}
