//! Regular ring lattices — the "ordered" end of the Watts–Strogatz
//! spectrum and the Θ(n)-routing baseline.

use swn_topology::Graph;

/// A ring of `n` nodes where each node is bidirectionally linked to its
/// `k/2` nearest neighbours on each side (`k` must be even, ≥ 2, < n).
pub fn ring_lattice(n: usize, k: usize) -> Graph {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "k must be even and ≥ 2, got {k}"
    );
    assert!(k < n, "k = {k} must be smaller than n = {n}");
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in 1..=(k / 2) {
            let v = (i + j) % n;
            g.add_edge(i, v);
            g.add_edge(v, i);
        }
    }
    g
}

/// The simple bidirectional cycle (`k = 2`).
pub fn cycle(n: usize) -> Graph {
    ring_lattice(n, 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swn_topology::connectivity::is_weakly_connected;
    use swn_topology::paths::path_stats_exact;

    #[test]
    fn degrees_are_k() {
        let g = ring_lattice(20, 4).undirected_view();
        for u in 0..20 {
            assert_eq!(g.out_degree(u), 4);
        }
    }

    #[test]
    fn cycle_is_connected_with_linear_diameter() {
        let g = cycle(30);
        assert!(is_weakly_connected(&g));
        assert_eq!(path_stats_exact(&g).diameter, 15);
    }

    #[test]
    fn k4_halves_the_diameter() {
        assert_eq!(path_stats_exact(&ring_lattice(32, 4)).diameter, 8);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_k_rejected() {
        let _ = ring_lattice(10, 3);
    }

    #[test]
    #[should_panic(expected = "smaller than")]
    fn k_too_large_rejected() {
        let _ = ring_lattice(4, 4);
    }
}
