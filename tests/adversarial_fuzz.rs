//! Adversarial state fuzzing: beyond the structured initial-state
//! families, generate *arbitrary* corrupt states — ill-typed variables,
//! swapped sentinels, garbage channel messages, self-pointers — keep only
//! weak CC-connectivity (the theorem's hypothesis), and require
//! stabilization every single time.

use proptest::prelude::*;
use self_stabilizing_smallworld::prelude::*;
use swn_core::node::Node;

/// Builds a completely arbitrary node state over the id universe, then a
/// spanning chain of lin messages to guarantee the weak-connectivity
/// hypothesis (the variables themselves are unconstrained garbage).
fn fuzz_network(
    n: usize,
    raw: &[(u8, usize, usize, usize, usize)],
    junk: &[(usize, u8, usize)],
    seed: u64,
) -> Network {
    let ids = evenly_spaced_ids(n);
    let cfg = ProtocolConfig::default();
    let pick = |k: usize| ids[k % n];
    let nodes: Vec<Node> = (0..n)
        .map(|i| {
            let (mode, l, r, lrl, ring) = raw[i % raw.len()];
            // mode bits choose which variables are garbage vs sentinel.
            let l = if mode & 1 == 0 {
                Extended::NegInf
            } else {
                Extended::Fin(pick(l))
            };
            let r = if mode & 2 == 0 {
                Extended::PosInf
            } else {
                Extended::Fin(pick(r))
            };
            let ring = if mode & 4 == 0 {
                None
            } else {
                Some(pick(ring))
            };
            Node::with_state(ids[i], l, r, pick(lrl), ring, cfg)
        })
        .collect();
    let mut net = Network::new(nodes, seed);
    // Weak connectivity: a chain of lin messages over a fixed permutation.
    for w in 0..n.saturating_sub(1) {
        net.preload(ids[w], Message::Lin(ids[w + 1]));
    }
    // Arbitrary junk traffic on top.
    for &(dest, kind, payload) in junk {
        let d = pick(dest);
        let p = pick(payload);
        let msg = match kind % 6 {
            0 => Message::Lin(p),
            1 => Message::IncLrl(p),
            2 => Message::Ring(p),
            3 => Message::ResRing(p),
            4 => Message::ProbR(p),
            _ => Message::ProbL(p),
        };
        net.preload(d, msg);
    }
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_corrupt_states_always_stabilize(
        n in 2usize..24,
        raw in proptest::collection::vec(
            (any::<u8>(), 0usize..64, 0usize..64, 0usize..64, 0usize..64),
            1..24
        ),
        junk in proptest::collection::vec(
            (0usize..64, any::<u8>(), 0usize..64),
            0..20
        ),
        seed: u64,
    ) {
        let mut net = fuzz_network(n, &raw, &junk, seed);
        let report = run_to_ring(&mut net, 500_000);
        prop_assert!(
            report.stabilized(),
            "fuzzed state failed to stabilize: {report:?}"
        );
        // And the stable state is the genuine article.
        let s = net.snapshot();
        prop_assert!(is_sorted_ring(&s));
        prop_assert!(is_small_world_structure(&s));
    }

    #[test]
    fn fuzzed_stable_states_survive_message_replay(
        n in 4usize..16,
        junk in proptest::collection::vec(
            (0usize..64, any::<u8>(), 0usize..64),
            1..30
        ),
        seed: u64,
    ) {
        // A correct stable ring bombarded with arbitrary garbage messages
        // must absorb them without ever leaving the stable phase for more
        // than the transient, and must re-stabilize.
        let ids = evenly_spaced_ids(n);
        let nodes = make_sorted_ring(&ids, ProtocolConfig::default());
        let mut net = Network::new(nodes, seed);
        net.run(20);
        let pick = |k: usize| ids[k % n];
        for &(dest, kind, payload) in &junk {
            let msg = match kind % 6 {
                0 => Message::Lin(pick(payload)),
                1 => Message::IncLrl(pick(payload)),
                2 => Message::Ring(pick(payload)),
                3 => Message::ResRing(pick(payload)),
                4 => Message::ProbR(pick(payload)),
                _ => Message::ProbL(pick(payload)),
            };
            net.preload(pick(dest), msg);
        }
        let report = run_to_ring(&mut net, 100_000);
        prop_assert!(report.stabilized(), "garbage bombardment broke the ring");
    }
}
