//! The connectivity-graph views of Definition 4.2.
//!
//! The convergence proof reasons about six graphs over the node set:
//!
//! * **CP** — node connectivity: all *stored* links (`l`, `r`, `lrl`,
//!   `ring`);
//! * **CC** — channel connectivity: CP plus the temporary links implied by
//!   every identifier sitting in a channel;
//! * **LCP / LCC** — the restriction to the linearization process:
//!   stored `l`/`r` links (LCP), plus `lin` messages (LCC);
//! * **RCP / RCC** — LCP/LCC plus the ring edges (stored, and for RCC the
//!   in-flight `ring` messages).
//!
//! A [`Snapshot`] is a frozen global state (taken by the simulator or the
//! threaded runtime); the view extractors return edge lists over node
//! *indices* in the snapshot, ready for the analysis crate.

use crate::id::NodeId;
use crate::message::Message;
use crate::node::Node;
use std::collections::BTreeMap;

/// A frozen global state: every node's variables plus every channel's
/// contents. `channels[i]` holds the messages waiting in `nodes[i]`'s
/// channel.
#[derive(Clone, Debug)]
pub struct Snapshot {
    nodes: Vec<Node>,
    channels: Vec<Vec<Message>>,
    index: BTreeMap<NodeId, usize>,
}

/// Which connectivity view to extract from a snapshot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum View {
    /// All stored links.
    Cp,
    /// Stored links + all channel-implied links.
    Cc,
    /// Stored `l`/`r` links only.
    Lcp,
    /// LCP + `lin` messages.
    Lcc,
    /// LCP + stored ring edges.
    Rcp,
    /// LCC + stored ring edges + `ring` messages.
    Rcc,
}

impl Snapshot {
    /// Builds a snapshot from node clones and their channel contents.
    ///
    /// # Panics
    /// Panics if `channels.len() != nodes.len()` or node ids collide.
    pub fn new(nodes: Vec<Node>, channels: Vec<Vec<Message>>) -> Self {
        assert_eq!(nodes.len(), channels.len(), "one channel per node required");
        let mut index = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            let prev = index.insert(n.id(), i);
            assert!(prev.is_none(), "duplicate node id {:?}", n.id());
        }
        Snapshot {
            nodes,
            channels,
            index,
        }
    }

    /// Snapshot with empty channels (pure node-state view).
    pub fn from_nodes(nodes: Vec<Node>) -> Self {
        let channels = vec![Vec::new(); nodes.len()];
        Snapshot::new(nodes, channels)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the snapshot holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The nodes, in snapshot order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The channels, parallel to [`nodes`](Self::nodes).
    pub fn channels(&self) -> &[Vec<Message>] {
        &self.channels
    }

    /// Index of the node with identifier `id`, if present.
    pub fn index_of(&self, id: NodeId) -> Option<usize> {
        self.index.get(&id).copied()
    }

    /// Node indices in ascending id order.
    pub fn sorted_indices(&self) -> Vec<usize> {
        self.index.values().copied().collect()
    }

    /// Total number of messages in flight.
    pub fn messages_in_flight(&self) -> usize {
        self.channels.iter().map(Vec::len).sum()
    }

    /// Extracts the directed edge list of a connectivity view. Edges point
    /// from the node *storing/receiving* an identifier to that identifier's
    /// node; identifiers of absent nodes (possible during churn) are
    /// skipped.
    pub fn edges(&self, view: View) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        let push = |edges: &mut Vec<(usize, usize)>, from: usize, to: NodeId| {
            if let Some(j) = self.index_of(to) {
                if j != from {
                    edges.push((from, j));
                }
            }
        };
        for (i, n) in self.nodes.iter().enumerate() {
            // Stored l/r links: in every view.
            if let Some(l) = n.left().fin() {
                push(&mut edges, i, l);
            }
            if let Some(r) = n.right().fin() {
                push(&mut edges, i, r);
            }
            // Stored lrl: CP/CC only.
            if matches!(view, View::Cp | View::Cc) {
                push(&mut edges, i, n.lrl());
            }
            // Stored ring edge: CP/CC/RCP/RCC.
            if matches!(view, View::Cp | View::Cc | View::Rcp | View::Rcc) {
                if let Some(x) = n.ring() {
                    push(&mut edges, i, x);
                }
            }
        }
        // Channel-implied temporary links.
        if matches!(view, View::Cc | View::Lcc | View::Rcc) {
            for (i, ch) in self.channels.iter().enumerate() {
                for m in ch {
                    let include = match view {
                        View::Cc => true,
                        View::Lcc => m.in_lcc(),
                        View::Rcc => m.in_lcc() || matches!(m, Message::Ring(_)),
                        _ => unreachable!(),
                    };
                    if include {
                        for id in m.carried_ids() {
                            push(&mut edges, i, id);
                        }
                    }
                }
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use crate::id::Extended;

    fn id(f: f64) -> NodeId {
        NodeId::from_fraction(f)
    }

    /// Three-node sorted list 0.2 – 0.5 – 0.8 with assorted extras.
    fn sample() -> Snapshot {
        let cfg = ProtocolConfig::default();
        let a = Node::with_state(
            id(0.2),
            Extended::NegInf,
            Extended::Fin(id(0.5)),
            id(0.8), // lrl
            Some(id(0.8)),
            cfg,
        );
        let b = Node::with_state(
            id(0.5),
            Extended::Fin(id(0.2)),
            Extended::Fin(id(0.8)),
            id(0.5),
            None,
            cfg,
        );
        let c = Node::with_state(
            id(0.8),
            Extended::Fin(id(0.5)),
            Extended::PosInf,
            id(0.2),
            Some(id(0.2)),
            cfg,
        );
        let channels = vec![
            vec![Message::Lin(id(0.8))],
            vec![Message::Ring(id(0.2))],
            vec![Message::ProbR(id(0.8))],
        ];
        Snapshot::new(vec![a, b, c], channels)
    }

    #[test]
    fn lcp_contains_only_list_links() {
        let s = sample();
        let mut e = s.edges(View::Lcp);
        e.sort_unstable();
        assert_eq!(e, vec![(0, 1), (1, 0), (1, 2), (2, 1)]);
    }

    #[test]
    fn rcp_adds_ring_edges() {
        let s = sample();
        let e = s.edges(View::Rcp);
        assert!(e.contains(&(0, 2)), "min.ring = max");
        assert!(e.contains(&(2, 0)), "max.ring = min");
        assert_eq!(e.len(), 6);
    }

    #[test]
    fn cp_adds_lrl_edges() {
        let s = sample();
        let e = s.edges(View::Cp);
        assert!(e.contains(&(0, 2)), "a.lrl = c");
        assert!(e.contains(&(2, 0)), "c.lrl = a");
        // b.lrl = self: skipped.
        assert_eq!(e.len(), 8);
    }

    #[test]
    fn lcc_includes_lin_but_not_other_messages() {
        let s = sample();
        let e = s.edges(View::Lcc);
        // Channel of node 0 has Lin(0.8): edge (0, 2).
        assert!(e.contains(&(0, 2)));
        // Ring / ProbR messages must not contribute to LCC.
        assert_eq!(e.len(), s.edges(View::Lcp).len() + 1);
    }

    #[test]
    fn rcc_includes_ring_messages() {
        let s = sample();
        let e = s.edges(View::Rcc);
        // node 1's channel has Ring(0.2): edge (1, 0) — already in LCP,
        // plus node 0's Lin(0.8) and both stored ring edges.
        assert!(e.contains(&(1, 0)));
        assert_eq!(e.len(), s.edges(View::Lcc).len() + 2 + 1);
    }

    #[test]
    fn cc_is_a_superset_of_every_other_view() {
        let s = sample();
        let cc: std::collections::HashSet<_> = s.edges(View::Cc).into_iter().collect();
        for v in [View::Cp, View::Lcp, View::Lcc, View::Rcp, View::Rcc] {
            for e in s.edges(v) {
                assert!(cc.contains(&e), "{v:?} edge {e:?} missing from CC");
            }
        }
    }

    #[test]
    fn absent_ids_are_skipped() {
        let cfg = ProtocolConfig::default();
        // Node pointing at a departed node 0.9.
        let a = Node::with_state(
            id(0.2),
            Extended::NegInf,
            Extended::Fin(id(0.9)),
            id(0.2),
            None,
            cfg,
        );
        let s = Snapshot::from_nodes(vec![a]);
        assert!(s.edges(View::Cc).is_empty());
    }

    #[test]
    fn index_lookup() {
        let s = sample();
        assert_eq!(s.index_of(id(0.5)), Some(1));
        assert_eq!(s.index_of(id(0.9)), None);
        assert_eq!(s.sorted_indices(), vec![0, 1, 2]);
        assert_eq!(s.messages_in_flight(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate node id")]
    fn rejects_duplicate_ids() {
        let cfg = ProtocolConfig::default();
        let a = Node::new(id(0.5), cfg);
        let b = Node::new(id(0.5), cfg);
        let _ = Snapshot::from_nodes(vec![a, b]);
    }
}
