//! Failure and attack robustness (Section I / IV.G, reference [25]).
//!
//! The paper motivates small-world overlays over uniformly structured
//! ones (CAN/Pastry/Chord) partly by robustness. These sweeps remove a
//! growing fraction of nodes — uniformly at random ("failures") or
//! highest-degree-first ("attacks") — and measure what is left: the giant
//! component fraction and the greedy-routing success rate among
//! survivors.

use crate::connectivity::largest_component;
use crate::graph::Graph;
use crate::routing::evaluate_routing;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// How victims are chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureMode {
    /// Uniformly random node failures.
    Random,
    /// Adversarial attack: remove highest-degree nodes first.
    TargetedHighestDegree,
}

/// One point of a robustness sweep.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RobustnessPoint {
    /// Fraction of nodes removed.
    pub removed_frac: f64,
    /// Largest surviving weak component as a fraction of survivors.
    pub giant_frac: f64,
    /// Greedy-routing success rate among survivors.
    pub routing_success: f64,
}

/// Removes `⌊frac·n⌋` nodes per `mode` and returns the mask of removed
/// nodes (true = removed).
pub fn removal_mask(g: &Graph, frac: f64, mode: FailureMode, seed: u64) -> Vec<bool> {
    assert!((0.0..=1.0).contains(&frac), "fraction out of range: {frac}");
    let n = g.n();
    // frac ∈ [0, 1] (asserted above), so the product is in [0, n].
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let k = ((n as f64) * frac).floor() as usize;
    let mut removed = vec![false; n];
    match mode {
        FailureMode::Random => {
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(&mut StdRng::seed_from_u64(seed));
            for &v in order.iter().take(k) {
                removed[v] = true;
            }
        }
        FailureMode::TargetedHighestDegree => {
            // Attack by *undirected* degree, recomputed statically (the
            // classic Albert–Jeong–Barabási protocol); ties broken by
            // index for determinism.
            let und = g.undirected_view();
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&v| (std::cmp::Reverse(und.out_degree(v)), v));
            for &v in order.iter().take(k) {
                removed[v] = true;
            }
        }
    }
    removed
}

/// Runs a full sweep over the given removal fractions.
pub fn sweep(
    g: &Graph,
    fractions: &[f64],
    mode: FailureMode,
    routing_pairs: usize,
    seed: u64,
) -> Vec<RobustnessPoint> {
    let n = g.n();
    fractions
        .iter()
        .map(|&frac| {
            let removed = removal_mask(g, frac, mode, seed);
            let survivors = removed.iter().filter(|&&r| !r).count();
            let damaged = g.without_nodes(&removed);
            let giant = largest_component(&damaged, Some(&removed));
            let alive: Vec<bool> = removed.iter().map(|&r| !r).collect();
            let routing = evaluate_routing(
                &damaged,
                routing_pairs,
                (4 * u32::try_from(n).expect("graph size fits u32")).max(64),
                seed ^ 0xabcd,
                Some(&alive),
            );
            RobustnessPoint {
                removed_frac: frac,
                giant_frac: if survivors == 0 {
                    0.0
                } else {
                    giant as f64 / survivors as f64
                },
                routing_success: routing.success_rate(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_with_chords(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
            g.add_edge((i + 1) % n, i);
            g.add_edge(i, (i + n / 4) % n);
        }
        g
    }

    #[test]
    fn zero_removal_is_fully_connected() {
        let g = ring_with_chords(32);
        let pts = sweep(&g, &[0.0], FailureMode::Random, 100, 1);
        assert_eq!(pts.len(), 1);
        assert!((pts[0].giant_frac - 1.0).abs() < 1e-12);
        assert!((pts[0].routing_success - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_mask_removes_exact_count() {
        let g = ring_with_chords(40);
        let mask = removal_mask(&g, 0.25, FailureMode::Random, 3);
        assert_eq!(mask.iter().filter(|&&r| r).count(), 10);
    }

    #[test]
    fn targeted_mask_takes_highest_degree_first() {
        let mut g = Graph::new(6);
        // Node 0 is a hub.
        for v in 1..6 {
            g.add_edge(0, v);
            g.add_edge(v, 0);
        }
        g.add_edge(1, 2);
        let mask = removal_mask(&g, 1.0 / 6.0, FailureMode::TargetedHighestDegree, 1);
        assert!(mask[0], "hub must be attacked first");
        assert_eq!(mask.iter().filter(|&&r| r).count(), 1);
    }

    #[test]
    fn giant_component_degrades_with_removal() {
        let g = ring_with_chords(64);
        let pts = sweep(&g, &[0.0, 0.3, 0.6], FailureMode::Random, 100, 7);
        assert!(pts[0].giant_frac >= pts[2].giant_frac - 1e-9);
    }

    #[test]
    fn full_removal_yields_zero() {
        let g = ring_with_chords(16);
        let pts = sweep(&g, &[1.0], FailureMode::Random, 50, 5);
        assert_eq!(pts[0].giant_frac, 0.0);
        assert_eq!(pts[0].routing_success, 0.0);
    }

    #[test]
    fn attack_hurts_hub_graph_more_than_random_failure() {
        // Star-of-cliques: one hub holding everything together.
        let mut g = Graph::new(41);
        for c in 0..4 {
            let base = 1 + c * 10;
            for i in 0..10 {
                for j in (i + 1)..10 {
                    g.add_edge(base + i, base + j);
                    g.add_edge(base + j, base + i);
                }
            }
            g.add_edge(0, base);
            g.add_edge(base, 0);
        }
        let frac = 1.0 / 41.0; // exactly one victim
        let rnd: f64 = (0..20)
            .map(|s| sweep(&g, &[frac], FailureMode::Random, 0, s)[0].giant_frac)
            .sum::<f64>()
            / 20.0;
        let tgt = sweep(&g, &[frac], FailureMode::TargetedHighestDegree, 0, 1)[0].giant_frac;
        assert!(
            tgt < rnd,
            "attacking the hub ({tgt}) must hurt more than random failure ({rnd})"
        );
    }
}
