//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `Bencher::iter` / `iter_batched`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros — with a plain
//! wall-clock median estimator instead of criterion's statistical
//! pipeline. Good enough to smoke-test that benches run and to get a
//! rough number; not a rigorous measurement tool.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Entry point handed to each bench function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 20,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IdLabel, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.label(), self.sample_size, f);
        self
    }

    /// Runs a parameterised benchmark; `input` is passed through to the
    /// closure alongside the bencher.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IdLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&id.label(), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus a `Display`able parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id like `name/param`.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{param}", name.into()),
        }
    }
}

/// Anything usable as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IdLabel {
    /// The display label for reports.
    fn label(&self) -> String;
}

impl IdLabel for BenchmarkId {
    fn label(&self) -> String {
        self.label.clone()
    }
}

impl IdLabel for &str {
    fn label(&self) -> String {
        (*self).to_string()
    }
}

impl IdLabel for String {
    fn label(&self) -> String {
        self.clone()
    }
}

/// How `iter_batched` amortises setup cost (all variants behave the
/// same here: one setup per routine call).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input every iteration.
    PerIteration,
}

/// Times closures under test.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let samples = self.samples.capacity();
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            let iters = u32::try_from(self.iters_per_sample).unwrap_or(u32::MAX);
            self.samples.push(start.elapsed() / iters);
        }
    }

    /// Times `routine` on fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let samples = self.samples.capacity();
        for _ in 0..samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    f(&mut bencher);
    bencher.samples.sort_unstable();
    let median = bencher
        .samples
        .get(bencher.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!(
        "bench {label}: median {median:?} over {} samples",
        bencher.samples.len()
    );
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut calls = 0u64;
        group.sample_size(3).bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        group.finish();
        assert!(calls >= 3);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2).bench_with_input(
            BenchmarkId::new("sum", 4usize),
            &vec![1u64, 2, 3, 4],
            |b, v| {
                b.iter_batched(
                    || v.clone(),
                    |owned| owned.iter().sum::<u64>(),
                    BatchSize::LargeInput,
                );
            },
        );
        group.finish();
    }
}
