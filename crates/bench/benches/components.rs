//! Micro-benches of the hot substrate paths: the protocol handlers, the
//! channel, snapshot/view extraction and the graph algorithms. These are
//! the inner loops every experiment's wall-clock rests on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use swn_baselines::kleinberg::kleinberg_ring;
use swn_core::config::ProtocolConfig;
use swn_core::forget::phi;
use swn_core::id::{evenly_spaced_ids, NodeId};
use swn_core::invariants::{is_sorted_list, make_sorted_ring, weakly_connected, UnionFind};
use swn_core::message::Message;
use swn_core::outbox::Outbox;
use swn_core::views::{Snapshot, View};
use swn_topology::paths::bfs_distances;
use swn_topology::Graph;

fn bench_handlers(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_handlers");
    group.bench_function("linearize_forward", |b| {
        let cfg = ProtocolConfig::default();
        let ids = evenly_spaced_ids(8);
        let mut node = make_sorted_ring(&ids, cfg).swap_remove(3);
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = Outbox::new();
        let msg = Message::Lin(ids[7]);
        b.iter(|| {
            node.on_message(black_box(msg), &mut rng, &mut out);
            out.clear();
        });
    });
    group.bench_function("regular_action", |b| {
        let cfg = ProtocolConfig::default();
        let ids = evenly_spaced_ids(8);
        let mut node = make_sorted_ring(&ids, cfg).swap_remove(3);
        let mut out = Outbox::new();
        b.iter(|| {
            node.on_regular(&mut out);
            out.clear();
        });
    });
    group.bench_function("phi_eval", |b| {
        let mut a = 3u64;
        b.iter(|| {
            a = a % 100_000 + 3;
            black_box(phi(a, 0.1))
        });
    });
    group.finish();
}

fn bench_views(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_views");
    for n in [256usize, 2048] {
        let ids = evenly_spaced_ids(n);
        let nodes = make_sorted_ring(&ids, ProtocolConfig::default());
        let snap = Snapshot::from_nodes(nodes);
        group.bench_with_input(BenchmarkId::new("edges_cp", n), &snap, |b, s| {
            b.iter(|| black_box(s.edges(View::Cp).len()));
        });
        group.bench_with_input(BenchmarkId::new("is_sorted_list", n), &snap, |b, s| {
            b.iter(|| black_box(is_sorted_list(s)));
        });
        group.bench_with_input(BenchmarkId::new("weakly_connected", n), &snap, |b, s| {
            b.iter(|| black_box(weakly_connected(s, View::Lcc)));
        });
        group.bench_with_input(BenchmarkId::new("graph_from_snapshot", n), &snap, |b, s| {
            b.iter(|| black_box(Graph::from_snapshot(s, View::Cp).m()));
        });
    }
    group.finish();
}

fn bench_graph_algos(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_graphs");
    let g = kleinberg_ring(4096, 5);
    group.bench_function("bfs_4096", |b| {
        let und = g.undirected_view();
        b.iter(|| black_box(bfs_distances(&und, 17)[4000]));
    });
    group.bench_function("union_find_4096", |b| {
        let edges: Vec<(usize, usize)> = g.edges().collect();
        b.iter(|| {
            let mut uf = UnionFind::new(4096);
            for &(u, v) in &edges {
                uf.union(u, v);
            }
            black_box(uf.components())
        });
    });
    group.finish();
}

fn bench_channel(c: &mut Criterion) {
    use swn_sim::channel::{Channel, DeliveryPolicy};
    c.bench_function("substrate_channel/push_drain_1000", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let msg = Message::Lin(NodeId::from_fraction(0.5));
        b.iter(|| {
            let mut ch = Channel::new();
            for _ in 0..1000 {
                ch.push(msg, 0);
            }
            black_box(
                ch.take_deliverable(1, DeliveryPolicy::Immediate, &mut rng)
                    .len(),
            )
        });
    });
}

criterion_group!(
    benches,
    bench_handlers,
    bench_views,
    bench_graph_algos,
    bench_channel
);
criterion_main!(benches);
