//! Bench for experiment E4: deterministic probe replay on a stationary
//! snapshot — the cost of verifying connectivity for every node's
//! long-range link. Plus the message-level cost side of ablation A3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use swn_core::config::ProtocolConfig;
use swn_harness::probe_walk::replay_lrl_probe;
use swn_harness::testbed::harmonic_network;

fn bench_probe_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_probing");
    for n in [512usize, 2048] {
        let net = harmonic_network(n, ProtocolConfig::default(), 11);
        let snap = net.snapshot();
        group.bench_with_input(
            BenchmarkId::new("replay_all_probes", n),
            &snap,
            |b, snap| {
                b.iter(|| {
                    let mut arrived = 0u32;
                    for i in 0..snap.len() {
                        if let Some(o) = replay_lrl_probe(snap, i) {
                            if o.arrived_hops().is_some() {
                                arrived += 1;
                            }
                        }
                    }
                    black_box(arrived)
                });
            },
        );
    }
    group.finish();
}

fn bench_probe_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("a3_probe_cadence");
    group.sample_size(20);
    for period in [1u64, 8] {
        group.bench_with_input(BenchmarkId::new("round", period), &period, |b, &period| {
            let cfg = ProtocolConfig {
                probe_period: period,
                ..Default::default()
            };
            let mut net = harmonic_network(512, cfg, 3);
            b.iter(|| black_box(net.step().total_sent()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_probe_replay, bench_probe_rounds);
criterion_main!(benches);
