//! Acyclicity of the causal repair DAG.
//!
//! The causal tracer (obs/causal.rs) claims acyclicity *by
//! construction*: a child message is enqueued while its parent's
//! delivery round is executing and becomes eligible strictly later, so
//! every parent→child edge satisfies `parent.round < child.round`, and
//! the delivery sequence number is globally monotone, so `parent.seq <
//! child.seq` too. Either ordering alone already rules out cycles.
//!
//! This suite pins both orderings over randomized scenarios that keep
//! every engine path live — churn (bounce + drop routing), fault drop
//! windows, and delayed delivery — plus the bookkeeping identities the
//! report rendering relies on (roots + edges = deliveries, a complete
//! edge log, monotone log order).

use proptest::prelude::*;
use swn_core::config::ProtocolConfig;
use swn_core::id::evenly_spaced_ids;
use swn_core::invariants::make_sorted_ring;
use swn_sim::channel::DeliveryPolicy;
use swn_sim::faults::FaultPlan;
use swn_sim::obs::MemorySink;
use swn_sim::Network;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn causal_dag_is_acyclic_with_parents_delivered_strictly_first(
        n in 6usize..16,
        seed in 0u64..200,
        warmup in 0u64..8,
        rounds in 5u64..40,
        drop_p in 0.0f64..0.4,
        delayed in any::<bool>(),
    ) {
        let ids = evenly_spaced_ids(n);
        let policy = if delayed {
            DeliveryPolicy::RandomDelay { p_deliver: 0.5, max_delay: 4 }
        } else {
            DeliveryPolicy::Immediate
        };
        let mut net = Network::with_policy(
            make_sorted_ring(&ids, ProtocolConfig::default()),
            seed,
            policy,
        );
        let (sink, _records) = MemorySink::new();
        net.attach_sink(Box::new(sink), 16);
        net.run(warmup);
        net.cascade_begin();
        // Churn plus a drop window keep the bounce/drop/duplicate
        // routing paths live while the window is open.
        net.attach_faults(FaultPlan::new(seed).with_drop(warmup + 1, warmup + 5, drop_p));
        let victim = net.ids()[n / 2];
        net.remove_node(victim);
        net.run(rounds);
        let rep = net.cascade_take().expect("sink attached");

        // The scenarios are far below the edge-log cap, so the log is
        // the complete edge set and the check below is exhaustive.
        prop_assert_eq!(rep.stats.edges_dropped, 0);
        prop_assert_eq!(rep.stats.edge_log.len() as u64, rep.stats.edges);
        let mut last_child_seq = None;
        for &(parent, child) in &rep.stats.edge_log {
            prop_assert!(
                parent.round < child.round,
                "parent must be delivered strictly before its child: {:?} -> {:?}",
                parent,
                child
            );
            prop_assert!(
                parent.seq < child.seq,
                "delivery seq must be monotone along edges: {:?} -> {:?}",
                parent,
                child
            );
            // The log is appended in delivery order, so child ids are
            // strictly increasing — no delivery appears twice.
            if let Some(prev) = last_child_seq {
                prop_assert!(child.seq > prev, "edge log out of delivery order");
            }
            last_child_seq = Some(child.seq);
        }

        // Accounting identities the report rendering relies on.
        prop_assert_eq!(rep.delivered(), rep.stats.roots + rep.stats.edges);
        let handled: u64 = rep.stats.handled_by_kind.iter().sum();
        prop_assert_eq!(handled, rep.delivered());
        let width: u64 = rep.stats.width.iter().sum();
        prop_assert_eq!(width, rep.delivered());
        if rep.stats.edges > 0 {
            prop_assert!(rep.depth_max() >= 1);
        }
    }
}
