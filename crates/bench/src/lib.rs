//! Shared fixtures for the criterion benches (see `benches/`). Each bench
//! target corresponds to one experiment of DESIGN.md §4; the heavy lifting
//! lives in `swn-harness`, re-exported through this crate for convenience.

#![forbid(unsafe_code)]

pub use swn_harness::*;
