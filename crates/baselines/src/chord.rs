//! A Chord-style structured overlay (Stoica et al., SIGCOMM 2001).
//!
//! The paper contrasts small-world overlays with uniformly structured
//! ones: Chord also routes in O(log n) hops but its rigid finger
//! structure is what makes it "more vulnerable to attacks or failures".
//! We build the idealized full Chord graph: successor/predecessor links
//! plus fingers at every power-of-two distance.

use swn_topology::Graph;

/// The idealized Chord graph on `n` ranks: ring links plus fingers
/// `i ↔ (i + 2^j) mod n` for `j = 1..⌊log2 n⌋`.
///
/// Fingers are stored in both directions. Real Chord's fingers are
/// one-way because its metric is the one-way clockwise distance; our
/// shared greedy router uses the bidirectional ring metric, and
/// one-way fingers under a two-way metric would handicap Chord on
/// anticlockwise routes. Each node knowing its finger *pointers and
/// pointees* is the standard idealization (successor lists make the
/// reverse links available in practice).
pub fn chord(n: usize) -> Graph {
    assert!(n >= 4, "need at least 4 nodes, got {n}");
    let mut g = crate::ring_lattice::cycle(n);
    let mut step = 2usize;
    while step < n {
        for i in 0..n {
            g.add_edge(i, (i + step) % n);
            g.add_edge((i + step) % n, i);
        }
        step *= 2;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use swn_topology::connectivity::is_weakly_connected;
    use swn_topology::routing::evaluate_routing;

    #[test]
    fn chord_is_connected() {
        assert!(is_weakly_connected(&chord(128)));
    }

    #[test]
    fn degree_is_logarithmic() {
        for n in [64usize, 1024, 4096] {
            let g = chord(n);
            let log2n = (n as f64).log2();
            let deg = g.out_degree(0) as f64;
            // 2 ring links + ≈ 2·(log2 n − 1) bidirectional fingers.
            assert!(
                deg <= 2.0 * log2n + 2.0 && deg >= log2n,
                "n={n}: degree {deg}"
            );
        }
    }

    #[test]
    fn routing_is_logarithmic() {
        let n = 4096;
        let stats = evaluate_routing(&chord(n), 500, 1000, 3, None);
        assert_eq!(stats.success_rate(), 1.0);
        // Greedy with bidirectional power-of-two fingers ≈ binary search:
        // ≤ log2 n = 12 hops worst case, mean a small constant.
        assert!(stats.max_hops <= 13, "max {}", stats.max_hops);
        assert!(
            (1.5..9.0).contains(&stats.mean_hops),
            "mean {}",
            stats.mean_hops
        );
    }

    #[test]
    fn chord_beats_plain_ring() {
        let n = 1024;
        let ring = evaluate_routing(&crate::ring_lattice::cycle(n), 200, 10_000, 1, None);
        let ch = evaluate_routing(&chord(n), 200, 10_000, 1, None);
        assert!(ch.mean_hops * 10.0 < ring.mean_hops);
    }
}
