//! Property test: the sorted ring is *closed* under fault-free execution.
//!
//! Theorem 4.3's closure half: once the network forms the sorted ring,
//! every subsequent regular/receive action preserves it — linearization
//! has nothing left to move, probing never crosses a gap, and the only
//! state that keeps evolving is the long-range token's random walk. The
//! fault engine (`swn_sim::faults`) leans on this: its recovery watchdog
//! treats "sorted ring holds" as an absorbing predicate between injected
//! faults, which is only sound if no fault-free round can break it.
//!
//! Randomized here over ring sizes, seeds and run lengths:
//!
//! 1. `is_sorted_ring_view` holds after **every** round, not just at the
//!    end — a transient wobble (a round that breaks and then repairs the
//!    ring) would invalidate the watchdog's `links_changed`-gated
//!    re-checks even if the final state looks fine.
//! 2. The move-and-forget rule is the *only* way a long-range link is
//!    forgotten: φ(α) = 0 for α < 3, so every forget event recorded in
//!    the trace happened at age ≥ 3 (`forget_age_sum ≥ 3·lrl_forgets`
//!    per round). A forget outside that rule (e.g. a handler resetting
//!    `lrl` on a spurious code path) shows up as an under-aged event.

use proptest::prelude::*;
use swn_core::config::ProtocolConfig;
use swn_core::invariants::is_sorted_ring_view;
use swn_sim::churn::stable_network;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn stabilized_rings_stay_sorted_and_only_forget_by_the_rule(
        n in 4usize..40,
        seed in 0u64..1_000_000,
        rounds in 20u64..120,
    ) {
        let mut net = stable_network(n, ProtocolConfig::default(), seed, 0);
        prop_assert!(
            is_sorted_ring_view(&net.view()),
            "seed ring must start sorted (n={n}, seed={seed})"
        );
        let start = net.trace().len();
        for k in 0..rounds {
            net.step();
            prop_assert!(
                is_sorted_ring_view(&net.view()),
                "sorted ring broke at round {k} of {rounds} (n={n}, seed={seed})"
            );
        }
        // Every forget in the run obeyed the move-and-forget rule: the
        // forget probability is zero below age 3, so per round the age
        // sum is at least 3 per event. Checked per round (not in
        // aggregate) so one under-aged forget cannot hide behind an old
        // link forgotten the same round.
        for (k, r) in net.trace().rounds()[start..].iter().enumerate() {
            if r.lrl_forgets > 0 {
                prop_assert!(
                    r.forget_age_sum >= 3 * r.lrl_forgets,
                    "round {k}: {} forgets with age sum {} — some link was \
                     forgotten below age 3, outside the move-and-forget rule",
                    r.lrl_forgets,
                    r.forget_age_sum
                );
            } else {
                prop_assert_eq!(
                    r.forget_age_sum, 0,
                    "round {}: forget ages recorded without forget events", k
                );
            }
            // Fault-free runs must never count fault drops.
            prop_assert_eq!(r.dropped_fault, 0);
            prop_assert_eq!(r.duplicated_fault, 0);
        }
    }
}
