//! Link-length distributions and the harmonic-law fit.
//!
//! Fact 4.21: the stabilized network is a small world because each node's
//! long-range link length follows the k-harmonic distribution (k = 1
//! here): `P(length = d) ∝ 1/d` over `d ∈ {1, …, ⌊n/2⌋}` ring positions.
//! These helpers extract empirical length samples from snapshots and
//! quantify how close they are to the harmonic law — by the
//! Kolmogorov–Smirnov distance to the exact harmonic CDF and by the
//! log–log slope of the binned density (which must be ≈ −1).

use crate::paths::ring_distance;
use swn_core::views::{NetView, Snapshot};

/// Ring-rank lengths of all long-range links in a borrowed view. Tokens
/// sitting at their origin (`lrl == id`, length 0) are excluded — they
/// are "no link yet" states, not length-0 links; `lrl`s pointing at
/// departed ids are likewise skipped. The view is in ascending id order,
/// so an index *is* a ring rank and no rank table is needed.
pub fn lrl_lengths_view(v: &NetView<'_>) -> Vec<usize> {
    let n = v.len();
    let mut lengths = Vec::new();
    for (rank, node) in v.nodes().iter().enumerate() {
        if node.lrl() == node.id() {
            continue;
        }
        if let Some(trank) = v.index_of(node.lrl()) {
            let d = ring_distance(rank, trank, n);
            if d > 0 {
                lengths.push(d);
            }
        }
    }
    lengths
}

/// Snapshot spelling of [`lrl_lengths_view`].
pub fn lrl_lengths(s: &Snapshot) -> Vec<usize> {
    lrl_lengths_view(&s.as_view())
}

/// The harmonic CDF over lengths `1..=max_d`: `F(d) = H_d / H_max`.
/// Returned as `cdf[d-1] = F(d)`.
pub fn harmonic_cdf(max_d: usize) -> Vec<f64> {
    assert!(max_d >= 1, "need at least one length");
    let mut cdf = Vec::with_capacity(max_d);
    let mut h = 0.0f64;
    for d in 1..=max_d {
        h += 1.0 / d as f64;
        cdf.push(h);
    }
    let total = *cdf.last().expect("max_d >= 1");
    for v in &mut cdf {
        *v /= total;
    }
    cdf
}

/// The *log-corrected* harmonic CDF: weights `1/(d·(1+ln d)^(1+ε))`.
/// This is the exact stationary law of the move-and-forget token's
/// displacement (Chaintreau et al. [4]): the renewal age distribution
/// `π(α) ∝ 1/(α ln^(1+ε) α)` pushed through the diffusive walk yields
/// `P(D = d) ∝ 1/(d ln^(1+ε) d)` — harmonic up to the slowly varying
/// factor that vanishes as d → ∞.
pub fn log_corrected_harmonic_cdf(max_d: usize, epsilon: f64) -> Vec<f64> {
    assert!(max_d >= 1, "need at least one length");
    let mut cdf = Vec::with_capacity(max_d);
    let mut h = 0.0f64;
    for d in 1..=max_d {
        let df = d as f64;
        h += 1.0 / (df * (1.0 + df.ln()).powf(1.0 + epsilon));
        cdf.push(h);
    }
    let total = *cdf.last().expect("max_d >= 1");
    for v in &mut cdf {
        *v /= total;
    }
    cdf
}

/// Kolmogorov–Smirnov distance between the empirical distribution of
/// `lengths` and an arbitrary reference CDF over `1..=max_d` (where
/// `max_d = cdf.len()`). Returns 1.0 for an empty sample.
///
/// # Contract
/// Every length must lie in `1..=max_d`: the measured quantity is a ring
/// distance, which is bounded by `⌊n/2⌋`, so an out-of-range value means
/// the caller computed `max_d` against the wrong `n`. Debug builds panic
/// on a violation; release builds clamp into the end bins (a 0 becomes 1,
/// an overflow becomes `max_d`) so a production sweep degrades instead of
/// aborting — but the clamp can mask a broken `max_d`, which is exactly
/// why the debug assertion exists.
pub fn ks_to_cdf(lengths: &[usize], cdf: &[f64]) -> f64 {
    if lengths.is_empty() {
        return 1.0;
    }
    let max_d = cdf.len();
    let mut counts = vec![0u64; max_d];
    for &d in lengths {
        debug_assert!(
            (1..=max_d).contains(&d),
            "length {d} outside 1..={max_d}: max_d was computed for a different n"
        );
        counts[d.clamp(1, max_d) - 1] += 1;
    }
    let n = lengths.len() as f64;
    let mut acc = 0u64;
    let mut ks = 0.0f64;
    for (i, &c) in counts.iter().enumerate() {
        acc += c;
        let emp = acc as f64 / n;
        ks = ks.max((emp - cdf[i]).abs());
    }
    ks
}

/// Kolmogorov–Smirnov distance to the pure harmonic CDF.
pub fn ks_to_harmonic(lengths: &[usize], max_d: usize) -> f64 {
    ks_to_cdf(lengths, &harmonic_cdf(max_d))
}

/// Least-squares slope of `log(density)` vs `log(length)` over
/// logarithmically spaced bins. The harmonic law has slope −1; the
/// uniform law slope 0; an exponentially local distribution dives far
/// below −1. Returns `None` when fewer than two non-empty bins exist.
pub fn log_log_slope(lengths: &[usize], max_d: usize) -> Option<f64> {
    if lengths.is_empty() || max_d < 4 {
        return None;
    }
    // Log-spaced bin edges 1, 2, 4, 8, ... max_d.
    let mut edges = vec![1usize];
    let mut e = 2usize;
    while e < max_d {
        edges.push(e);
        e *= 2;
    }
    edges.push(max_d + 1);
    let mut pts = Vec::new();
    for w in edges.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let count = lengths.iter().filter(|&&d| d >= lo && d < hi).count();
        if count == 0 {
            continue;
        }
        let width = (hi - lo) as f64;
        let density = count as f64 / (lengths.len() as f64 * width);
        let mid = (lo as f64 * (hi as f64 - 1.0).max(lo as f64)).sqrt();
        pts.push((mid.ln(), density.ln()));
    }
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

/// Draws one harmonic sample in `1..=max_d` by CDF inversion (used by the
/// static Kleinberg baseline and by tests).
pub fn sample_harmonic<R: rand::Rng + ?Sized>(max_d: usize, rng: &mut R) -> usize {
    use rand::RngExt as _;
    let cdf = harmonic_cdf(max_d);
    let u: f64 = rng.random();
    match cdf.binary_search_by(|p| p.partial_cmp(&u).expect("no NaN in CDF")) {
        Ok(i) | Err(i) => (i + 1).min(max_d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn harmonic_cdf_shape() {
        let cdf = harmonic_cdf(4);
        // H = 1 + 1/2 + 1/3 + 1/4 = 25/12.
        let h = 25.0 / 12.0;
        assert!((cdf[0] - 1.0 / h).abs() < 1e-12);
        assert!((cdf[3] - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn ks_zero_for_perfect_harmonic_sample() {
        // Build a sample exactly proportional to 1/d (scaled by d!-ish lcm).
        // For max_d = 4 use counts proportional to 12/d: 12, 6, 4, 3.
        let mut lengths = Vec::new();
        for (d, c) in [(1usize, 12usize), (2, 6), (3, 4), (4, 3)] {
            lengths.extend(std::iter::repeat_n(d, c));
        }
        assert!(ks_to_harmonic(&lengths, 4) < 1e-12);
    }

    #[test]
    fn ks_large_for_uniform_sample() {
        let lengths: Vec<usize> = (1..=100).collect();
        let ks = ks_to_harmonic(&lengths, 100);
        assert!(ks > 0.3, "uniform should be far from harmonic: {ks}");
    }

    #[test]
    fn ks_of_empty_sample_is_one() {
        assert_eq!(ks_to_harmonic(&[], 10), 1.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside 1..=10")]
    fn ks_rejects_out_of_range_lengths_in_debug() {
        let _ = ks_to_harmonic(&[1, 5, 11], 10);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside 1..=10")]
    fn ks_rejects_zero_length_in_debug() {
        let _ = ks_to_harmonic(&[0], 10);
    }

    #[test]
    fn lrl_lengths_view_matches_snapshot_variant() {
        use swn_core::config::ProtocolConfig;
        use swn_core::id::{evenly_spaced_ids, Extended};
        use swn_core::node::Node;
        let ids = evenly_spaced_ids(10);
        let cfg = ProtocolConfig::default();
        let mut nodes = swn_core::invariants::make_sorted_ring(&ids, cfg);
        nodes[1] = Node::with_state(
            ids[1],
            Extended::Fin(ids[0]),
            Extended::Fin(ids[2]),
            ids[8],
            None,
            cfg,
        );
        nodes[4] = Node::with_state(
            ids[4],
            Extended::Fin(ids[3]),
            Extended::Fin(ids[5]),
            ids[5],
            None,
            cfg,
        );
        let s = Snapshot::from_nodes(nodes);
        assert_eq!(lrl_lengths_view(&s.as_view()), lrl_lengths(&s));
        assert!(!lrl_lengths(&s).is_empty());
    }

    #[test]
    fn log_corrected_cdf_is_heavier_at_small_d_than_harmonic() {
        let max_d = 256;
        let plain = harmonic_cdf(max_d);
        let corr = log_corrected_harmonic_cdf(max_d, 0.1);
        // The (1+ln d)^{1+ε} denominator suppresses the tail, so the
        // corrected CDF dominates the plain one everywhere.
        for d in 1..max_d {
            assert!(
                corr[d - 1] >= plain[d - 1] - 1e-12,
                "corrected CDF below harmonic at d={d}"
            );
        }
        assert!((corr[max_d - 1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn corrected_sample_fits_corrected_law_better() {
        // Draw from the corrected law by inversion and check both KS
        // statistics rank as expected.
        let max_d = 512;
        let cdf = log_corrected_harmonic_cdf(max_d, 0.1);
        let mut rng = StdRng::seed_from_u64(5);
        use rand::RngExt as _;
        let lengths: Vec<usize> = (0..30_000)
            .map(|_| {
                let u: f64 = rng.random();
                match cdf.binary_search_by(|p| p.partial_cmp(&u).expect("no NaN")) {
                    Ok(i) | Err(i) => (i + 1).min(max_d),
                }
            })
            .collect();
        let ks_corr = ks_to_cdf(&lengths, &cdf);
        let ks_plain = ks_to_harmonic(&lengths, max_d);
        assert!(ks_corr < 0.02, "self-KS {ks_corr}");
        assert!(ks_corr < ks_plain, "{ks_corr} vs {ks_plain}");
    }

    #[test]
    fn sampled_harmonic_passes_its_own_ks() {
        let mut rng = StdRng::seed_from_u64(1);
        let lengths: Vec<usize> = (0..20_000)
            .map(|_| sample_harmonic(512, &mut rng))
            .collect();
        let ks = ks_to_harmonic(&lengths, 512);
        assert!(ks < 0.02, "self-KS too large: {ks}");
    }

    #[test]
    fn log_log_slope_of_harmonic_is_minus_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let lengths: Vec<usize> = (0..50_000)
            .map(|_| sample_harmonic(1024, &mut rng))
            .collect();
        let slope = log_log_slope(&lengths, 1024).expect("enough bins");
        assert!(
            (-1.25..=-0.8).contains(&slope),
            "harmonic slope {slope}, expected ≈ -1"
        );
    }

    #[test]
    fn log_log_slope_of_uniform_is_near_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        use rand::RngExt as _;
        let lengths: Vec<usize> = (0..50_000).map(|_| rng.random_range(1..=1024)).collect();
        let slope = log_log_slope(&lengths, 1024).expect("enough bins");
        assert!(slope.abs() < 0.2, "uniform slope {slope}, expected ≈ 0");
    }

    #[test]
    fn lrl_lengths_skips_origin_tokens() {
        use swn_core::config::ProtocolConfig;
        use swn_core::id::evenly_spaced_ids;
        use swn_core::invariants::make_sorted_ring;
        let ids = evenly_spaced_ids(8);
        let nodes = make_sorted_ring(&ids, ProtocolConfig::default());
        let s = Snapshot::from_nodes(nodes);
        // All tokens at origin: no lengths.
        assert!(lrl_lengths(&s).is_empty());
    }

    #[test]
    fn lrl_lengths_measures_ring_rank_distance() {
        use swn_core::config::ProtocolConfig;
        use swn_core::id::{evenly_spaced_ids, Extended};
        use swn_core::node::Node;
        let ids = evenly_spaced_ids(8);
        let cfg = ProtocolConfig::default();
        let mut nodes = swn_core::invariants::make_sorted_ring(&ids, cfg);
        // Node rank 0's lrl points to rank 7: ring distance 1 (wraps).
        nodes[0] = Node::with_state(
            ids[0],
            Extended::NegInf,
            Extended::Fin(ids[1]),
            ids[7],
            Some(ids[7]),
            cfg,
        );
        // Node rank 2's lrl points to rank 6: ring distance 4.
        nodes[2] = Node::with_state(
            ids[2],
            Extended::Fin(ids[1]),
            Extended::Fin(ids[3]),
            ids[6],
            None,
            cfg,
        );
        let s = Snapshot::from_nodes(nodes);
        let mut lengths = lrl_lengths(&s);
        lengths.sort_unstable();
        assert_eq!(lengths, vec![1, 4]);
    }
}
