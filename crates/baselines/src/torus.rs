//! k-dimensional tori: the paper's "future work" direction.
//!
//! The IPPS 2012 paper self-stabilizes the 1-D case and names
//! multidimensional small worlds as the direct extension. The two
//! ingredients it would build on are already dimension-generic in
//! Chaintreau et al. [4], and both are implemented here:
//!
//! * the **static k-harmonic construction** on the torus `Z_m^k`
//!   (`P(link u→v) ∝ 1/dist(u,v)^k`, Kleinberg's exponent), and
//! * the **k-dimensional move-and-forget process** (each token alters
//!   every coordinate by ±1 per step; the forget probability φ(α) is the
//!   same for every k — the property the paper highlights in
//!   Section III.D).
//!
//! Together with [`greedy_route`](Torus::greedy_route) they let the
//! extension experiment (X1) check that the process's navigability is
//! dimension-independent, exactly what a future k-D self-stabilization
//! would converge to.

use rand::rngs::StdRng;
use rand::{Rng, RngExt as _, SeedableRng};
use swn_core::forget::phi;
use swn_topology::Graph;

/// A k-dimensional torus `Z_m^k` with L1 (wrap-around) metric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Torus {
    m: usize,
    k: usize,
    n: usize,
}

impl Torus {
    /// A torus with side `m` and dimension `k` (so `m^k` nodes).
    ///
    /// # Panics
    /// Panics if `m < 3`, `k == 0`, or `m^k` overflows.
    pub fn new(m: usize, k: usize) -> Self {
        assert!(m >= 3, "side must be at least 3, got {m}");
        assert!(k >= 1, "dimension must be at least 1, got {k}");
        let n = m
            .checked_pow(u32::try_from(k).expect("torus dimension fits u32"))
            .expect("torus too large");
        Torus { m, k, n }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the torus has no nodes (never: `m ≥ 3`).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Side length.
    pub fn side(&self) -> usize {
        self.m
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.k
    }

    /// Linear index → coordinates.
    pub fn coords(&self, idx: usize) -> Vec<usize> {
        assert!(idx < self.n);
        let mut c = Vec::with_capacity(self.k);
        let mut rest = idx;
        for _ in 0..self.k {
            c.push(rest % self.m);
            rest /= self.m;
        }
        c
    }

    /// Coordinates → linear index.
    pub fn index(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.k);
        coords
            .iter()
            .rev()
            .fold(0, |acc, &c| acc * self.m + (c % self.m))
    }

    /// L1 torus distance between two linear indices.
    pub fn distance(&self, a: usize, b: usize) -> usize {
        let (ca, cb) = (self.coords(a), self.coords(b));
        ca.iter()
            .zip(&cb)
            .map(|(&x, &y)| {
                let d = x.abs_diff(y);
                d.min(self.m - d)
            })
            .sum()
    }

    /// The 2k lattice neighbours of a node.
    pub fn lattice_neighbors(&self, idx: usize) -> Vec<usize> {
        let c = self.coords(idx);
        let mut out = Vec::with_capacity(2 * self.k);
        for d in 0..self.k {
            for delta in [1, self.m - 1] {
                let mut cc = c.clone();
                cc[d] = (cc[d] + delta) % self.m;
                out.push(self.index(&cc));
            }
        }
        out
    }

    /// The bare lattice graph (each node ↔ its 2k neighbours).
    pub fn lattice_graph(&self) -> Graph {
        let mut g = Graph::new(self.n);
        for u in 0..self.n {
            for v in self.lattice_neighbors(u) {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Draws one endpoint at L1 distance following the k-harmonic law
    /// `P(dist = d) ∝ (#nodes at distance d) / d^k ≈ 1/d` and a uniform
    /// node at that distance (rejection-sampled).
    fn sample_harmonic_target<R: Rng + ?Sized>(&self, from: usize, rng: &mut R) -> usize {
        // P(v) ∝ 1/dist(u,v)^k. Sample by rejection against the maximal
        // weight 1: draw a uniform node ≠ from, accept with probability
        // 1/dist^k scaled by the minimal distance 1.
        loop {
            let cand = rng.random_range(0..self.n);
            if cand == from {
                continue;
            }
            let d = self.distance(from, cand) as f64;
            if rng.random::<f64>()
                < 1.0 / d.powi(i32::try_from(self.k).expect("torus dimension fits i32"))
            {
                return cand;
            }
        }
    }

    /// Static Kleinberg construction: the lattice plus one k-harmonic
    /// long-range link per node.
    pub fn kleinberg_graph(&self, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = self.lattice_graph();
        for u in 0..self.n {
            let t = self.sample_harmonic_target(u, &mut rng);
            g.add_edge(u, t);
        }
        g
    }

    /// Greedy routing under the L1 torus metric over an arbitrary graph
    /// whose indices live on this torus. Returns hops, or `None` if stuck
    /// or out of budget.
    pub fn greedy_route(&self, g: &Graph, src: usize, dst: usize, max_hops: u32) -> Option<u32> {
        let mut cur = src;
        let mut hops = 0u32;
        while cur != dst {
            if hops >= max_hops {
                return None;
            }
            let here = self.distance(cur, dst);
            let next = g
                .neighbors(cur)
                .iter()
                .map(|&v| v as usize)
                .filter(|&v| self.distance(v, dst) < here)
                .min_by_key(|&v| (self.distance(v, dst), v))?;
            cur = next;
            hops += 1;
        }
        Some(hops)
    }

    /// Mean greedy hops over `pairs` random pairs (panics if any route
    /// fails — on lattice-backed graphs greedy cannot get stuck).
    ///
    /// # Panics
    /// Panics if `pairs == 0` (a mean over nothing would be NaN).
    pub fn mean_greedy_hops(&self, g: &Graph, pairs: usize, seed: u64) -> f64 {
        assert!(pairs > 0, "need at least one routing pair");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut total = 0u64;
        for _ in 0..pairs {
            let s = rng.random_range(0..self.n);
            let mut t = rng.random_range(0..self.n);
            while t == s {
                t = rng.random_range(0..self.n);
            }
            let hops = self
                .greedy_route(
                    g,
                    s,
                    t,
                    u32::try_from(8 * self.n).expect("hop budget fits u32"),
                )
                .expect("lattice-backed greedy cannot get stuck");
            total += hops as u64;
        }
        total as f64 / pairs as f64
    }
}

/// The k-dimensional move-and-forget process on a torus (Chaintreau et
/// al. [4], Section III.D of the paper): every node owns a token walking
/// the torus; each step alters **every** coordinate by ±1; forgetting
/// follows the dimension-independent φ(α).
#[derive(Debug)]
pub struct TorusMoveForget {
    torus: Torus,
    epsilon: f64,
    pos: Vec<usize>,
    age: Vec<u64>,
    rng: StdRng,
    forgets: u64,
}

impl TorusMoveForget {
    /// All tokens at their origins.
    pub fn new(torus: Torus, epsilon: f64, seed: u64) -> Self {
        let n = torus.len();
        TorusMoveForget {
            torus,
            epsilon,
            pos: (0..n).collect(),
            age: vec![0; n],
            rng: StdRng::seed_from_u64(seed),
            forgets: 0,
        }
    }

    /// The underlying torus.
    pub fn torus(&self) -> &Torus {
        &self.torus
    }

    /// One synchronous round.
    pub fn step(&mut self) {
        let (m, k) = (self.torus.side(), self.torus.dim());
        for i in 0..self.pos.len() {
            self.age[i] += 1;
            let mut c = self.torus.coords(self.pos[i]);
            for coord in c.iter_mut().take(k) {
                *coord = if self.rng.random_bool(0.5) {
                    (*coord + 1) % m
                } else {
                    (*coord + m - 1) % m
                };
            }
            self.pos[i] = self.torus.index(&c);
            let p = phi(self.age[i], self.epsilon);
            if p > 0.0 && self.rng.random::<f64>() < p {
                self.pos[i] = i;
                self.age[i] = 0;
                self.forgets += 1;
            }
        }
    }

    /// Runs `rounds` rounds.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Forget events so far.
    pub fn forgets(&self) -> u64 {
        self.forgets
    }

    /// Token displacement (L1) per node; at-origin tokens excluded.
    pub fn displacements(&self) -> Vec<usize> {
        self.pos
            .iter()
            .enumerate()
            .filter_map(|(i, &p)| {
                let d = self.torus.distance(i, p);
                (d > 0).then_some(d)
            })
            .collect()
    }

    /// The lattice plus one long-range link per node at the token's
    /// current position.
    pub fn graph(&self) -> Graph {
        let mut g = self.torus.lattice_graph();
        for (i, &t) in self.pos.iter().enumerate() {
            g.add_edge(i, t);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swn_topology::connectivity::is_weakly_connected;

    #[test]
    fn coords_round_trip() {
        let t = Torus::new(5, 3);
        assert_eq!(t.len(), 125);
        for idx in [0usize, 1, 42, 124] {
            assert_eq!(t.index(&t.coords(idx)), idx);
        }
        assert_eq!(t.coords(0), vec![0, 0, 0]);
        assert_eq!(t.coords(124), vec![4, 4, 4]);
    }

    #[test]
    fn distance_wraps_in_every_dimension() {
        let t = Torus::new(10, 2);
        let a = t.index(&[0, 0]);
        let b = t.index(&[9, 9]);
        assert_eq!(t.distance(a, b), 2, "diagonal wrap");
        let c = t.index(&[5, 0]);
        assert_eq!(t.distance(a, c), 5);
        assert_eq!(t.distance(a, a), 0);
    }

    #[test]
    fn lattice_has_2k_neighbors_and_is_connected() {
        let t = Torus::new(6, 2);
        let g = t.lattice_graph();
        for u in 0..t.len() {
            assert_eq!(g.out_degree(u), 4, "node {u}");
        }
        assert!(is_weakly_connected(&g));
    }

    #[test]
    fn one_dimensional_torus_matches_ring() {
        let t = Torus::new(16, 1);
        assert_eq!(t.distance(0, 15), 1);
        assert_eq!(t.distance(0, 8), 8);
        let g = t.lattice_graph();
        for u in 0..16 {
            assert_eq!(g.out_degree(u), 2);
        }
    }

    #[test]
    fn kleinberg_2d_routes_much_better_than_lattice() {
        // One shortcut per node needs some scale before the polylog
        // separation dominates the constants: at 40×40 the lattice mean is
        // 20 hops and the harmonic shortcuts cut it well below that.
        let t = Torus::new(40, 2); // 1600 nodes
        let lattice_hops = t.mean_greedy_hops(&t.lattice_graph(), 150, 1);
        let kle_hops = t.mean_greedy_hops(&t.kleinberg_graph(7), 150, 1);
        assert!(
            kle_hops * 1.5 < lattice_hops,
            "kleinberg {kle_hops} vs lattice {lattice_hops}"
        );
    }

    #[test]
    fn torus_move_forget_spreads_and_navigates() {
        let t = Torus::new(20, 2); // 400 nodes
        let mut mf = TorusMoveForget::new(t, 0.1, 3);
        mf.run(3000);
        assert!(mf.forgets() > 0);
        let disp = mf.displacements();
        assert!(disp.len() > 150, "tokens failed to spread: {}", disp.len());
        let torus = mf.torus().clone();
        let lattice_hops = torus.mean_greedy_hops(&torus.lattice_graph(), 120, 2);
        let mf_hops = torus.mean_greedy_hops(&mf.graph(), 120, 2);
        assert!(
            mf_hops < lattice_hops,
            "move-forget {mf_hops} vs lattice {lattice_hops}"
        );
    }

    #[test]
    fn greedy_gets_stuck_only_without_lattice() {
        // A graph with a single directed chord and no lattice edges:
        // greedy must report stuck (None) rather than loop.
        let t = Torus::new(5, 2);
        let mut g = Graph::new(t.len());
        g.add_edge(0, 7);
        assert_eq!(t.greedy_route(&g, 0, 24, 100), None);
    }

    #[test]
    #[should_panic(expected = "side must be")]
    fn tiny_torus_rejected() {
        let _ = Torus::new(2, 2);
    }
}
