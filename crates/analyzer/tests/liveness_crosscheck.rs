//! Independent cross-checks of the liveness machinery.
//!
//! Two oracles, both deliberately dumber than the production code:
//!
//! * **Brute-force lasso enumeration** — the fair-cycle detector of
//!   `swn_analyzer::liveness` works per SCC (an SCC supports a fair
//!   lasso iff every obligation label appears on an internal edge). Here
//!   the same question is answered by enumerating simple cycles directly
//!   with a depth-first path search and testing each cycle against the
//!   weak-fairness definition, then asserting the two answers agree on
//!   graphs small enough to enumerate — the bounce-lin livelock fixture
//!   (where the answer is *yes*) and real-protocol pairs (where it is
//!   *no*, and the brute force additionally certifies the stronger fact
//!   that the budgeted graph has no cycle at all).
//!
//! * **Random storage permutations** — `canonical_key` claims two
//!   configurations differing only in node-vector storage order get the
//!   same key. The property test drives a seeded random walk to an
//!   arbitrary reachable state, scrambles the storage order with a
//!   random permutation (nodes, channels and budgets move together),
//!   and asserts key equality with and without budgets.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use swn_analyzer::families::livelock_demo_state;
use swn_analyzer::{
    canonical_key, check_convergence, BounceLinStepper, FairGraph, Family, Policy, RealStepper,
    State, Stepper,
};

/// Three-color depth-first search for cycle existence — linear, and a
/// different algorithm from the detector's Tarjan SCCs. Gates the
/// exponential cycle enumeration: acyclic graphs skip it entirely.
fn has_cycle(g: &FairGraph) -> bool {
    let n = g.len();
    // 0 = white, 1 = on the current path, 2 = finished.
    let mut color = vec![0u8; n];
    #[allow(clippy::cast_possible_truncation)] // vertex ids are u32 by construction
    for root in 0..n as u32 {
        if color[root as usize] != 0 {
            continue;
        }
        let mut stack: Vec<(u32, usize)> = vec![(root, 0)];
        color[root as usize] = 1;
        while let Some(&mut (v, ref mut k)) = stack.last_mut() {
            if let Some(&(_, t)) = g.edges[v as usize].get(*k) {
                *k += 1;
                match color[t as usize] {
                    0 => {
                        color[t as usize] = 1;
                        stack.push((t, 0));
                    }
                    1 => return true,
                    _ => {}
                }
            } else {
                color[v as usize] = 2;
                stack.pop();
            }
        }
    }
    false
}

/// All simple cycles of `g` up to `max_len` edges, as vertex sequences
/// `v0 -> … -> v0` (first vertex repeated at the end is implicit).
fn simple_cycles(g: &FairGraph, max_len: usize) -> Vec<Vec<u32>> {
    let mut cycles = Vec::new();
    #[allow(clippy::cast_possible_truncation)] // vertex ids are u32 by construction
    let n = g.len() as u32;
    for start in 0..n {
        // Paths restricted to vertices >= start so each cycle is found
        // once, rooted at its smallest vertex.
        let mut path = vec![start];
        let mut stack = vec![g.edges[start as usize]
            .iter()
            .map(|&(_, t)| t)
            .collect::<Vec<_>>()];
        while let Some(frontier) = stack.last_mut() {
            let Some(next) = frontier.pop() else {
                path.pop();
                stack.pop();
                continue;
            };
            if next == start {
                cycles.push(path.clone());
                continue;
            }
            if next < start || path.contains(&next) || path.len() >= max_len {
                continue;
            }
            path.push(next);
            stack.push(g.edges[next as usize].iter().map(|&(_, t)| t).collect());
        }
    }
    cycles
}

/// The weak-fairness definition applied literally to one cycle: the
/// labels enabled in *every* cycle state (its obligations) must all be
/// taken by the cycle, and some cycle state must miss the goal.
fn cycle_is_fair_nongoal(g: &FairGraph, cycle: &[u32]) -> bool {
    let label_set = |v: u32| -> Vec<u64> {
        let mut l: Vec<u64> = g.edges[v as usize].iter().map(|&(lab, _)| lab).collect();
        l.sort_unstable();
        l
    };
    let mut obligations = label_set(cycle[0]);
    for &v in &cycle[1..] {
        let here = label_set(v);
        obligations.retain(|l| here.binary_search(l).is_ok());
    }
    let mut taken = Vec::new();
    for (k, &v) in cycle.iter().enumerate() {
        let w = cycle[(k + 1) % cycle.len()];
        for &(lab, t) in &g.edges[v as usize] {
            if t == w {
                taken.push(lab);
            }
        }
    }
    obligations.iter().all(|l| taken.contains(l)) && cycle.iter().any(|&v| !g.goal[v as usize])
}

/// Runs both the production detector and the brute force on one scope
/// and asserts they agree.
fn cross_check(initial: &State, stepper: &dyn Stepper, policy: Policy) -> bool {
    let g = FairGraph::build(initial, stepper, policy, 200_000);
    assert!(!g.truncated, "cross-check scopes must be exhaustive");
    let report = check_convergence(&g, stepper);
    let brute = has_cycle(&g)
        && simple_cycles(&g, g.len().min(32))
            .iter()
            .any(|c| cycle_is_fair_nongoal(&g, c));
    assert_eq!(
        report.counterexample.is_some(),
        brute,
        "SCC detector and brute-force lasso enumeration disagree \
         ({} states, {} fair SCCs)",
        report.states,
        report.fair_sccs
    );
    brute
}

#[test]
fn brute_force_confirms_the_bounce_livelock() {
    assert!(
        cross_check(&livelock_demo_state(), &BounceLinStepper, Policy::Zeros),
        "the bounce-lin fixture must livelock under both oracles"
    );
}

#[test]
fn brute_force_confirms_the_real_protocol_on_the_fixture() {
    // Same fixture, correct stepper: the preloaded Lin is absorbed and
    // both oracles must report no fair non-goal cycle.
    assert!(!cross_check(
        &livelock_demo_state(),
        &RealStepper,
        Policy::Zeros
    ));
}

#[test]
fn brute_force_finds_no_cycle_in_budgeted_pair_graphs() {
    // Real-protocol pair scopes: the brute force proves the stronger
    // fact that the budgeted graph is acyclic (every cycle would have to
    // be delivery-only, and deliveries strictly drain the channels once
    // budgets stop refilling them).
    for family in [Family::Line, Family::Clique] {
        for policy in [Policy::Zeros, Policy::Ones] {
            let initial = family.initial_state(2, 1, 1);
            assert!(
                !cross_check(&initial, &RealStepper, policy),
                "{:?}/{:?} pair must be livelock-free",
                family.label(),
                policy.label()
            );
        }
    }
}

#[test]
#[ignore = "heavy in debug (n = 3 graphs up to 1.2M states); CI's analyzer-liveness job covers the same scope in release"]
fn brute_force_finds_no_cycle_in_n3_families() {
    for family in [Family::Line, Family::Star, Family::Clique] {
        for policy in [Policy::Zeros, Policy::Ones] {
            let initial = family.initial_state(3, 1, 1);
            let g = FairGraph::build(&initial, &RealStepper, policy, 2_000_000);
            assert!(!g.truncated);
            let report = check_convergence(&g, &RealStepper);
            assert!(
                !has_cycle(&g) && report.livelock_free(),
                "{}/{} n=3 must be acyclic and livelock-free",
                family.label(),
                policy.label()
            );
        }
    }
}

/// A random reachable state of the line-3 scope: `steps` seeded-random
/// transitions from the initial state.
fn random_walk(seed: u64, steps: usize) -> State {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = Family::Line.initial_state(3, 2, 1);
    for _ in 0..steps {
        let enabled = s.enabled();
        if enabled.is_empty() {
            break;
        }
        let t = &enabled[rng.random_range(0..enabled.len())];
        match s.apply(&RealStepper, Policy::Zeros, t) {
            Some(applied) => s = applied.next,
            None => break,
        }
    }
    s
}

/// `s` with its storage order scrambled by the permutation drawn from
/// `seed`: entry `i` moves to slot `perm[i]` in every parallel vector.
fn permuted(s: &State, seed: u64) -> State {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = s.nodes.len();
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        perm.swap(i, j);
    }
    let mut out = s.clone();
    for (i, &slot) in perm.iter().enumerate() {
        out.nodes[slot] = s.nodes[i].clone();
        out.channels[slot] = s.channels[i].clone();
        out.budgets[slot] = s.budgets[i];
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn canonical_keys_survive_random_storage_permutations(
        walk_seed in 0u64..1_000_000,
        steps in 0usize..24,
        perm_seed in 0u64..1_000_000,
    ) {
        let s = random_walk(walk_seed, steps);
        let p = permuted(&s, perm_seed);
        prop_assert_eq!(
            canonical_key(&s, true),
            canonical_key(&p, true),
            "budgeted canonical keys must not see storage order"
        );
        prop_assert_eq!(
            canonical_key(&s, false),
            canonical_key(&p, false),
            "budget-free canonical keys must not see storage order"
        );
    }
}
