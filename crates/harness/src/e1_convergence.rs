//! **E1 — Convergence from any weakly connected initial state**
//! (Theorems 4.3, 4.9, 4.18, 4.22).
//!
//! For every adversarial initial-state family and every size, run many
//! seeded trials to the sorted ring and report when each phase milestone
//! was reached, how many messages it took, and whether the phase
//! properties were monotone once established (the proof says they must
//! be). The headline claims reproduced: **every** trial stabilizes, and
//! **no** trial ever regresses a completed phase.

use crate::table::{f2, fmax, mean, Table};
use swn_core::config::ProtocolConfig;
use swn_core::id::random_ids;
use swn_sim::convergence::{run_to_ring, ConvergenceReport};
use swn_sim::init::{generate, InitialTopology};
use swn_sim::parallel::run_trials;

/// Parameters for E1.
#[derive(Clone, Debug)]
pub struct Params {
    /// Network sizes to sweep.
    pub sizes: Vec<usize>,
    /// Trials (seeds) per (family, size) cell.
    pub trials: usize,
    /// Initial-state families.
    pub families: Vec<InitialTopology>,
    /// Per-trial round budget.
    pub max_rounds: u64,
}

impl Params {
    /// Full-scale run.
    pub fn full() -> Self {
        Params {
            sizes: vec![16, 32, 64, 128, 256, 512],
            trials: 15,
            families: vec![
                InitialTopology::RandomSparse { extra: 3 },
                InitialTopology::Star,
                InitialTopology::Clique,
                InitialTopology::RandomChain,
                InitialTopology::TwoBlobs,
                InitialTopology::CorruptedRing { corruptions: 8 },
            ],
            max_rounds: 2_000_000,
        }
    }

    /// Reduced scale for benches and smoke tests.
    pub fn quick() -> Self {
        Params {
            sizes: vec![16, 32, 64],
            trials: 6,
            families: vec![
                InitialTopology::RandomSparse { extra: 3 },
                InitialTopology::Star,
                InitialTopology::RandomChain,
            ],
            max_rounds: 200_000,
        }
    }
}

/// One (family, size) cell's aggregated trials.
#[derive(Clone, Debug)]
pub struct Cell {
    /// The initial-state family.
    pub family: InitialTopology,
    /// Network size.
    pub n: usize,
    /// Per-trial convergence reports.
    pub reports: Vec<ConvergenceReport>,
}

impl Cell {
    /// All trials reached the sorted ring.
    pub fn all_stabilized(&self) -> bool {
        self.reports.iter().all(ConvergenceReport::stabilized)
    }

    /// No trial regressed an established phase.
    pub fn all_monotone(&self) -> bool {
        self.reports.iter().all(|r| r.monotone)
    }
}

/// Runs the sweep and returns the raw cells (for tests/benches) — the
/// trials inside each cell run in parallel.
pub fn run_cells(p: &Params) -> Vec<Cell> {
    let mut cells = Vec::new();
    for &family in &p.families {
        for &n in &p.sizes {
            let reports = run_trials(p.trials, |t| {
                let seed = (t as u64) * 7919 + n as u64;
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x1d5);
                let ids = random_ids(n, &mut rng);
                let mut net =
                    generate(family, &ids, ProtocolConfig::default(), seed).into_network(seed);
                run_to_ring(&mut net, p.max_rounds)
            });
            cells.push(Cell { family, n, reports });
        }
    }
    cells
}

/// Runs E1 and renders the result table.
pub fn run(p: &Params) -> Table {
    let cells = run_cells(p);
    let mut t = Table::new(
        "E1  Convergence from adversarial initial states",
        "every weakly connected start stabilizes to the sorted ring; phases never regress (Thms 4.3/4.9/4.18)",
        &[
            "family",
            "n",
            "trials",
            "ok",
            "monotone",
            "rounds p50",
            "rounds max",
            "lcc@",
            "list@",
            "msgs/node",
        ],
    );
    for c in &cells {
        let rounds: Vec<f64> = c
            .reports
            .iter()
            .filter_map(|r| r.rounds_to_ring.map(|x| x as f64))
            .collect();
        let mut sorted = rounds.clone();
        sorted.sort_by(f64::total_cmp);
        let p50 = sorted.get(sorted.len() / 2).copied().unwrap_or(f64::NAN);
        let lcc: Vec<f64> = c
            .reports
            .iter()
            .filter_map(|r| r.rounds_to_lcc.map(|x| x as f64))
            .collect();
        let list: Vec<f64> = c
            .reports
            .iter()
            .filter_map(|r| r.rounds_to_list.map(|x| x as f64))
            .collect();
        let msgs: Vec<f64> = c
            .reports
            .iter()
            .map(|r| r.messages_to_ring as f64 / c.n as f64)
            .collect();
        t.push_row(vec![
            c.family.label().to_string(),
            c.n.to_string(),
            c.reports.len().to_string(),
            format!(
                "{}/{}",
                c.reports.iter().filter(|r| r.stabilized()).count(),
                c.reports.len()
            ),
            if c.all_monotone() { "yes" } else { "NO" }.to_string(),
            f2(p50),
            f2(fmax(&rounds)),
            f2(mean(&lcc)),
            f2(mean(&list)),
            f2(mean(&msgs)),
        ]);
    }
    t
}

use rand::SeedableRng as _;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_fully_stabilizes_and_is_monotone() {
        let cells = run_cells(&Params::quick());
        for c in &cells {
            assert!(
                c.all_stabilized(),
                "{} n={} had unstabilized trials",
                c.family.label(),
                c.n
            );
            assert!(
                c.all_monotone(),
                "{} n={} regressed a phase",
                c.family.label(),
                c.n
            );
        }
    }

    #[test]
    fn table_has_one_row_per_cell() {
        let p = Params {
            sizes: vec![16, 32],
            trials: 3,
            families: vec![InitialTopology::Star, InitialTopology::RandomChain],
            max_rounds: 100_000,
        };
        let t = run(&p);
        assert_eq!(t.rows.len(), 4);
        assert!(t.render().contains("E1"));
    }

    #[test]
    fn phase_milestones_are_ordered() {
        let p = Params {
            sizes: vec![24],
            trials: 4,
            families: vec![InitialTopology::Clique],
            max_rounds: 100_000,
        };
        for c in run_cells(&p) {
            for r in &c.reports {
                assert!(r.rounds_to_lcc <= r.rounds_to_list);
                assert!(r.rounds_to_list <= r.rounds_to_ring);
            }
        }
    }
}
