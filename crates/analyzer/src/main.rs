//! `analyzer` — run the small-scope checkers from the shell.
//!
//! ```text
//! analyzer [--mode safety|liveness|closure|ranking]
//!          [--n N] [--family line|star|clique|all] [--budget K]
//!          [--policy zeros|ones|all] [--reduction none|sleep] [--symmetry]
//!          [--seed S] [--max-states M] [--channel-bound B]
//!          [--mutant drop-lin|self-echo|bounce-lin] [--demo-fault] [--json]
//! ```
//!
//! The default mode, `safety`, exhaustively checks every family at
//! n = 3 with one regular action per node under both randomness
//! policies (~1 minute, ~2.8M distinct states) and exits non-zero on
//! any violation or truncated search. The three liveness modes run the
//! fair-cycle machinery of `swn_analyzer::liveness` on the same scope:
//!
//! * `liveness` — livelock-freedom: no weakly-fair cycle avoids the
//!   sorted ring; also accounts terminal states (goal vs. budget-starved);
//! * `closure` — from the canonical sorted ring with a fresh budget,
//!   every reachable state is still the sorted ring;
//! * `ranking` — the potential-function certificate: non-increasing on
//!   every edge, goal at the minimum, no fair equal-rank cycle through a
//!   non-goal state.
//!
//! `--mutant` runs a deliberately broken stepper on its demo fixture and
//! expects the checker to catch it (exit 0 when caught): `drop-lin` and
//! `self-echo` are safety mutants, `bounce-lin` livelocks and is caught
//! by the fair-cycle detector with a minimized, replayable lasso.
//! `--demo-fault` is the historical alias for `--mutant drop-lin`.
//! `--json` emits one machine-readable JSON document on stdout instead
//! of the human tables (the verdicts, sizes, SCC stats and any
//! counterexample schedules).

#![forbid(unsafe_code)]

use swn_analyzer::families::{livelock_demo_state, ring_state};
use swn_analyzer::{
    check_closure, check_convergence, check_ranking, format_trace, minimize, BounceLinStepper,
    DropLinStepper, ExploreConfig, Explorer, FairGraph, Family, Lasso, Policy, RealStepper,
    SelfEchoStepper, Stepper, Transition,
};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Safety,
    Liveness,
    Closure,
    Ranking,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Safety => "safety",
            Mode::Liveness => "liveness",
            Mode::Closure => "closure",
            Mode::Ranking => "ranking",
        }
    }
}

struct Args {
    mode: Mode,
    n: usize,
    families: Vec<Family>,
    budget: u32,
    policies: Vec<Policy>,
    reduction: swn_analyzer::Reduction,
    symmetry: bool,
    seed: u64,
    max_states: usize,
    channel_bound: u32,
    mutant: Option<String>,
    json: bool,
}

/// One checker run in the `--json` document. Fields that a mode does
/// not produce are `None` and serialize as `null`.
#[derive(serde::Serialize)]
struct JsonRun {
    mode: &'static str,
    stepper: &'static str,
    family: Option<&'static str>,
    policy: &'static str,
    states: usize,
    edges: Option<usize>,
    truncated: bool,
    goal_states: Option<usize>,
    terminals: Option<usize>,
    terminal_nongoal: Option<usize>,
    scc_count: Option<usize>,
    max_scc: Option<usize>,
    fair_sccs: Option<usize>,
    ring_states: Option<usize>,
    stable_states: Option<usize>,
    monotone: Option<bool>,
    goal_at_minimum: Option<bool>,
    stutter_fair_sccs: Option<usize>,
    ok: bool,
    verdict: String,
    lasso: Option<JsonLasso>,
    escape: Option<Vec<String>>,
}

#[derive(serde::Serialize)]
struct JsonLasso {
    stem: Vec<String>,
    cycle: Vec<String>,
}

#[derive(serde::Serialize)]
struct JsonDoc {
    mode: &'static str,
    n: usize,
    budget: u32,
    seed: u64,
    channel_bound: u32,
    symmetry: bool,
    failed: bool,
    runs: Vec<JsonRun>,
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: analyzer [--mode safety|liveness|closure|ranking] [--n N] \
         [--family line|star|clique|all] [--budget K] [--policy zeros|ones|all] \
         [--reduction none|sleep] [--symmetry] [--seed S] [--max-states M] \
         [--channel-bound B] [--mutant drop-lin|self-echo|bounce-lin] \
         [--demo-fault] [--json]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        mode: Mode::Safety,
        n: 3,
        families: Family::ALL.to_vec(),
        budget: 1,
        policies: Policy::ALL.to_vec(),
        reduction: swn_analyzer::Reduction::SleepSets,
        symmetry: false,
        seed: 1,
        max_states: 2_000_000,
        channel_bound: 1,
        mutant: None,
        json: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i)
            .cloned()
            .unwrap_or_else(|| usage("flag needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--mode" => {
                args.mode = match value(&mut i).as_str() {
                    "safety" => Mode::Safety,
                    "liveness" => Mode::Liveness,
                    "closure" => Mode::Closure,
                    "ranking" => Mode::Ranking,
                    _ => usage("--mode expects safety|liveness|closure|ranking"),
                };
            }
            "--n" => {
                args.n = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("--n expects an integer"));
                if args.n < 2 || args.n > 5 {
                    usage("--n must be in 2..=5 (small-scope checker)");
                }
            }
            "--family" => {
                let v = value(&mut i);
                args.families = if v == "all" {
                    Family::ALL.to_vec()
                } else {
                    vec![Family::parse(&v)
                        .unwrap_or_else(|| usage("--family expects line|star|clique|all"))]
                };
            }
            "--budget" => {
                args.budget = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("--budget expects an integer"));
            }
            "--policy" => {
                let v = value(&mut i);
                args.policies = match v.as_str() {
                    "zeros" => vec![Policy::Zeros],
                    "ones" => vec![Policy::Ones],
                    "all" => Policy::ALL.to_vec(),
                    _ => usage("--policy expects zeros|ones|all"),
                };
            }
            "--reduction" => {
                let v = value(&mut i);
                args.reduction = match v.as_str() {
                    "none" => swn_analyzer::Reduction::None,
                    "sleep" => swn_analyzer::Reduction::SleepSets,
                    _ => usage("--reduction expects none|sleep"),
                };
            }
            "--symmetry" => args.symmetry = true,
            "--seed" => {
                args.seed = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("--seed expects an integer"));
            }
            "--max-states" => {
                args.max_states = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("--max-states expects an integer"));
            }
            "--channel-bound" => {
                args.channel_bound = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("--channel-bound expects an integer"));
                if args.channel_bound == 0 {
                    usage("--channel-bound must be at least 1");
                }
            }
            "--mutant" => {
                let v = value(&mut i);
                if !["drop-lin", "self-echo", "bounce-lin"].contains(&v.as_str()) {
                    usage("--mutant expects drop-lin|self-echo|bounce-lin");
                }
                args.mutant = Some(v);
            }
            "--demo-fault" => args.mutant = Some("drop-lin".to_owned()),
            "--json" => args.json = true,
            other => usage(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    args
}

fn fmt_schedule(ts: &[Transition]) -> Vec<String> {
    ts.iter().map(std::string::ToString::to_string).collect()
}

fn print_lasso(lasso: &Lasso) {
    println!(
        "  minimized lasso (stem {} + cycle {}):",
        lasso.stem.len(),
        lasso.cycle.len()
    );
    for t in &lasso.stem {
        println!("    stem:  {t}");
    }
    for t in &lasso.cycle {
        println!("    cycle: {t}");
    }
}

/// Runs a safety mutant (drop-lin / self-echo) on the two-node demo
/// fixture and prints the minimized counterexample; exits non-zero when
/// the monitors fail to catch it.
fn run_safety_mutant(args: &Args, stepper: &dyn Stepper) {
    let initial = swn_analyzer::families::demo_fault_state(args.budget.min(1));
    let cfg = ExploreConfig {
        policy: Policy::Zeros,
        reduction: args.reduction,
        max_states: args.max_states,
        ..ExploreConfig::default()
    };
    let report = Explorer::new(stepper, cfg).run(&initial);
    let Some(found) = report.violation else {
        eprintln!("mutant fixture unexpectedly clean — the monitors are broken");
        std::process::exit(1);
    };
    let min = minimize(&initial, stepper, Policy::Zeros, &found.trace);
    if args.json {
        let doc = JsonDoc {
            mode: "safety",
            n: 2,
            budget: args.budget.min(1),
            seed: args.seed,
            channel_bound: args.channel_bound,
            symmetry: false,
            failed: false,
            runs: vec![JsonRun {
                mode: "safety",
                stepper: stepper.label(),
                family: None,
                policy: Policy::Zeros.label(),
                states: report.distinct_states,
                edges: None,
                truncated: report.truncated,
                goal_states: None,
                terminals: None,
                terminal_nongoal: None,
                scc_count: None,
                max_scc: None,
                fair_sccs: None,
                ring_states: None,
                stable_states: None,
                monotone: None,
                goal_at_minimum: None,
                stutter_fair_sccs: None,
                ok: true,
                verdict: format!("caught: {}", found.violation),
                lasso: None,
                escape: Some(fmt_schedule(&min)),
            }],
        };
        println!("{}", serde_json::to_string(&doc).expect("serialize"));
        return;
    }
    println!(
        "mutant: injected fault '{}' caught after exploring {} states",
        stepper.label(),
        report.distinct_states
    );
    println!("raw trace: {} steps; minimizing...", found.trace.len());
    print!("{}", format_trace(&initial, stepper, Policy::Zeros, &min));
}

/// Runs the bounce-lin mutant through the fair-cycle detector on its
/// three-node livelock fixture; exits non-zero unless a validated lasso
/// counterexample is produced.
fn run_bounce_mutant(args: &Args) {
    let stepper = BounceLinStepper;
    let initial = livelock_demo_state();
    let g = FairGraph::build(&initial, &stepper, Policy::Zeros, args.max_states);
    let report = check_convergence(&g, &stepper);
    let Some(lasso) = &report.counterexample else {
        eprintln!("bounce-lin fixture has no fair non-goal cycle — the detector is broken");
        std::process::exit(1);
    };
    if args.json {
        let doc = JsonDoc {
            mode: "liveness",
            n: initial.nodes.len(),
            budget: 0,
            seed: args.seed,
            channel_bound: args.channel_bound,
            symmetry: true,
            failed: false,
            runs: vec![convergence_run(&stepper, None, Policy::Zeros, &report)],
        };
        println!("{}", serde_json::to_string(&doc).expect("serialize"));
        return;
    }
    println!(
        "mutant: '{}' livelock detected — {} states, {} fair SCC(s), largest SCC {}",
        stepper.label(),
        report.states,
        report.fair_sccs,
        report.max_scc
    );
    print_lasso(lasso);
    println!("  replays: the cycle is weakly fair and never reaches the sorted ring");
}

fn convergence_run(
    stepper: &dyn Stepper,
    family: Option<Family>,
    policy: Policy,
    r: &swn_analyzer::ConvergenceReport,
) -> JsonRun {
    let verdict = if let Some(l) = &r.counterexample {
        format!(
            "LIVELOCK: fair cycle of {} steps avoids the sorted ring",
            l.cycle.len()
        )
    } else if r.truncated {
        "TRUNCATED (raise --max-states for an exhaustive run)".to_owned()
    } else {
        format!(
            "livelock-free ({} terminal states, {} budget-starved)",
            r.terminals, r.terminal_nongoal
        )
    };
    JsonRun {
        mode: "liveness",
        stepper: stepper.label(),
        family: family.map(Family::label),
        policy: policy.label(),
        states: r.states,
        edges: Some(r.edges),
        truncated: r.truncated,
        goal_states: Some(r.goal_states),
        terminals: Some(r.terminals),
        terminal_nongoal: Some(r.terminal_nongoal),
        scc_count: Some(r.scc_count),
        max_scc: Some(r.max_scc),
        fair_sccs: Some(r.fair_sccs),
        ring_states: None,
        stable_states: None,
        monotone: None,
        goal_at_minimum: None,
        stutter_fair_sccs: None,
        // A mutant run is "ok" when the livelock IS caught; the real
        // protocol is "ok" when it is livelock-free. The caller decides
        // by stepper; here "ok" means the detector returned a verdict.
        ok: if stepper.label() == "bounce-lin" {
            r.counterexample.is_some()
        } else {
            r.livelock_free()
        },
        verdict,
        lasso: r.counterexample.as_ref().map(|l| JsonLasso {
            stem: fmt_schedule(&l.stem),
            cycle: fmt_schedule(&l.cycle),
        }),
        escape: None,
    }
}

fn main() {
    let args = parse_args();
    match args.mutant.as_deref() {
        Some("drop-lin") => return run_safety_mutant(&args, &DropLinStepper),
        Some("self-echo") => return run_safety_mutant(&args, &SelfEchoStepper),
        Some("bounce-lin") => return run_bounce_mutant(&args),
        _ => {}
    }

    let mut failed = false;
    let mut runs: Vec<JsonRun> = Vec::new();
    if !args.json {
        println!(
            "small-scope {} check: n = {}, budget = {}, seed = {}, channel bound = {}",
            args.mode.label(),
            args.n,
            args.budget,
            args.seed,
            args.channel_bound
        );
    }
    for &policy in &args.policies {
        // Closure has one canonical seed per (n, budget), not one per
        // family: the sorted ring itself.
        let families: Vec<Option<Family>> = if args.mode == Mode::Closure {
            vec![None]
        } else {
            args.families.iter().copied().map(Some).collect()
        };
        for family in families {
            match args.mode {
                Mode::Safety => {
                    let family = family.expect("safety iterates families");
                    let initial = family.initial_state_bounded(
                        args.n,
                        args.budget,
                        args.seed,
                        args.channel_bound,
                    );
                    let cfg = ExploreConfig {
                        policy,
                        reduction: args.reduction,
                        symmetry: args.symmetry,
                        max_states: args.max_states,
                        ..ExploreConfig::default()
                    };
                    let report = Explorer::new(&RealStepper, cfg).run(&initial);
                    let (ok, verdict) = if let Some(found) = &report.violation {
                        (false, format!("VIOLATION: {}", found.violation))
                    } else if report.truncated {
                        (
                            false,
                            "TRUNCATED (raise --max-states for an exhaustive run)".to_owned(),
                        )
                    } else {
                        (true, "ok (exhaustive)".to_owned())
                    };
                    failed |= !ok;
                    if args.json {
                        runs.push(JsonRun {
                            mode: "safety",
                            stepper: "real",
                            family: Some(family.label()),
                            policy: policy.label(),
                            states: report.distinct_states,
                            edges: None,
                            truncated: report.truncated,
                            goal_states: None,
                            terminals: Some(report.quiescent_states),
                            terminal_nongoal: None,
                            scc_count: None,
                            max_scc: None,
                            fair_sccs: None,
                            ring_states: None,
                            stable_states: None,
                            monotone: None,
                            goal_at_minimum: None,
                            stutter_fair_sccs: None,
                            ok,
                            verdict,
                            lasso: None,
                            escape: report.violation.as_ref().map(|found| {
                                fmt_schedule(&minimize(
                                    &initial,
                                    &RealStepper,
                                    policy,
                                    &found.trace,
                                ))
                            }),
                        });
                    } else {
                        println!(
                            "  {:<6} policy={:<5} states={:>8} transitions={:>9} quiescent={:>6} depth={:>4}  {}",
                            family.label(),
                            policy.label(),
                            report.distinct_states,
                            report.transitions_executed,
                            report.quiescent_states,
                            report.max_depth_reached,
                            verdict
                        );
                        if report.coalesced_sends > 0 {
                            println!(
                                "         ({} sends coalesced by channel bound {}; exhaustive relative to it)",
                                report.coalesced_sends, args.channel_bound
                            );
                        }
                        if let Some(found) = report.violation {
                            let min = minimize(&initial, &RealStepper, policy, &found.trace);
                            print!("{}", format_trace(&initial, &RealStepper, policy, &min));
                        }
                    }
                }
                Mode::Liveness => {
                    let family = family.expect("liveness iterates families");
                    let initial = family.initial_state_bounded(
                        args.n,
                        args.budget,
                        args.seed,
                        args.channel_bound,
                    );
                    let g = FairGraph::build(&initial, &RealStepper, policy, args.max_states);
                    let report = check_convergence(&g, &RealStepper);
                    let run = convergence_run(&RealStepper, Some(family), policy, &report);
                    failed |= !run.ok;
                    if args.json {
                        runs.push(run);
                    } else {
                        println!(
                            "  {:<6} policy={:<5} states={:>8} edges={:>9} goal={:>7} terminal={:>6} (starved {}) sccs={} fair={}  {}",
                            family.label(),
                            policy.label(),
                            report.states,
                            report.edges,
                            report.goal_states,
                            report.terminals,
                            report.terminal_nongoal,
                            report.scc_count,
                            report.fair_sccs,
                            run.verdict
                        );
                        if let Some(l) = &report.counterexample {
                            print_lasso(l);
                        }
                    }
                }
                Mode::Closure => {
                    let initial = ring_state(args.n, args.budget);
                    let g = FairGraph::build(&initial, &RealStepper, policy, args.max_states);
                    let report = check_closure(&g, &RealStepper);
                    let ok = report.closed();
                    failed |= !ok;
                    let verdict = if let Some(escape) = &report.escape {
                        format!("ESCAPE: ring broken after {} steps", escape.len())
                    } else if report.truncated {
                        "TRUNCATED (raise --max-states for an exhaustive run)".to_owned()
                    } else {
                        "closed (every reachable state is the sorted ring)".to_owned()
                    };
                    if args.json {
                        runs.push(JsonRun {
                            mode: "closure",
                            stepper: "real",
                            family: None,
                            policy: policy.label(),
                            states: report.states,
                            edges: Some(report.edges),
                            truncated: report.truncated,
                            goal_states: None,
                            terminals: None,
                            terminal_nongoal: None,
                            scc_count: None,
                            max_scc: None,
                            fair_sccs: None,
                            ring_states: Some(report.ring_states),
                            stable_states: Some(report.stable_states),
                            monotone: None,
                            goal_at_minimum: None,
                            stutter_fair_sccs: None,
                            ok,
                            verdict,
                            lasso: None,
                            escape: report.escape.as_ref().map(|e| fmt_schedule(e)),
                        });
                    } else {
                        println!(
                            "  ring   policy={:<5} states={:>8} edges={:>9} ring={:>8} stable={:>8}  {}",
                            policy.label(),
                            report.states,
                            report.edges,
                            report.ring_states,
                            report.stable_states,
                            verdict
                        );
                        if let Some(escape) = &report.escape {
                            for t in escape {
                                println!("    escape: {t}");
                            }
                        }
                    }
                }
                Mode::Ranking => {
                    let family = family.expect("ranking iterates families");
                    let initial = family.initial_state_bounded(
                        args.n,
                        args.budget,
                        args.seed,
                        args.channel_bound,
                    );
                    let g = FairGraph::build(&initial, &RealStepper, policy, args.max_states);
                    let report = check_ranking(&g, &RealStepper);
                    let ok = report.certified();
                    failed |= !ok;
                    let verdict = if let Some((trace, from, to)) = &report.increase {
                        format!(
                            "RANK INCREASE {:?} -> {:?} after {} steps",
                            from,
                            to,
                            trace.len()
                        )
                    } else if !report.goal_at_minimum {
                        "GOAL STATE ABOVE MINIMUM RANK".to_owned()
                    } else if report.stutter_counterexample.is_some() {
                        "FAIR RANK-CONSTANT CYCLE OUTSIDE GOAL".to_owned()
                    } else if report.truncated {
                        "TRUNCATED (raise --max-states for an exhaustive run)".to_owned()
                    } else {
                        "certified (monotone, goal at minimum, stutter cycles goal-only)".to_owned()
                    };
                    if args.json {
                        runs.push(JsonRun {
                            mode: "ranking",
                            stepper: "real",
                            family: Some(family.label()),
                            policy: policy.label(),
                            states: report.states,
                            edges: Some(report.edges),
                            truncated: report.truncated,
                            goal_states: None,
                            terminals: None,
                            terminal_nongoal: None,
                            scc_count: None,
                            max_scc: None,
                            fair_sccs: None,
                            ring_states: None,
                            stable_states: None,
                            monotone: Some(report.monotone),
                            goal_at_minimum: Some(report.goal_at_minimum),
                            stutter_fair_sccs: Some(report.stutter_fair_sccs),
                            ok,
                            verdict,
                            lasso: report.stutter_counterexample.as_ref().map(|l| JsonLasso {
                                stem: fmt_schedule(&l.stem),
                                cycle: fmt_schedule(&l.cycle),
                            }),
                            escape: report.increase.as_ref().map(|(t, _, _)| fmt_schedule(t)),
                        });
                    } else {
                        println!(
                            "  {:<6} policy={:<5} states={:>8} edges={:>9} monotone={} goal_at_min={} stutter_fair={}  {}",
                            family.label(),
                            policy.label(),
                            report.states,
                            report.edges,
                            report.monotone,
                            report.goal_at_minimum,
                            report.stutter_fair_sccs,
                            verdict
                        );
                        if let Some(l) = &report.stutter_counterexample {
                            print_lasso(l);
                        }
                    }
                }
            }
        }
    }
    if args.json {
        let doc = JsonDoc {
            mode: args.mode.label(),
            n: args.n,
            budget: args.budget,
            seed: args.seed,
            channel_bound: args.channel_bound,
            symmetry: args.symmetry || args.mode != Mode::Safety,
            failed,
            runs,
        };
        println!("{}", serde_json::to_string(&doc).expect("serialize"));
    }
    if failed {
        std::process::exit(1);
    }
}
