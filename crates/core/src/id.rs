//! Node identifiers.
//!
//! The paper assigns every node an identifier `id ∈ [0, 1)` and the protocol
//! is a *compare-store-send* program: identifiers are only ever compared,
//! stored and forwarded, never inspected or manipulated arithmetically.
//!
//! We represent an identifier as a fixed-point fraction over `u64`
//! (`value = bits / 2^64`), which gives an exact total order, cheap hashing
//! and `Copy` semantics — none of the `NaN`/rounding hazards of `f64`. The
//! wrapper deliberately exposes no arithmetic, which enforces the
//! compare-store-send discipline at the type level. (The *simulator* and
//! *analysis* crates may look at ranks and distances, but the protocol
//! itself never does.)
//!
//! The sentinels `−∞` / `+∞` used by the paper for "no left neighbour" /
//! "no right neighbour" are modelled by [`Extended`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node identifier in `[0, 1)`, represented as a `u64` fixed-point
/// fraction: the identifier's value is `bits / 2^64`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u64);

impl NodeId {
    /// The smallest representable identifier (0.0).
    pub const MIN: NodeId = NodeId(0);
    /// The largest representable identifier (1 − 2⁻⁶⁴).
    pub const MAX: NodeId = NodeId(u64::MAX);

    /// Builds an identifier from its raw fixed-point bits.
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        NodeId(bits)
    }

    /// The raw fixed-point bits.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Builds an identifier from a float in `[0, 1)`.
    ///
    /// # Panics
    /// Panics if `f` is not in `[0, 1)` (including `NaN`).
    pub fn from_fraction(f: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&f),
            "node identifier must lie in [0,1), got {f}"
        );
        // 2^64 as f64; the product is < 2^64 so the cast saturates correctly
        // only at the (unreachable) top end.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        NodeId((f * 1.844_674_407_370_955_2e19) as u64)
    }

    /// The identifier's value as a float in `[0, 1)`. Lossy for display and
    /// analysis only — the protocol never calls this.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / 1.844_674_407_370_955_2e19
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Id({:.6})", self.as_f64())
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_f64())
    }
}

/// An identifier extended with the sentinels `−∞` and `+∞`.
///
/// The paper sets `p.l = −∞` when `p` knows no smaller node and `p.r = ∞`
/// when it knows no larger one. `Extended` keeps those comparisons total:
/// `NegInf < Fin(x) < PosInf` for every `x`, which is exactly the derived
/// `Ord` on this enum given the variant order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Extended {
    /// `−∞`: no node on this side is known.
    NegInf,
    /// A concrete identifier.
    Fin(NodeId),
    /// `+∞`: no node on this side is known.
    PosInf,
}

impl Extended {
    /// The finite identifier, if any.
    #[inline]
    pub fn fin(self) -> Option<NodeId> {
        match self {
            Extended::Fin(id) => Some(id),
            _ => None,
        }
    }

    /// True iff this is a finite identifier.
    #[inline]
    pub fn is_fin(self) -> bool {
        matches!(self, Extended::Fin(_))
    }

    /// True iff this is `−∞`.
    #[inline]
    pub fn is_neg_inf(self) -> bool {
        matches!(self, Extended::NegInf)
    }

    /// True iff this is `+∞`.
    #[inline]
    pub fn is_pos_inf(self) -> bool {
        matches!(self, Extended::PosInf)
    }
}

impl From<NodeId> for Extended {
    #[inline]
    fn from(id: NodeId) -> Self {
        Extended::Fin(id)
    }
}

impl PartialEq<NodeId> for Extended {
    #[inline]
    fn eq(&self, other: &NodeId) -> bool {
        matches!(self, Extended::Fin(id) if id == other)
    }
}

impl PartialOrd<NodeId> for Extended {
    #[inline]
    fn partial_cmp(&self, other: &NodeId) -> Option<std::cmp::Ordering> {
        Some(match self {
            Extended::NegInf => std::cmp::Ordering::Less,
            Extended::Fin(id) => id.cmp(other),
            Extended::PosInf => std::cmp::Ordering::Greater,
        })
    }
}

impl PartialEq<Extended> for NodeId {
    #[inline]
    fn eq(&self, other: &Extended) -> bool {
        other == self
    }
}

impl PartialOrd<Extended> for NodeId {
    #[inline]
    fn partial_cmp(&self, other: &Extended) -> Option<std::cmp::Ordering> {
        other.partial_cmp(self).map(std::cmp::Ordering::reverse)
    }
}

impl fmt::Display for Extended {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Extended::NegInf => write!(f, "-inf"),
            Extended::Fin(id) => write!(f, "{id}"),
            Extended::PosInf => write!(f, "+inf"),
        }
    }
}

/// Spreads `n` identifiers evenly over `[0,1)`. Handy for building stable
/// reference networks in tests and benchmarks; real deployments draw ids
/// uniformly at random (see [`random_ids`]).
pub fn evenly_spaced_ids(n: usize) -> Vec<NodeId> {
    assert!(n > 0, "need at least one node");
    let step = (u64::MAX / n as u64).max(1);
    (0..n).map(|i| NodeId::from_bits(i as u64 * step)).collect()
}

/// Draws `n` distinct identifiers uniformly at random.
pub fn random_ids<R: rand::Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<NodeId> {
    use rand::RngExt as _;
    let mut ids = std::collections::BTreeSet::new();
    while ids.len() < n {
        ids.insert(NodeId::from_bits(rng.random::<u64>()));
    }
    ids.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_point_round_trip() {
        for f in [0.0, 0.25, 0.5, 0.75, 0.999_999] {
            let id = NodeId::from_fraction(f);
            assert!((id.as_f64() - f).abs() < 1e-12, "round-trip drift at {f}");
        }
    }

    #[test]
    #[should_panic(expected = "must lie in [0,1)")]
    fn rejects_one() {
        let _ = NodeId::from_fraction(1.0);
    }

    #[test]
    #[should_panic(expected = "must lie in [0,1)")]
    fn rejects_nan() {
        let _ = NodeId::from_fraction(f64::NAN);
    }

    #[test]
    fn extended_total_order() {
        let a = NodeId::from_fraction(0.2);
        let b = NodeId::from_fraction(0.7);
        assert!(Extended::NegInf < Extended::Fin(a));
        assert!(Extended::Fin(a) < Extended::Fin(b));
        assert!(Extended::Fin(b) < Extended::PosInf);
        assert!(Extended::NegInf < Extended::PosInf);
    }

    #[test]
    fn mixed_comparisons_match_pure_ones() {
        let a = NodeId::from_fraction(0.2);
        let b = NodeId::from_fraction(0.7);
        assert!(Extended::NegInf < a);
        assert!(a < Extended::Fin(b));
        assert!(Extended::Fin(a) < b);
        assert!(b < Extended::PosInf);
        assert!(Extended::Fin(a) == a);
        assert!(a == Extended::Fin(a));
        assert!(a != Extended::NegInf);
    }

    #[test]
    fn evenly_spaced_are_sorted_and_distinct() {
        let ids = evenly_spaced_ids(100);
        assert_eq!(ids.len(), 100);
        for w in ids.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn random_ids_are_distinct_and_sorted() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let ids = random_ids(500, &mut rng);
        assert_eq!(ids.len(), 500);
        for w in ids.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn min_max_bounds() {
        assert!(NodeId::MIN <= NodeId::from_bits(12345));
        assert!(NodeId::MAX >= NodeId::from_bits(12345));
        assert_eq!(NodeId::MIN.as_f64(), 0.0);
        assert!(NodeId::MAX.as_f64() < 1.0 + 1e-9);
    }
}
