//! **E2 — The long-range-link length distribution converges to the
//! (log-corrected) harmonic law** (Theorem 4.22, Fact 4.21, reference [4]).
//!
//! Two systems are measured side by side:
//!
//! * the **self-stabilized protocol**: full message-passing simulation on
//!   the formed ring, link lengths sampled from snapshots;
//! * the **pure move-and-forget process** of Chaintreau et al. — the
//!   ground truth the stable protocol must match, since on the formed
//!   ring the protocol's token dynamics reduce to exactly that process.
//!
//! Reported per system: KS distance to the plain harmonic CDF, KS to the
//! log-corrected law `1/(d·(1+ln d)^(1+ε))` (the finite-scale stationary
//! law — it must fit better), and the log–log density slope (≈ −1 for a
//! harmonic-family power law).

use crate::table::{f3, Table};
use crate::testbed::stabilized_network;
use swn_baselines::chaintreau::MoveForgetRing;
use swn_core::config::ProtocolConfig;
use swn_sim::parallel::run_trials;
use swn_topology::distribution::{
    ks_to_cdf, ks_to_harmonic, log_corrected_harmonic_cdf, log_log_slope, lrl_lengths_view,
};

/// Parameters for E2.
#[derive(Clone, Debug)]
pub struct Params {
    /// Ring sizes.
    pub sizes: Vec<usize>,
    /// Warmup rounds before sampling.
    pub warmup: u64,
    /// Number of sampling epochs (one snapshot each).
    pub epochs: usize,
    /// Rounds between sampling epochs.
    pub epoch_gap: u64,
    /// Protocol ε.
    pub epsilon: f64,
}

impl Params {
    /// Full-scale run.
    pub fn full() -> Self {
        Params {
            sizes: vec![256, 1024],
            warmup: 20_000,
            epochs: 200,
            epoch_gap: 20,
            epsilon: 0.1,
        }
    }

    /// Reduced scale.
    pub fn quick() -> Self {
        Params {
            sizes: vec![128],
            warmup: 4_000,
            epochs: 60,
            epoch_gap: 10,
            epsilon: 0.1,
        }
    }
}

/// Distribution statistics for one system at one size.
#[derive(Clone, Copy, Debug)]
pub struct FitStats {
    /// Link-length samples collected.
    pub samples: usize,
    /// KS distance to the plain harmonic CDF.
    pub ks_harmonic: f64,
    /// KS distance to the log-corrected harmonic CDF.
    pub ks_corrected: f64,
    /// Log-log density slope (harmonic family: near -1).
    pub slope: f64,
}

fn fit(lengths: &[usize], max_d: usize, epsilon: f64) -> FitStats {
    FitStats {
        samples: lengths.len(),
        ks_harmonic: ks_to_harmonic(lengths, max_d),
        ks_corrected: ks_to_cdf(lengths, &log_corrected_harmonic_cdf(max_d, epsilon)),
        slope: log_log_slope(lengths, max_d).unwrap_or(f64::NAN),
    }
}

/// Measures the protocol's stable-state link lengths at size `n`.
pub fn protocol_fit(n: usize, p: &Params, seed: u64) -> FitStats {
    let cfg = ProtocolConfig::with_epsilon(p.epsilon);
    let mut net = stabilized_network(n, cfg, seed, p.warmup);
    let mut lengths = Vec::new();
    for _ in 0..p.epochs {
        net.run(p.epoch_gap);
        lengths.extend(lrl_lengths_view(&net.view()));
    }
    fit(&lengths, n / 2, p.epsilon)
}

/// Measures the pure move-and-forget baseline at size `n`.
pub fn baseline_fit(n: usize, p: &Params, seed: u64) -> FitStats {
    let mut mf = MoveForgetRing::new(n, p.epsilon, seed);
    mf.run(p.warmup);
    let mut lengths = Vec::new();
    for _ in 0..p.epochs {
        mf.run(p.epoch_gap);
        lengths.extend(mf.lengths());
    }
    fit(&lengths, n / 2, p.epsilon)
}

/// Runs E2 and renders the table.
pub fn run(p: &Params) -> Table {
    let mut t = Table::new(
        "E2  Long-range link length distribution",
        "stable-state lrl lengths follow the harmonic law up to the finite-scale ln^(1+eps) correction; \
         protocol matches the pure move-and-forget process (Thm 4.22 / [4])",
        &[
            "system", "n", "samples", "KS harm", "KS corr", "slope",
        ],
    );
    // One trial per (size, system) cell, in parallel. Each cell's seed
    // depends only on its size, so the table is identical no matter how
    // many workers ran it.
    let fits = run_trials(p.sizes.len() * 2, |i| {
        let n = p.sizes[i / 2];
        let seed = 42 + n as u64;
        if i % 2 == 0 {
            protocol_fit(n, p, seed)
        } else {
            baseline_fit(n, p, seed)
        }
    });
    for (i, stats) in fits.iter().enumerate() {
        let n = p.sizes[i / 2];
        let label = if i % 2 == 0 {
            "protocol"
        } else {
            "move-forget"
        };
        t.push_row(vec![
            label.to_string(),
            n.to_string(),
            stats.samples.to_string(),
            f3(stats.ks_harmonic),
            f3(stats.ks_corrected),
            f3(stats.slope),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_matches_baseline_shape() {
        let mut p = Params::quick();
        // The log-log slope estimator is noisy at quick() sample counts;
        // triple the epochs so the slope comparison below is a property
        // of the distributions rather than of one epoch draw.
        p.epochs = 180;
        let proto = protocol_fit(128, &p, 7);
        let base = baseline_fit(128, &p, 7);
        assert!(proto.samples > 1000, "too few samples: {}", proto.samples);
        // Both systems must fit the corrected law better than plain
        // harmonic, with a clear power-law slope.
        for (label, s) in [("protocol", proto), ("baseline", base)] {
            assert!(
                s.ks_corrected < s.ks_harmonic,
                "{label}: corrected {} ≥ plain {}",
                s.ks_corrected,
                s.ks_harmonic
            );
            assert!(s.ks_corrected < 0.35, "{label}: KS {}", s.ks_corrected);
            assert!(
                (-2.4..=-0.9).contains(&s.slope),
                "{label}: slope {}",
                s.slope
            );
        }
        // And they must agree with each other.
        assert!(
            (proto.ks_corrected - base.ks_corrected).abs() < 0.15,
            "protocol {} vs baseline {}",
            proto.ks_corrected,
            base.ks_corrected
        );
        assert!((proto.slope - base.slope).abs() < 0.6);
    }

    #[test]
    fn table_has_two_rows_per_size() {
        let mut p = Params::quick();
        p.sizes = vec![64];
        p.warmup = 500;
        p.epochs = 20;
        let t = run(&p);
        assert_eq!(t.rows.len(), 2);
    }
}
