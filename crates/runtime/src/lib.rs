//! # swn-runtime — a genuinely concurrent execution of the protocol
//!
//! The simulator (`swn-sim`) interleaves actions sequentially under a
//! seeded scheduler; this crate runs each node on a real thread with a
//! crossbeam channel as its message channel, so the protocol faces true
//! asynchrony: arbitrary interleavings, racing messages, and no global
//! round structure at all. Self-stabilization claims survive only if the
//! handlers themselves are correct — there is no scheduler to hide behind.
//!
//! Used by the `runtime_live` example and the concurrency integration
//! tests. Membership is fixed for the lifetime of a [`Runtime`] (churn is
//! exercised in the simulator, where recovery can be measured in rounds).
//!
//! ## Concurrency structure
//!
//! * each node's state lives in an `Arc<Mutex<Node>>` (parking_lot);
//!   node threads lock it only for the duration of one action, and the
//!   observer locks it only to clone a snapshot — lock ordering is
//!   irrelevant because no thread ever holds two node locks at once;
//! * messages travel over unbounded crossbeam channels, one per node,
//!   through a shared routing table (`NodeId → Sender`); sends never
//!   block;
//! * shutdown is a single `AtomicBool` flag checked once per loop
//!   iteration (`Ordering::Relaxed` suffices: no data is published
//!   through the flag itself, and the subsequent `join` provides the
//!   happens-before edge for the final states).

#![forbid(unsafe_code)]

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use swn_core::id::NodeId;
use swn_core::message::Message;
use swn_core::node::Node;
use swn_core::outbox::Outbox;
use swn_core::views::Snapshot;

/// Knobs for the threaded runtime.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Pause between a node's action iterations. A small pause keeps the
    /// probing/advertisement traffic from saturating the channels while
    /// still exercising real concurrency.
    pub iteration_pause: Duration,
    /// Messages drained per iteration before running the regular action
    /// (bounds per-iteration latency under bursty traffic).
    pub max_drain_per_iteration: usize,
    /// Base RNG seed; node `i` derives its own stream from `seed + i`.
    pub seed: u64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            iteration_pause: Duration::from_micros(200),
            max_drain_per_iteration: 256,
            seed: 0,
        }
    }
}

struct Shared {
    stop: AtomicBool,
    routes: HashMap<NodeId, Sender<Message>>,
    messages_sent: AtomicU64,
    messages_dropped: AtomicU64,
}

/// A running network of node threads.
pub struct Runtime {
    shared: Arc<Shared>,
    states: Vec<(NodeId, Arc<Mutex<Node>>)>,
    handles: Vec<JoinHandle<()>>,
}

impl Runtime {
    /// Spawns one thread per node. Ids must be unique and every node's
    /// protocol config valid (validated here so misconfiguration fails
    /// fast instead of panicking inside a detached node thread).
    pub fn spawn(nodes: Vec<Node>, cfg: RuntimeConfig) -> Self {
        let mut routes = HashMap::with_capacity(nodes.len());
        let mut receivers: Vec<Receiver<Message>> = Vec::with_capacity(nodes.len());
        for n in &nodes {
            n.config().validate().expect("invalid protocol config");
            let (tx, rx) = unbounded();
            let prev = routes.insert(n.id(), tx);
            assert!(prev.is_none(), "duplicate node id {:?}", n.id());
            receivers.push(rx);
        }
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            routes,
            messages_sent: AtomicU64::new(0),
            messages_dropped: AtomicU64::new(0),
        });
        let mut states = Vec::with_capacity(nodes.len());
        let mut handles = Vec::with_capacity(nodes.len());
        for (i, (node, rx)) in nodes.into_iter().zip(receivers).enumerate() {
            let id = node.id();
            let state = Arc::new(Mutex::new(node));
            states.push((id, state.clone()));
            let shared = shared.clone();
            let handle = std::thread::Builder::new()
                .name(format!("swn-node-{i}"))
                .spawn(move || node_loop(state, rx, shared, cfg, i as u64))
                .expect("spawn node thread");
            handles.push(handle);
        }
        states.sort_by_key(|(id, _)| *id);
        Runtime {
            shared,
            states,
            handles,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when the runtime has no nodes.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Clones the current node states (channel contents are not
    /// observable; the returned snapshot has empty channels, which is
    /// exactly the CP/LCP/RCP view the phase predicates need).
    pub fn snapshot(&self) -> Snapshot {
        let nodes: Vec<Node> = self.states.iter().map(|(_, s)| s.lock().clone()).collect();
        Snapshot::from_nodes(nodes)
    }

    /// Total messages routed so far.
    pub fn messages_sent(&self) -> u64 {
        self.shared.messages_sent.load(Ordering::Relaxed)
    }

    /// Messages whose destination id was unknown (stale/corrupt initial
    /// pointers to ids outside the membership).
    pub fn messages_dropped(&self) -> u64 {
        self.shared.messages_dropped.load(Ordering::Relaxed)
    }

    /// Polls `pred` on snapshots every `poll` until it holds or `timeout`
    /// passes. Returns true on success.
    pub fn wait_until<F>(&self, timeout: Duration, poll: Duration, mut pred: F) -> bool
    where
        F: FnMut(&Snapshot) -> bool,
    {
        let deadline = Instant::now() + timeout;
        loop {
            if pred(&self.snapshot()) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(poll);
        }
    }

    /// Signals all node threads to stop, joins them, and returns the
    /// final states (sorted by id).
    pub fn shutdown(self) -> Vec<Node> {
        self.shared.stop.store(true, Ordering::Relaxed);
        for h in self.handles {
            h.join().expect("node thread panicked");
        }
        self.states
            .into_iter()
            .map(|(_, s)| s.lock().clone())
            .collect()
    }
}

fn node_loop(
    state: Arc<Mutex<Node>>,
    rx: Receiver<Message>,
    shared: Arc<Shared>,
    cfg: RuntimeConfig,
    index: u64,
) {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(index));
    let mut out = Outbox::new();
    while !shared.stop.load(Ordering::Relaxed) {
        // Receive actions.
        for _ in 0..cfg.max_drain_per_iteration {
            match rx.try_recv() {
                Ok(m) => {
                    state.lock().on_message(m, &mut rng, &mut out);
                    dispatch(&shared, &state, &mut out);
                }
                Err(_) => break,
            }
        }
        // Regular action.
        state.lock().on_regular(&mut out);
        dispatch(&shared, &state, &mut out);
        std::thread::sleep(cfg.iteration_pause);
    }
}

fn dispatch(shared: &Shared, sender: &Mutex<Node>, out: &mut Outbox) {
    out.drain_events().for_each(drop);
    for (dest, msg) in out.drain_sends() {
        match shared.routes.get(&dest) {
            Some(tx) => {
                shared.messages_sent.fetch_add(1, Ordering::Relaxed);
                // Receiver outlives senders except during shutdown, when
                // losing a message is irrelevant.
                let _ = tx.send(msg);
            }
            None => {
                // Bounce: same departure-detection model as the simulator
                // (DESIGN.md deviation #7) — without it a ghost pointer
                // (e.g. adopted via a probe repair toward a nonexistent
                // lrl) would dangle forever and could permanently break
                // the ring on this transport.
                shared.messages_dropped.fetch_add(1, Ordering::Relaxed);
                sender.lock().clear_dangling(dest);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swn_core::config::ProtocolConfig;
    use swn_core::id::{evenly_spaced_ids, Extended};
    use swn_core::invariants::{is_sorted_list, is_sorted_ring, make_sorted_ring};

    /// A directed chain over an interleaved (non-sorted) order: node u
    /// points at its chain successor via whichever slot is legal.
    fn chain_nodes(n: usize) -> Vec<Node> {
        let ids = evenly_spaced_ids(n);
        let cfg = ProtocolConfig::default();
        let mut order = Vec::with_capacity(n);
        for i in 0..n / 2 {
            order.push(ids[i]);
            order.push(ids[i + n / 2]);
        }
        if n % 2 == 1 {
            order.push(ids[n - 1]);
        }
        let mut nodes: Vec<Node> = order.iter().map(|&id| Node::new(id, cfg)).collect();
        for w in order.windows(2) {
            let (u, v) = (w[0], w[1]);
            let node = nodes.iter_mut().find(|n| n.id() == u).expect("present");
            let (l, r) = if v < u {
                (Extended::Fin(v), node.right())
            } else {
                (node.left(), Extended::Fin(v))
            };
            *node = Node::with_state(u, l, r, node.lrl(), None, cfg);
        }
        nodes
    }

    #[test]
    fn stable_ring_stays_stable_under_real_concurrency() {
        let ids = evenly_spaced_ids(8);
        let nodes = make_sorted_ring(&ids, ProtocolConfig::default());
        let rt = Runtime::spawn(nodes, RuntimeConfig::default());
        std::thread::sleep(Duration::from_millis(200));
        assert!(is_sorted_ring(&rt.snapshot()));
        let finals = rt.shutdown();
        assert!(is_sorted_ring(&Snapshot::from_nodes(finals)));
    }

    #[test]
    fn interleaved_chain_linearizes_concurrently() {
        let nodes = chain_nodes(16);
        let rt = Runtime::spawn(nodes, RuntimeConfig::default());
        let ok = rt.wait_until(
            Duration::from_secs(30),
            Duration::from_millis(20),
            is_sorted_ring,
        );
        let sent = rt.messages_sent();
        let finals = rt.shutdown();
        assert!(ok, "threaded run failed to stabilize (sent {sent} msgs)");
        assert!(is_sorted_list(&Snapshot::from_nodes(finals)));
        assert!(sent > 0);
    }

    #[test]
    fn pointers_to_unknown_ids_are_dropped_not_fatal() {
        let ids = evenly_spaced_ids(4);
        let cfg = ProtocolConfig::default();
        let mut nodes = make_sorted_ring(&ids, cfg);
        // One node's lrl points outside the membership.
        nodes[1] = Node::with_state(
            ids[1],
            nodes[1].left(),
            nodes[1].right(),
            NodeId::from_fraction(0.999),
            None,
            cfg,
        );
        let rt = Runtime::spawn(nodes, RuntimeConfig::default());
        std::thread::sleep(Duration::from_millis(150));
        assert!(rt.messages_dropped() > 0);
        rt.shutdown();
    }

    #[test]
    fn shutdown_joins_all_threads_and_sorts_by_id() {
        let ids = evenly_spaced_ids(6);
        let nodes = make_sorted_ring(&ids, ProtocolConfig::default());
        let rt = Runtime::spawn(nodes, RuntimeConfig::default());
        assert_eq!(rt.len(), 6);
        let finals = rt.shutdown();
        assert_eq!(finals.len(), 6);
        for w in finals.windows(2) {
            assert!(w[0].id() < w[1].id());
        }
    }

    #[test]
    #[should_panic(expected = "duplicate node id")]
    fn duplicate_ids_rejected() {
        let cfg = ProtocolConfig::default();
        let id = NodeId::from_fraction(0.5);
        let _ = Runtime::spawn(
            vec![Node::new(id, cfg), Node::new(id, cfg)],
            RuntimeConfig::default(),
        );
    }
}
