//! The ranking certificate's potential function.
//!
//! The paper's convergence argument is a staged potential: knowledge is
//! never lost (phase 1), the `l`/`r` pointers only refine toward the
//! sorted list (phase 2), the ring edges only walk toward the true
//! extrema (phase 3). [`rank_of`] packs those three stages into one
//! lexicographic vector that the `ranking` mode checks **non-increasing
//! on every reachable fair-model transition** and **at its minimum on
//! every goal state**:
//!
//! 1. `components` — number of weak components of the CC view (stored
//!    links plus in-flight payloads). The connectivity lemma (Theorem
//!    4.3) says no handler drops the last link between two components;
//!    counting components instead of testing overall connectivity makes
//!    the same argument component-local.
//! 2. `list_deficit` — number of `l`/`r` pointers that differ from their
//!    sorted-list target. `linearize` adopts only identifiers strictly
//!    between a node and its current neighbour, and no identifier fits
//!    strictly between list-adjacent nodes, so a correct pointer can
//!    never regress; sanitation only rewrites ill-typed pointers, which
//!    are already counted as deficits.
//! 3. `ring_deficit` — for each extremal node, whether it has both its
//!    sentinel side (`min.l = −∞` / `max.r = +∞`) and its closing ring
//!    edge (`min.ring = max` / `max.ring = min`). The sentinel guard is
//!    load-bearing: sanitation may clear the ring edge of a node whose
//!    `l` is still ill-typed, and without the guard that transition
//!    would look like a rank increase — with it, the ill-typed `l`
//!    already counts the node as deficient before the clear.
//!    `update_ring` itself only improves candidates monotonically
//!    (min's ring edge walks right, max's walks left).
//!
//! The long-range token (`lrl`, the move-and-forget walk) is
//! deliberately **absent** from the rank: in the fair model the token
//! keeps moving forever — that is the protocol's phase-4 behaviour, a
//! distributional property, not a convergence one — so any
//! token-sensitive component would oscillate on the goal region's fair
//! cycles and break the certificate. See DESIGN.md §11.

use swn_core::id::Extended;
use swn_core::invariants::component_labels_view;
use swn_core::views::{Snapshot, View};

/// Lexicographic potential ⟨components, list deficit, ring deficit⟩;
/// arrays of `u64` compare lexicographically, so `next <= cur` is the
/// non-increase check.
pub type Rank = [u64; 3];

/// The rank every goal (sorted-ring) state must sit at for `n ≥ 2`: one
/// component, no pointer deficits.
pub const GOAL_RANK: Rank = [1, 0, 0];

/// Evaluates the potential on one configuration.
pub fn rank_of(snap: &Snapshot) -> Rank {
    let v = snap.as_view();
    let mut labels = component_labels_view(&v, View::Cc);
    labels.sort_unstable();
    labels.dedup();
    let components = labels.len() as u64;

    let nodes = v.nodes();
    let n = nodes.len();
    let mut list_deficit = 0u64;
    for (pos, node) in nodes.iter().enumerate() {
        let want_l = if pos == 0 {
            Extended::NegInf
        } else {
            Extended::Fin(nodes[pos - 1].id())
        };
        let want_r = if pos + 1 == n {
            Extended::PosInf
        } else {
            Extended::Fin(nodes[pos + 1].id())
        };
        list_deficit += u64::from(node.left() != want_l);
        list_deficit += u64::from(node.right() != want_r);
    }

    let mut ring_deficit = 0u64;
    if n >= 2 {
        let min = nodes[0];
        let max = nodes[n - 1];
        let min_ok = min.left() == Extended::NegInf && min.ring() == Some(max.id());
        let max_ok = max.right() == Extended::PosInf && max.ring() == Some(min.id());
        ring_deficit += u64::from(!min_ok);
        ring_deficit += u64::from(!max_ok);
    }

    [components, list_deficit, ring_deficit]
}

#[cfg(test)]
mod tests {
    use super::*;
    use swn_core::config::ProtocolConfig;
    use swn_core::id::evenly_spaced_ids;
    use swn_core::invariants::make_sorted_ring;
    use swn_core::node::Node;

    #[test]
    fn sorted_ring_sits_at_goal_rank() {
        let ids = evenly_spaced_ids(4);
        let nodes = make_sorted_ring(&ids, ProtocolConfig::default());
        let snap = Snapshot::new(nodes, vec![Vec::new(); 4]);
        assert_eq!(rank_of(&snap), GOAL_RANK);
    }

    #[test]
    fn fresh_nodes_rank_strictly_above_goal() {
        let ids = evenly_spaced_ids(3);
        let nodes: Vec<Node> = ids
            .iter()
            .map(|&id| Node::new(id, ProtocolConfig::default()))
            .collect();
        let snap = Snapshot::new(nodes, vec![Vec::new(); 3]);
        let r = rank_of(&snap);
        assert!(r > GOAL_RANK, "{r:?}");
        assert_eq!(r[0], 3, "three isolated components");
    }
}
