//! Property-based tests (proptest) over the core data structures and the
//! protocol's key invariants.

use proptest::prelude::*;
use self_stabilizing_smallworld::prelude::*;
use swn_core::forget::{phi, survival};
use swn_core::invariants::UnionFind;
use swn_core::node::Node;
use swn_core::views::Snapshot;
use swn_sim::init::generate;
use swn_topology::connectivity::weak_components;
use swn_topology::distribution::{harmonic_cdf, ks_to_harmonic};
use swn_topology::paths::{bfs_distances, ring_distance};

proptest! {
    #[test]
    fn node_id_order_matches_bit_order(a: u64, b: u64) {
        let (x, y) = (NodeId::from_bits(a), NodeId::from_bits(b));
        prop_assert_eq!(x < y, a < b);
        prop_assert_eq!(x == y, a == b);
        // Extended embeds the order and the sentinels bound everything.
        prop_assert_eq!(Extended::Fin(x) < Extended::Fin(y), a < b);
        prop_assert!(Extended::NegInf < x);
        prop_assert!(x < Extended::PosInf);
    }

    #[test]
    fn phi_is_always_a_probability(alpha in 0u64..1_000_000, eps in 0.001f64..4.0) {
        let p = phi(alpha, eps);
        prop_assert!((0.0..=1.0).contains(&p));
        if alpha <= 2 {
            prop_assert_eq!(p, 0.0);
        }
    }

    #[test]
    fn survival_is_monotone_in_alpha(alpha in 1u64..2000, eps in 0.01f64..1.0) {
        prop_assert!(survival(alpha, eps) >= survival(alpha + 1, eps) - 1e-15);
    }

    #[test]
    fn linearize_conserves_identifiers(
        l_bits in proptest::option::of(0u64..u64::MAX / 2),
        r_bits in proptest::option::of(u64::MAX / 2 + 2..u64::MAX),
        lrl_bits: u64,
        incoming: u64,
    ) {
        // A node at the midpoint with arbitrary legal neighbours and an
        // arbitrary lrl. Any incoming id must be stored or forwarded —
        // never silently dropped (the CC-connectivity invariant,
        // Lemma 4.10).
        let me = NodeId::from_bits(u64::MAX / 2 + 1);
        let id = NodeId::from_bits(incoming);
        let node = Node::with_state(
            me,
            l_bits.map(|b| Extended::Fin(NodeId::from_bits(b))).unwrap_or(Extended::NegInf),
            r_bits.map(|b| Extended::Fin(NodeId::from_bits(b))).unwrap_or(Extended::PosInf),
            NodeId::from_bits(lrl_bits),
            None,
            ProtocolConfig::default(),
        );
        let mut node = node;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut out = swn_core::outbox::Outbox::new();
        node.on_message(Message::Lin(id), &mut rng, &mut out);
        if id != me {
            let stored = node.left() == id || node.right() == id;
            let forwarded = out
                .sends()
                .iter()
                .any(|(_, m)| matches!(m, Message::Lin(v) if *v == id));
            prop_assert!(stored || forwarded, "id dropped by linearize");
        }
        // Displaced neighbours must also survive (stored or forwarded).
        for old in l_bits.into_iter().chain(r_bits) {
            let old = NodeId::from_bits(old);
            let still_stored = node.left() == old || node.right() == old;
            let forwarded = out
                .sends()
                .iter()
                .any(|(_, m)| matches!(m, Message::Lin(v) if *v == old));
            prop_assert!(still_stored || forwarded, "old neighbour dropped");
        }
    }

    #[test]
    fn sanitize_restores_typed_invariants(
        l_bits: u64, r_bits: u64, lrl_bits: u64, ring_bits in proptest::option::of(any::<u64>())
    ) {
        // From ANY variable contents, one action restores l < id < r.
        let me = NodeId::from_bits(u64::MAX / 3);
        let mut node = Node::with_state(
            me,
            Extended::Fin(NodeId::from_bits(l_bits)),
            Extended::Fin(NodeId::from_bits(r_bits)),
            NodeId::from_bits(lrl_bits),
            ring_bits.map(NodeId::from_bits),
            ProtocolConfig::default(),
        );
        let mut out = swn_core::outbox::Outbox::new();
        node.on_regular(&mut out);
        if let Extended::Fin(l) = node.left() {
            prop_assert!(l < me);
        }
        if let Extended::Fin(r) = node.right() {
            prop_assert!(r > me);
        }
    }

    #[test]
    fn union_find_agrees_with_bfs(
        n in 2usize..60,
        edges in proptest::collection::vec((0usize..60, 0usize..60), 0..120)
    ) {
        let edges: Vec<(usize, usize)> = edges
            .into_iter()
            .map(|(a, b)| (a % n, b % n))
            .collect();
        let mut uf = UnionFind::new(n);
        for &(a, b) in &edges {
            uf.union(a, b);
        }
        let g = Graph::from_edges(n, &edges);
        let (_, comps) = weak_components(&g);
        prop_assert_eq!(uf.components(), comps);
    }

    #[test]
    fn ring_distance_is_a_metric(a in 0usize..500, b in 0usize..500, c in 0usize..500) {
        let n = 500;
        prop_assert_eq!(ring_distance(a, b, n), ring_distance(b, a, n));
        prop_assert_eq!(ring_distance(a, a, n), 0);
        prop_assert!(ring_distance(a, b, n) <= n / 2);
        prop_assert!(
            ring_distance(a, c, n) <= ring_distance(a, b, n) + ring_distance(b, c, n)
        );
    }

    #[test]
    fn harmonic_cdf_is_a_cdf(max_d in 1usize..4000) {
        let cdf = harmonic_cdf(max_d);
        prop_assert_eq!(cdf.len(), max_d);
        prop_assert!((cdf[max_d - 1] - 1.0).abs() < 1e-9);
        for w in cdf.windows(2) {
            prop_assert!(w[0] < w[1] + 1e-15);
        }
    }

    #[test]
    fn ks_is_bounded(lengths in proptest::collection::vec(1usize..100, 0..200)) {
        let ks = ks_to_harmonic(&lengths, 100);
        prop_assert!((0.0..=1.0).contains(&ks));
    }

    #[test]
    fn greedy_routing_on_intact_ring_always_arrives(
        n in 4usize..120,
        shortcuts in proptest::collection::vec((0usize..120, 0usize..120), 0..30),
        s in 0usize..120,
        t in 0usize..120,
    ) {
        let (s, t) = (s % n, t % n);
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
            g.add_edge((i + 1) % n, i);
        }
        for (u, v) in shortcuts {
            g.add_edge(u % n, v % n);
        }
        // With the bidirectional ring intact, greedy always has a strictly
        // improving neighbour, so it must arrive within n/2 + 1 hops...
        match greedy_route(&g, s, t, u32::try_from(n).expect("n fits u32")) {
            RouteResult::Arrived(h) => prop_assert!(h as usize <= n / 2),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    #[test]
    fn bfs_distances_obey_triangle_on_edges(
        n in 2usize..40,
        edges in proptest::collection::vec((0usize..40, 0usize..40), 1..80)
    ) {
        let edges: Vec<(usize, usize)> = edges.into_iter().map(|(a, b)| (a % n, b % n)).collect();
        let g = Graph::from_edges(n, &edges);
        let d = bfs_distances(&g, 0);
        for (u, v) in g.edges() {
            if d[u] != u32::MAX {
                prop_assert!(d[v] <= d[u] + 1, "edge ({u},{v}) violates BFS triangle");
            }
        }
    }

    #[test]
    fn generated_initial_states_are_weakly_connected(
        n in 2usize..40,
        seed: u64,
        family_idx in 0usize..8,
    ) {
        let family = InitialTopology::ALL[family_idx];
        let ids = evenly_spaced_ids(n);
        let net = generate(family, &ids, ProtocolConfig::default(), seed).into_network(seed);
        prop_assert!(weakly_connected(&net.snapshot(), View::Cc));
    }

    #[test]
    fn small_networks_always_stabilize(n in 2usize..14, seed: u64) {
        // The headline theorem, property-tested at exhaustive-ish scale:
        // arbitrary random weakly connected starts always reach the ring.
        let ids = evenly_spaced_ids(n);
        let mut net = generate(
            InitialTopology::RandomSparse { extra: 2 },
            &ids,
            ProtocolConfig::default(),
            seed,
        )
        .into_network(seed);
        let report = run_to_ring(&mut net, 500_000);
        prop_assert!(report.stabilized());
        prop_assert!(report.monotone);
    }

    #[test]
    fn phase_predicates_monotone_along_random_fair_executions(
        n in 2usize..10,
        seed: u64,
        family_idx in 0usize..8,
        p_deliver in 0.2f64..1.0,
    ) {
        // The analyzer's monotone predicates, checked along *random*
        // fair executions rather than enumerated ones: under adversarial
        // bounded-delay asynchrony, weak CC-connectivity, the sorted
        // list and the sorted ring are never true in one round and false
        // in a later one. (LCC connectivity is excluded by design: a lin
        // edge legitimately leaves the linearization view while its
        // identifier rides an lrl/ring variable.)
        let family = InitialTopology::ALL[family_idx];
        let ids = evenly_spaced_ids(n);
        let mut net = generate(family, &ids, ProtocolConfig::default(), seed)
            .into_network_with_policy(
                seed,
                DeliveryPolicy::RandomDelay {
                    p_deliver,
                    max_delay: 8,
                },
            );
        let names = ["weakly_connected(Cc)", "is_sorted_list", "is_sorted_ring"];
        let mut seen = [false; 3];
        for round in 0..400u32 {
            let s = net.snapshot();
            let now = [
                weakly_connected(&s, View::Cc),
                is_sorted_list(&s),
                is_sorted_ring(&s),
            ];
            for k in 0..3 {
                prop_assert!(
                    now[k] || !seen[k],
                    "{} flipped true -> false by round {} ({:?}, n = {}, seed = {})",
                    names[k], round, family, n, seed
                );
                seen[k] = seen[k] || now[k];
            }
            net.step();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn probe_replay_on_stable_snapshots_never_repairs(
        n in 4usize..64,
        lrl_targets in proptest::collection::vec(0usize..64, 4..64),
    ) {
        // Any sorted ring with arbitrary (existing) lrl targets: probes
        // always arrive, never diverge, never repair (Theorem 4.3's stable
        // half, property-tested).
        use swn_harness::probe_walk::{replay_lrl_probe, ProbeOutcome};
        let ids = evenly_spaced_ids(n);
        let cfg = ProtocolConfig::default();
        let nodes: Vec<Node> = make_sorted_ring(&ids, cfg)
            .into_iter()
            .enumerate()
            .map(|(i, node)| {
                let t = lrl_targets.get(i).copied().unwrap_or(i) % n;
                Node::with_state(node.id(), node.left(), node.right(), ids[t], node.ring(), cfg)
            })
            .collect();
        let s = Snapshot::from_nodes(nodes);
        for i in 0..n {
            if let Some(outcome) = replay_lrl_probe(&s, i) {
                prop_assert!(
                    matches!(outcome, ProbeOutcome::Arrived { .. }),
                    "probe from {i}: {outcome:?}"
                );
            }
        }
    }
}

use rand::SeedableRng as _;
