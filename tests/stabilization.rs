//! Full-stack integration: the protocol + simulator + analysis crates
//! together reproduce the paper's headline theorem — stabilization from
//! any weakly connected initial state — across families, sizes and id
//! distributions.

use rand::rngs::StdRng;
use rand::SeedableRng;
use self_stabilizing_smallworld::prelude::*;
use swn_sim::init::generate;
use swn_topology::connectivity::{is_strongly_connected, is_weakly_connected};

fn stabilize(family: InitialTopology, ids: &[NodeId], seed: u64) -> (Network, ConvergenceReport) {
    let cfg = ProtocolConfig::default();
    let mut net = generate(family, ids, cfg, seed).into_network(seed);
    let report = run_to_ring(&mut net, 2_000_000);
    (net, report)
}

#[test]
fn every_family_stabilizes_with_random_ids() {
    let mut rng = StdRng::seed_from_u64(0xabc);
    let ids = random_ids(40, &mut rng);
    for family in InitialTopology::ALL {
        let (net, report) = stabilize(family, &ids, 17);
        assert!(
            report.stabilized(),
            "{} did not stabilize: {report:?}",
            family.label()
        );
        assert!(report.monotone, "{} regressed a phase", family.label());
        assert_eq!(classify(&net.snapshot()), Phase::SortedRing);
    }
}

#[test]
fn stabilized_network_has_strongly_connected_list() {
    let ids = evenly_spaced_ids(32);
    let (net, report) = stabilize(InitialTopology::Clique, &ids, 3);
    assert!(report.stabilized());
    let g = Graph::from_snapshot(&net.snapshot(), View::Lcp);
    // The sorted list's l/r pointers are mutual: strong connectivity.
    assert!(is_strongly_connected(&g));
}

#[test]
fn stability_is_preserved_indefinitely() {
    // Theorem 4.22's "maintains it forever": once stable, a long run of
    // continued protocol activity never breaks any phase property.
    let ids = evenly_spaced_ids(24);
    let (mut net, report) = stabilize(InitialTopology::RandomChain, &ids, 5);
    assert!(report.stabilized());
    for _ in 0..50 {
        net.run(20);
        assert_eq!(classify(&net.snapshot()), Phase::SortedRing);
    }
    // No probe ever repaired anything after stabilization.
    let after = usize::try_from(report.rounds_run).expect("rounds fit usize");
    let repairs_after: u64 = net.trace().rounds()[after..]
        .iter()
        .map(|r| r.probe_repairs)
        .sum();
    assert_eq!(repairs_after, 0, "probing repaired in the stable state");
}

#[test]
fn two_node_and_three_node_networks_stabilize() {
    for n in [2usize, 3] {
        let ids = evenly_spaced_ids(n);
        for family in [
            InitialTopology::RandomSparse { extra: 1 },
            InitialTopology::RandomChain,
        ] {
            let (net, report) = stabilize(family, &ids, 11);
            assert!(report.stabilized(), "n={n} {} failed", family.label());
            assert!(is_sorted_ring(&net.snapshot()));
        }
    }
}

#[test]
fn stabilizes_under_adversarial_message_delays() {
    let ids = evenly_spaced_ids(20);
    let cfg = ProtocolConfig::default();
    let init = generate(InitialTopology::Star, &ids, cfg, 9);
    let mut net = {
        let mut n = swn_sim::Network::with_policy(
            init.nodes,
            9,
            DeliveryPolicy::RandomDelay {
                p_deliver: 0.25,
                max_delay: 8,
            },
        );
        for (dest, msg) in init.preloads {
            n.preload(dest, msg);
        }
        n
    };
    let report = run_to_ring(&mut net, 2_000_000);
    assert!(
        report.stabilized(),
        "adversarial delays defeated stabilization: {report:?}"
    );
}

#[test]
fn long_range_links_spread_after_stabilization() {
    let ids = evenly_spaced_ids(64);
    let (mut net, _) = stabilize(InitialTopology::RandomSparse { extra: 2 }, &ids, 21);
    net.run(3000);
    let lengths = lrl_lengths(&net.snapshot());
    assert!(
        lengths.len() > 32,
        "tokens failed to spread: {}",
        lengths.len()
    );
    assert!(
        lengths.iter().any(|&d| d >= 4),
        "no long link ever formed: {lengths:?}"
    );
    // And the CP graph (ring + links) is weakly connected throughout.
    let g = Graph::from_snapshot(&net.snapshot(), View::Cp);
    assert!(is_weakly_connected(&g));
}

#[test]
fn greedy_routing_works_on_every_stabilized_family() {
    let ids = evenly_spaced_ids(48);
    for family in [
        InitialTopology::Star,
        InitialTopology::Clique,
        InitialTopology::TwoBlobs,
    ] {
        let (mut net, report) = stabilize(family, &ids, 33);
        assert!(report.stabilized());
        net.run(1500);
        let g = Graph::from_snapshot(&net.snapshot(), View::Cp);
        let stats = evaluate_routing(&g, 200, 2_000, 3, None);
        assert_eq!(
            stats.success_rate(),
            1.0,
            "{}: routing failures on a ring-backed graph",
            family.label()
        );
        assert!(
            stats.mean_hops < 24.0,
            "{}: {} hops",
            family.label(),
            stats.mean_hops
        );
    }
}

#[test]
fn messages_only_reference_existing_nodes_after_start() {
    // Compare-store-send sanity: in a static network, no message ever
    // names an identifier outside the membership.
    let ids = evenly_spaced_ids(16);
    let (mut net, _) = stabilize(InitialTopology::RandomChain, &ids, 2);
    net.run(100);
    let s = net.snapshot();
    for ch in s.channels() {
        for m in ch {
            for id in m.carried_ids() {
                assert!(s.index_of(id).is_some(), "message names unknown id {id}");
            }
        }
    }
    let dropped: u64 = net
        .trace()
        .rounds()
        .iter()
        .map(swn_sim::trace::RoundStats::dropped)
        .sum();
    assert_eq!(dropped, 0);
}
