//! A peer-to-peer overlay under churn: nodes join and leave while the
//! network keeps healing itself — the scenario the paper's introduction
//! motivates (overlays like CAN/Pastry/Chord, but self-stabilizing).
//!
//! ```text
//! cargo run --release --example overlay_churn
//! ```

use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use self_stabilizing_smallworld::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let cfg = ProtocolConfig::default();
    let n0 = 48;

    println!("== overlay under churn ==\n");

    // Bootstrap: a stable ring of n0 peers, warmed up so the long-range
    // links have spread.
    let ids = evenly_spaced_ids(n0);
    let mut net = Network::new(make_sorted_ring(&ids, cfg), 7);
    net.run(2000);
    println!(
        "bootstrapped {} peers, phase {:?}",
        net.len(),
        classify(&net.snapshot())
    );

    // Churn storm: alternate joins and leaves, measuring each recovery.
    let mut joins = 0u32;
    let mut leaves = 0u32;
    for event in 0u64..10 {
        if event.is_multiple_of(2) {
            // Join: a fresh peer contacts a random existing one.
            let existing = net.ids();
            let contact = existing[rng.random_range(0..existing.len())];
            let new_id = loop {
                let cand = NodeId::from_bits(rng.random::<u64>());
                if net.node(cand).is_none() {
                    break cand;
                }
            };
            let rep = join(&mut net, new_id, contact, 200_000);
            joins += 1;
            println!(
                "join  {:>8}  via {:>8}  -> recovered in {:>4} rounds, path {} nodes",
                format!("{new_id}"),
                format!("{contact}"),
                rep.rounds.expect("join recovery"),
                rep.path_nodes,
            );
        } else {
            let (victim, rep) = leave_random(&mut net, 1000 + event, 200_000);
            leaves += 1;
            println!(
                "leave {:>8}                 -> healed in  {:>4} rounds, {} messages",
                format!("{victim}"),
                rep.rounds.expect("leave recovery"),
                rep.messages,
            );
        }
        assert!(is_sorted_ring(&net.snapshot()), "overlay must be healed");
    }

    println!(
        "\nfinal overlay: {} peers after {} joins / {} leaves, phase {:?}",
        net.len(),
        joins,
        leaves,
        classify(&net.snapshot())
    );

    // Routing still works over the churned overlay.
    let g = Graph::from_snapshot(&net.snapshot(), View::Cp);
    let stats = evaluate_routing(&g, 300, 10_000, 5, None);
    println!(
        "greedy routing after churn: success {:.0}%, mean {:.1} hops",
        100.0 * stats.success_rate(),
        stats.mean_hops
    );
}
