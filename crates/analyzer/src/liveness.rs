//! Liveness model checking: fair-cycle (livelock) detection, closure and
//! the ranking certificate, over the budgeted [`State`]/[`Stepper`]
//! graph.
//!
//! The safety explorer proves *monotonicity*: once a phase predicate
//! holds it never un-holds. That says nothing about whether executions
//! ever *reach* the sorted ring — a protocol that loops forever without
//! making progress passes every safety monitor. This module closes that
//! gap within the same small scope.
//!
//! **The graph.** Liveness runs on the very transition system the
//! safety search explores: per-node regular-action budgets, set-semantics
//! channels, one graph per randomness [`Policy`]. Budgets are what make
//! the graph finite, and they interact with fairness exactly right
//! rather than being an obstacle: a regular action strictly decreases
//! its node's budget, so **every cycle is delivery-only**, and on any
//! cycle where some node still has budget that node's regular action is
//! continuously enabled but never taken — the cycle is not weakly fair
//! and is correctly discarded. The fair cycles that remain are genuine
//! livelocks: message exchanges that sustain themselves forever.
//!
//! **Fairness.** An infinite execution is *weakly fair* when every
//! action that is continuously enabled is eventually taken: a budgeted
//! regular action stays enabled until taken, and a pending delivery
//! stays enabled until delivered (handlers only append to channels). In
//! a finite graph every infinite execution settles into one SCC,
//! visiting a subset of it infinitely often; a weakly fair one must take
//! every action enabled in *all* states it keeps visiting. Hence the
//! detector's SCC criterion: an SCC `C` supports a fair cycle iff every
//! action enabled in **every** state of `C` (the *obligations*) is
//! taken by some edge internal to `C`. If an obligation has no internal
//! edge, any run staying inside `C` starves a continuously enabled
//! action — not fair; conversely a tour of all of `C` taking each
//! obligation edge is a concrete fair lasso cycle, which
//! [`validate_lasso`] re-checks by replay, independently of the graph.
//!
//! **Convergence** (`--mode liveness`) reports two facts per scope:
//! no fair SCC contains a non-goal state (goal = `is_sorted_ring`) —
//! livelock-freedom, the genuinely new liveness content — and how many
//! terminal (quiescent) states are goal vs. budget-starved. A terminal
//! non-goal state means the scope's budget ran out mid-stabilization,
//! which is a scope artifact, reported separately and *not* conflated
//! with a livelock. A livelock violation is reported as a minimized
//! lasso — stem from the BFS tree, cycle from an obligation-covering
//! tour — and replayed before it is believed.
//!
//! **Closure** (`--mode closure`) is the dual: from the canonical
//! sorted-ring state with a fresh budget, every reachable state must
//! still be sorted-ring — the ring's self-inflicted chatter (token
//! walk, adverts, probes and their responses) never degrades the
//! pointer structure. The stricter `is_ring_stable_config` (ring *plus*
//! only declared benign traffic) is tallied alongside.
//!
//! **Ranking** (`--mode ranking`) checks the certificate of
//! [`crate::ranking`]: the potential is non-increasing on every edge,
//! goal states sit at [`GOAL_RANK`](crate::ranking::GOAL_RANK), and the
//! equal-rank (stutter) subgraph supports no fair cycle through a
//! non-goal state. Since a cycle of a non-increasing potential is
//! rank-constant, those three local checks are exactly what a ranking
//! argument for convergence owes within the scope — and the per-edge
//! part is a transition-local property whose validity is independent of
//! the budget that bounded the search.
//!
//! States are identified by the canonical symmetry key of
//! [`crate::symmetry`] (id-rank renaming, age saturation), so the graph
//! is the symmetry quotient; a violation found in the quotient replays
//! concretely because steppers and handlers are order-, not
//! value-sensitive in identifiers.

use crate::explore::fingerprint;
use crate::minimize::{minimize_lasso, minimize_with};
use crate::ranking::{rank_of, Rank, GOAL_RANK};
use crate::state::{decode_msg, msg_code, State, Transition};
use crate::stepper::{Policy, Stepper};
use crate::symmetry::canonical_key;
// lint: allow(determinism) — fingerprint-keyed lookup tables; iteration order is never observed.
use std::collections::{HashMap, VecDeque};
use swn_core::invariants::{is_ring_stable_config, is_sorted_ring};
use swn_core::views::Snapshot;

/// Packs a transition into a `u64` edge label. Labels are stable across
/// the whole graph (the node vector's order never changes), so equal
/// labels on different states are the *same action* — which is exactly
/// what the fairness obligations compare.
pub fn pack_label(s: &State, t: &Transition) -> u64 {
    match *t {
        Transition::Regular { node } => node as u64,
        Transition::Deliver { dest, ref msg } => {
            let [k, a, b] = msg_code(&s.nodes, msg);
            (1 << 32) | ((dest as u64) << 24) | (k << 16) | (a << 8) | b
        }
    }
}

/// Inverse of [`pack_label`].
pub fn unpack_label(s: &State, label: u64) -> Transition {
    if label & (1 << 32) == 0 {
        Transition::Regular {
            node: usize::try_from(label).expect("packed node index"),
        }
    } else {
        let dest = usize::try_from((label >> 24) & 0xff).expect("packed dest index");
        let code = [(label >> 16) & 0xff, (label >> 8) & 0xff, label & 0xff];
        Transition::Deliver {
            dest,
            msg: decode_msg(&s.nodes, code),
        }
    }
}

/// Fingerprint of the canonical symmetry key, budgets included — the
/// budget vector is part of the budgeted model's state, and a lasso
/// cycle closes only when it returns with budgets intact (which forces
/// cycles to be delivery-only, as they must be).
fn graph_fp(s: &State) -> u128 {
    fingerprint(&canonical_key(s, true))
}

/// The explicit state graph liveness analyses run on: every reachable
/// canonical state of the budgeted model with every enabled transition
/// as a labelled edge.
pub struct FairGraph {
    /// The root configuration, budgets included — they bound the scope.
    pub initial: State,
    /// Randomness policy the graph was built under.
    pub policy: Policy,
    /// `edges[v]` = `(label, target)` for every enabled transition of
    /// `v`; the out-label set of `v` *is* its enabled set.
    pub edges: Vec<Vec<(u64, u32)>>,
    /// BFS tree: `(parent, label)` per state; the root points at itself.
    pub parent: Vec<(u32, u64)>,
    /// `is_sorted_ring` per state — the liveness goal.
    pub goal: Vec<bool>,
    /// `is_ring_stable_config` per state — ring plus only declared
    /// benign chatter (the closure-mode refinement).
    pub stable: Vec<bool>,
    /// Ranking potential per state.
    pub rank: Vec<Rank>,
    /// True once the state's full out-edge list is in `edges`. An
    /// unexpanded state (truncation frontier) has no out-edges *in the
    /// graph* but is not terminal in the model.
    pub expanded: Vec<bool>,
    /// True when `max_states` stopped the construction; every analysis
    /// on a truncated graph is reported as non-exhaustive.
    pub truncated: bool,
}

impl FairGraph {
    /// Breadth-first construction of the reachable quotient of the
    /// budgeted model under `stepper` and `policy`.
    pub fn build(
        initial: &State,
        stepper: &dyn Stepper,
        policy: Policy,
        max_states: usize,
    ) -> FairGraph {
        let mut g = FairGraph {
            initial: initial.clone(),
            policy,
            edges: Vec::new(),
            parent: Vec::new(),
            goal: Vec::new(),
            stable: Vec::new(),
            rank: Vec::new(),
            expanded: Vec::new(),
            truncated: false,
        };
        // lint: allow(determinism) — lookup-only fingerprint table.
        let mut index: HashMap<u128, u32> = HashMap::new();
        let mut queue: VecDeque<(u32, State)> = VecDeque::new();
        index.insert(graph_fp(initial), 0);
        g.push_state(initial);
        g.parent.push((0, u64::MAX));
        queue.push_back((0, initial.clone()));
        'bfs: while let Some((v, s)) = queue.pop_front() {
            for t in s.enabled() {
                let a = s
                    .apply(stepper, policy, &t)
                    .expect("enabled transitions apply");
                let fp = graph_fp(&a.next);
                let label = pack_label(&s, &t);
                let w = if let Some(&w) = index.get(&fp) {
                    w
                } else {
                    if g.edges.len() >= max_states {
                        g.truncated = true;
                        // Drop the partial expansion: a state with only
                        // *some* of its out-edges would under-approximate
                        // its enabled set, and the fairness obligations
                        // (= intersection of enabled sets) would be
                        // unsound. With the partial list cleared, `v` is
                        // a dead end and can never join a cycle, so every
                        // SCC the sweep reports is built purely from
                        // fully-expanded states — a violation found in a
                        // truncated graph is still a real fair lasso.
                        g.edges[v as usize].clear();
                        break 'bfs;
                    }
                    // max_states bounds the graph well under u32::MAX.
                    #[allow(clippy::cast_possible_truncation)]
                    let w = g.edges.len() as u32;
                    index.insert(fp, w);
                    g.push_state(&a.next);
                    g.parent.push((v, label));
                    queue.push_back((w, a.next));
                    w
                };
                g.edges[v as usize].push((label, w));
            }
            g.expanded[v as usize] = true;
        }
        g
    }

    fn push_state(&mut self, s: &State) {
        let snap = Snapshot::new(s.nodes.clone(), s.channels.clone());
        self.goal.push(is_sorted_ring(&snap));
        self.stable.push(is_ring_stable_config(&snap));
        self.rank.push(rank_of(&snap));
        self.expanded.push(false);
        self.edges.push(Vec::new());
    }

    /// True when `v` is quiescent in the *model* — fully expanded with
    /// no enabled transition (budgets spent, channels drained) — as
    /// opposed to an unexpanded truncation-frontier state.
    pub fn is_terminal(&self, v: u32) -> bool {
        self.expanded[v as usize] && self.edges[v as usize].is_empty()
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when the graph holds no states (never after `build`).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// The BFS-tree schedule from the root to `v`.
    pub fn stem_to(&self, v: u32) -> Vec<Transition> {
        let mut labels = Vec::new();
        let mut cur = v;
        while cur != 0 {
            let (p, label) = self.parent[cur as usize];
            labels.push(label);
            cur = p;
        }
        labels.reverse();
        labels
            .into_iter()
            .map(|l| unpack_label(&self.initial, l))
            .collect()
    }
}

/// Iterative Tarjan: strongly connected components of `edges`.
/// Returns the component id per vertex (ids in reverse topological
/// order of discovery) and the component count.
fn tarjan(edges: &[Vec<(u64, u32)>]) -> (Vec<u32>, u32) {
    const UNSET: u32 = u32::MAX;
    let n = edges.len();
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0u32; n];
    let mut comp = vec![UNSET; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut call: Vec<(u32, usize)> = Vec::new();
    let mut next_index = 0u32;
    let mut comp_count = 0u32;
    // Vertex ids are u32 by construction (max_states bounds the graph).
    #[allow(clippy::cast_possible_truncation)]
    for root in 0..n as u32 {
        if index[root as usize] != UNSET {
            continue;
        }
        call.push((root, 0));
        while let Some(&(v, ei)) = call.last() {
            let vu = v as usize;
            if ei == 0 {
                index[vu] = next_index;
                lowlink[vu] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[vu] = true;
            }
            if let Some(&(_, w)) = edges[vu].get(ei) {
                call.last_mut().expect("nonempty").1 += 1;
                let wu = w as usize;
                if index[wu] == UNSET {
                    call.push((w, 0));
                } else if on_stack[wu] {
                    lowlink[vu] = lowlink[vu].min(index[wu]);
                }
            } else {
                if lowlink[vu] == index[vu] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp[w as usize] = comp_count;
                        if w == v {
                            break;
                        }
                    }
                    comp_count += 1;
                }
                call.pop();
                if let Some(&(u, _)) = call.last() {
                    let uu = u as usize;
                    lowlink[uu] = lowlink[uu].min(lowlink[vu]);
                }
            }
        }
    }
    (comp, comp_count)
}

/// Sorted, deduplicated out-label set of `v` — its enabled actions.
fn out_labels(edges: &[Vec<(u64, u32)>], v: u32) -> Vec<u64> {
    let mut ls: Vec<u64> = edges[v as usize].iter().map(|e| e.0).collect();
    ls.sort_unstable();
    ls.dedup();
    ls
}

/// A fair SCC containing a non-goal state, with everything lasso
/// construction needs.
struct FairBadScc {
    /// Members of the component.
    members: Vec<u32>,
    /// Actions enabled in every member (must all appear on internal
    /// cycle edges for the component to be fair).
    obligations: Vec<u64>,
    /// A non-goal member with the smallest BFS index (shortest stem).
    bad: u32,
}

/// Outcome of the SCC sweep over one candidate cycle-edge relation.
struct SccSweep {
    comp_count: usize,
    max_size: usize,
    /// Nontrivial components whose obligations are all internally
    /// available — each supports a fair cycle.
    fair_nontrivial: usize,
    /// The first (shallowest witness) fair component with a non-goal
    /// state, if any.
    violation: Option<FairBadScc>,
}

/// SCC + fairness sweep. `cycle_edges` is the relation cycles may use
/// (the full graph for convergence, the equal-rank subgraph for the
/// stutter check); `full_edges` always supplies the enabled sets for the
/// obligations — fairness is about what *could* fire, not what the
/// restricted relation kept.
fn sweep_fair_sccs(
    cycle_edges: &[Vec<(u64, u32)>],
    full_edges: &[Vec<(u64, u32)>],
    goal: &[bool],
) -> SccSweep {
    let (comp, comp_count) = tarjan(cycle_edges);
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); comp_count as usize];
    // Vertex ids are u32 by construction (max_states bounds the graph).
    #[allow(clippy::cast_possible_truncation)]
    for v in 0..comp.len() as u32 {
        members[comp[v as usize] as usize].push(v);
    }
    let mut sweep = SccSweep {
        comp_count: comp_count as usize,
        max_size: members.iter().map(Vec::len).max().unwrap_or(0),
        fair_nontrivial: 0,
        violation: None,
    };
    for (cid, ms) in members.iter().enumerate() {
        let nontrivial =
            ms.len() > 1 || cycle_edges[ms[0] as usize].iter().any(|&(_, w)| w == ms[0]);
        if !nontrivial {
            continue;
        }
        let mut obligations = out_labels(full_edges, ms[0]);
        for &v in &ms[1..] {
            let here = out_labels(full_edges, v);
            obligations.retain(|l| here.binary_search(l).is_ok());
            if obligations.is_empty() {
                break;
            }
        }
        let internal: Vec<u64> = {
            let mut ls: Vec<u64> = ms
                .iter()
                .flat_map(|&v| cycle_edges[v as usize].iter())
                .filter(|&&(_, w)| comp[w as usize] as usize == cid)
                .map(|&(l, _)| l)
                .collect();
            ls.sort_unstable();
            ls.dedup();
            ls
        };
        let fair = obligations
            .iter()
            .all(|l| internal.binary_search(l).is_ok());
        if !fair {
            continue;
        }
        sweep.fair_nontrivial += 1;
        if let Some(&bad) = ms.iter().filter(|&&v| !goal[v as usize]).min() {
            let better = sweep.violation.as_ref().is_none_or(|prev| bad < prev.bad);
            if better {
                sweep.violation = Some(FairBadScc {
                    members: ms.clone(),
                    obligations,
                    bad,
                });
            }
        }
    }
    sweep
}

/// Shortest path inside one component of `cycle_edges` from `from` to
/// `to` (`from == to` gives the empty path), as `(label, target)` hops.
fn path_within(
    cycle_edges: &[Vec<(u64, u32)>],
    members: &[u32],
    from: u32,
    to: u32,
) -> Vec<(u64, u32)> {
    if from == to {
        return Vec::new();
    }
    // lint: allow(determinism) — membership + BFS parent lookups only.
    let mut parent: HashMap<u32, (u32, u64)> = HashMap::new();
    let member = |v: u32| members.binary_search(&v).is_ok();
    let mut queue = VecDeque::new();
    queue.push_back(from);
    'bfs: while let Some(v) = queue.pop_front() {
        for &(l, w) in &cycle_edges[v as usize] {
            if !member(w) || w == from || parent.contains_key(&w) {
                continue;
            }
            parent.insert(w, (v, l));
            if w == to {
                break 'bfs;
            }
            queue.push_back(w);
        }
    }
    let mut hops = Vec::new();
    let mut cur = to;
    while cur != from {
        let &(p, l) = parent
            .get(&cur)
            .expect("SCC members are mutually reachable");
        hops.push((l, cur));
        cur = p;
    }
    hops.reverse();
    hops
}

/// A concrete non-converging fair execution: finite `stem` from the
/// initial state, then `cycle` repeated forever.
#[derive(Clone, Debug)]
pub struct Lasso {
    /// Schedule from the initial state to the cycle's anchor state.
    pub stem: Vec<Transition>,
    /// Schedule that returns to the anchor, is weakly fair, and visits a
    /// non-goal state.
    pub cycle: Vec<Transition>,
}

/// Builds a concrete cycle through `scc.bad`: a tour visiting **every**
/// member (so any action enabled on the whole tour is enabled on the
/// whole component, i.e. an obligation) and taking every obligation
/// edge, closed back to the anchor.
fn build_cycle(cycle_edges: &[Vec<(u64, u32)>], scc: &FairBadScc) -> Vec<(u64, u32)> {
    fn append_hops(seq: &mut Vec<(u64, u32)>, cur: &mut u32, hops: Vec<(u64, u32)>) {
        for (l, w) in hops {
            *cur = w;
            seq.push((l, w));
        }
    }
    let mut members = scc.members.clone();
    members.sort_unstable();
    let anchor = scc.bad;
    let mut seq: Vec<(u64, u32)> = Vec::new();
    let mut cur = anchor;
    for &m in &members {
        let hops = path_within(cycle_edges, &members, cur, m);
        append_hops(&mut seq, &mut cur, hops);
    }
    for &obl in &scc.obligations {
        if seq.iter().any(|&(l, _)| l == obl) {
            continue;
        }
        let (src, tgt) = members
            .iter()
            .find_map(|&v| {
                cycle_edges[v as usize]
                    .iter()
                    .find(|&&(l, w)| l == obl && members.binary_search(&w).is_ok())
                    .map(|&(_, w)| (v, w))
            })
            .expect("fair SCC has an internal edge per obligation");
        let hops = path_within(cycle_edges, &members, cur, src);
        append_hops(&mut seq, &mut cur, hops);
        append_hops(&mut seq, &mut cur, vec![(obl, tgt)]);
    }
    let hops = path_within(cycle_edges, &members, cur, anchor);
    append_hops(&mut seq, &mut cur, hops);
    if seq.is_empty() {
        // Single state with a self-loop: the loop is the cycle.
        let &(l, w) = cycle_edges[anchor as usize]
            .iter()
            .find(|&&(_, w)| w == anchor)
            .expect("nontrivial singleton has a self-loop");
        seq.push((l, w));
    }
    seq
}

/// Replays `trace`, returning every configuration along the way
/// (`result[0]` is `initial`); `None` when a transition is not enabled.
pub fn replay_states(
    initial: &State,
    stepper: &dyn Stepper,
    policy: Policy,
    trace: &[Transition],
) -> Option<Vec<State>> {
    let mut states = vec![initial.clone()];
    for t in trace {
        let a = states.last().expect("nonempty").apply(stepper, policy, t)?;
        states.push(a.next);
    }
    Some(states)
}

/// Replay-validates a lasso independently of the graph: the stem
/// replays, the cycle replays and returns to its anchor (canonical
/// symmetry key, budgets included), visits a non-goal state, and is
/// weakly fair — every action enabled in all of its states is taken by
/// it. Budget equality at the anchor means a valid cycle spends no
/// budget, i.e. it is delivery-only.
pub fn validate_lasso(
    initial: &State,
    stepper: &dyn Stepper,
    policy: Policy,
    stem: &[Transition],
    cycle: &[Transition],
) -> bool {
    if cycle.is_empty() {
        return false;
    }
    let Some(stem_states) = replay_states(initial, stepper, policy, stem) else {
        return false;
    };
    let anchor = stem_states.last().expect("nonempty");
    let Some(cycle_states) = replay_states(anchor, stepper, policy, cycle) else {
        return false;
    };
    if graph_fp(cycle_states.last().expect("nonempty")) != graph_fp(anchor) {
        return false;
    }
    let on_cycle = &cycle_states[..cycle_states.len() - 1];
    let some_non_goal = on_cycle
        .iter()
        .any(|s| !is_sorted_ring(&Snapshot::new(s.nodes.clone(), s.channels.clone())));
    if !some_non_goal {
        return false;
    }
    let mut obligations = out_label_set_of(initial, &on_cycle[0]);
    for s in &on_cycle[1..] {
        let here = out_label_set_of(initial, s);
        obligations.retain(|l| here.binary_search(l).is_ok());
    }
    let taken: Vec<u64> = cycle.iter().map(|t| pack_label(initial, t)).collect();
    obligations.iter().all(|l| taken.contains(l))
}

/// Sorted enabled-action labels of `s` (labels are node-vector relative,
/// so any state of the run can carry the encoding context).
fn out_label_set_of(ctx: &State, s: &State) -> Vec<u64> {
    let mut ls: Vec<u64> = s.enabled().iter().map(|t| pack_label(ctx, t)).collect();
    ls.sort_unstable();
    ls.dedup();
    ls
}

/// Verdict of the convergence (fair-cycle) analysis.
#[derive(Clone, Debug)]
pub struct ConvergenceReport {
    /// Reachable states of the budgeted model.
    pub states: usize,
    /// Edges of the graph.
    pub edges: usize,
    /// True when the state cap stopped construction (no verdict).
    pub truncated: bool,
    /// States satisfying the goal predicate.
    pub goal_states: usize,
    /// Terminal (quiescent) states: budgets spent, channels drained.
    pub terminals: usize,
    /// Terminal states that are *not* the sorted ring — executions the
    /// scope's budget cut off mid-stabilization. A scope artifact, kept
    /// apart from livelocks: growing the budget shrinks this number,
    /// while a livelock survives every budget.
    pub terminal_nongoal: usize,
    /// Strongly connected components.
    pub scc_count: usize,
    /// Largest component size.
    pub max_scc: usize,
    /// Nontrivial components supporting a fair cycle.
    pub fair_sccs: usize,
    /// A minimized, replay-validated non-converging lasso, if any.
    pub counterexample: Option<Lasso>,
}

impl ConvergenceReport {
    /// True when the analysis was exhaustive and found no fair cycle
    /// through a non-goal state: no execution in scope can loop forever
    /// outside the sorted ring.
    pub fn livelock_free(&self) -> bool {
        !self.truncated && self.counterexample.is_none()
    }

    /// [`Self::livelock_free`] *and* every quiescent execution actually
    /// reached the ring — the strongest convergence statement the scope
    /// supports (it fails when the budget is too small to finish
    /// stabilizing, not only when the protocol is wrong).
    pub fn converges(&self) -> bool {
        self.livelock_free() && self.terminal_nongoal == 0
    }
}

/// Runs the fair-cycle detector over a built graph.
///
/// # Panics
/// Panics if an extracted counterexample fails replay validation — that
/// would mean the detector and the protocol semantics disagree, which is
/// a checker bug, never a protocol bug.
pub fn check_convergence(g: &FairGraph, stepper: &dyn Stepper) -> ConvergenceReport {
    let sweep = sweep_fair_sccs(&g.edges, &g.edges, &g.goal);
    let counterexample = sweep.violation.as_ref().map(|scc| {
        let lasso = extract_lasso(g, stepper, &g.edges, scc);
        assert!(
            validate_lasso(&g.initial, stepper, g.policy, &lasso.stem, &lasso.cycle),
            "minimized lasso must replay as a fair non-goal cycle"
        );
        lasso
    });
    // Vertex ids are u32 by construction (max_states bounds the graph).
    #[allow(clippy::cast_possible_truncation)]
    let terminal: Vec<u32> = (0..g.len() as u32).filter(|&v| g.is_terminal(v)).collect();
    ConvergenceReport {
        states: g.len(),
        edges: g.edge_count(),
        truncated: g.truncated,
        goal_states: g.goal.iter().filter(|&&b| b).count(),
        terminals: terminal.len(),
        terminal_nongoal: terminal.iter().filter(|&&v| !g.goal[v as usize]).count(),
        scc_count: sweep.comp_count,
        max_scc: sweep.max_size,
        fair_sccs: sweep.fair_nontrivial,
        counterexample,
    }
}

/// Stem from the BFS tree + obligation-covering tour, then independent
/// stem/cycle shrinking under replay validation.
fn extract_lasso(
    g: &FairGraph,
    stepper: &dyn Stepper,
    cycle_edges: &[Vec<(u64, u32)>],
    scc: &FairBadScc,
) -> Lasso {
    let stem = g.stem_to(scc.bad);
    let cycle: Vec<Transition> = build_cycle(cycle_edges, scc)
        .into_iter()
        .map(|(l, _)| unpack_label(&g.initial, l))
        .collect();
    assert!(
        validate_lasso(&g.initial, stepper, g.policy, &stem, &cycle),
        "raw lasso must replay before minimization"
    );
    let valid = |stem: &[Transition], cycle: &[Transition]| {
        validate_lasso(&g.initial, stepper, g.policy, stem, cycle)
    };
    let (stem, cycle) = minimize_lasso(&stem, &cycle, &valid);
    Lasso { stem, cycle }
}

/// Verdict of the closure analysis: the ring region is invariant under
/// the fair dynamics.
#[derive(Clone, Debug)]
pub struct ClosureReport {
    /// Reachable states (from the sorted-ring seed).
    pub states: usize,
    /// Edges of the graph.
    pub edges: usize,
    /// True when the state cap stopped construction (no verdict).
    pub truncated: bool,
    /// States still satisfying `is_sorted_ring` (closure demands all).
    pub ring_states: usize,
    /// States also satisfying the stricter `is_ring_stable_config`.
    pub stable_states: usize,
    /// Minimized schedule from the ring seed to a non-ring state.
    pub escape: Option<Vec<Transition>>,
}

impl ClosureReport {
    /// True when the analysis was exhaustive and the ring never broke.
    pub fn closed(&self) -> bool {
        !self.truncated && self.escape.is_none()
    }
}

/// Checks closure on a graph built from a sorted-ring seed.
pub fn check_closure(g: &FairGraph, stepper: &dyn Stepper) -> ClosureReport {
    let escape = g.goal.iter().position(|&ok| !ok).map(|bad| {
        // Vertex ids are u32 by construction (max_states bounds the graph).
        #[allow(clippy::cast_possible_truncation)]
        let stem = g.stem_to(bad as u32);
        let escapes = |trace: &[Transition]| {
            replay_states(&g.initial, stepper, g.policy, trace).is_some_and(|states| {
                let last = states.last().expect("nonempty");
                !is_sorted_ring(&Snapshot::new(last.nodes.clone(), last.channels.clone()))
            })
        };
        minimize_with(&stem, &escapes)
    });
    ClosureReport {
        states: g.len(),
        edges: g.edge_count(),
        truncated: g.truncated,
        ring_states: g.goal.iter().filter(|&&b| b).count(),
        stable_states: g.stable.iter().filter(|&&b| b).count(),
        escape,
    }
}

/// Verdict of the ranking-certificate analysis.
#[derive(Clone, Debug)]
pub struct RankingReport {
    /// Reachable states of the budgeted model.
    pub states: usize,
    /// Edges of the graph.
    pub edges: usize,
    /// True when the state cap stopped construction (no verdict).
    pub truncated: bool,
    /// True when the potential never increased on any edge.
    pub monotone: bool,
    /// A schedule ending in a rank-increasing transition, with the ranks
    /// around it.
    pub increase: Option<(Vec<Transition>, Rank, Rank)>,
    /// True when every goal state sits at `GOAL_RANK`.
    pub goal_at_minimum: bool,
    /// Fair SCCs of the equal-rank (stutter) subgraph — each is a fair
    /// cycle on which the potential is constant; all must be goal-only.
    pub stutter_fair_sccs: usize,
    /// A fair equal-rank cycle through a non-goal state (certificate
    /// failure), minimized and replay-validated.
    pub stutter_counterexample: Option<Lasso>,
}

impl RankingReport {
    /// True when the certificate holds exhaustively.
    pub fn certified(&self) -> bool {
        !self.truncated
            && self.monotone
            && self.goal_at_minimum
            && self.stutter_counterexample.is_none()
    }
}

/// Checks the ranking certificate over a built graph.
pub fn check_ranking(g: &FairGraph, stepper: &dyn Stepper) -> RankingReport {
    let mut increase = None;
    'scan: for v in 0..g.len() {
        for &(l, w) in &g.edges[v] {
            if g.rank[w as usize] > g.rank[v] {
                // Vertex ids are u32 by construction.
                #[allow(clippy::cast_possible_truncation)]
                let mut trace = g.stem_to(v as u32);
                trace.push(unpack_label(&g.initial, l));
                increase = Some((trace, g.rank[v], g.rank[w as usize]));
                break 'scan;
            }
        }
    }
    let goal_at_minimum = g
        .goal
        .iter()
        .zip(&g.rank)
        .all(|(&goal, &r)| !goal || r == GOAL_RANK);
    // Equal-rank subgraph: the only edges a rank-constant cycle can use.
    let stutter: Vec<Vec<(u64, u32)>> = (0..g.len())
        .map(|v| {
            g.edges[v]
                .iter()
                .copied()
                .filter(|&(_, w)| g.rank[w as usize] == g.rank[v])
                .collect()
        })
        .collect();
    let sweep = sweep_fair_sccs(&stutter, &g.edges, &g.goal);
    let stutter_counterexample = sweep.violation.as_ref().map(|scc| {
        let lasso = extract_lasso(g, stepper, &stutter, scc);
        assert!(
            validate_lasso(&g.initial, stepper, g.policy, &lasso.stem, &lasso.cycle),
            "minimized stutter lasso must replay"
        );
        lasso
    });
    RankingReport {
        states: g.len(),
        edges: g.edge_count(),
        truncated: g.truncated,
        monotone: increase.is_none(),
        increase,
        goal_at_minimum,
        stutter_fair_sccs: sweep.fair_nontrivial,
        stutter_counterexample,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::{livelock_demo_state, ring_state};
    use crate::stepper::{BounceLinStepper, RealStepper};

    #[test]
    fn tarjan_on_a_known_shape() {
        // 0 -> 1 -> 2 -> 1, 2 -> 3; SCCs: {0}, {1,2}, {3}.
        let edges: Vec<Vec<(u64, u32)>> =
            vec![vec![(0, 1)], vec![(1, 2)], vec![(2, 1), (3, 3)], vec![]];
        let (comp, count) = tarjan(&edges);
        assert_eq!(count, 3);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[0], comp[1]);
        assert_ne!(comp[3], comp[1]);
    }

    #[test]
    fn real_protocol_pair_is_livelock_free() {
        let s = crate::families::Family::Line.initial_state(2, 2, 1);
        let g = FairGraph::build(&s, &RealStepper, Policy::Zeros, 500_000);
        let report = check_convergence(&g, &RealStepper);
        assert!(report.livelock_free(), "fair sccs: {}", report.fair_sccs);
        assert!(report.goal_states > 0, "the pair must reach its ring");
        assert!(report.terminals > 0, "budgets exhaust, schedules quiesce");
    }

    #[test]
    fn bounce_mutant_produces_validated_lasso() {
        let s = livelock_demo_state();
        let g = FairGraph::build(&s, &BounceLinStepper, Policy::Zeros, 500_000);
        let report = check_convergence(&g, &BounceLinStepper);
        assert!(!g.truncated);
        let lasso = report.counterexample.expect("livelock must be detected");
        assert!(!lasso.cycle.is_empty());
        // Validation already ran inside check_convergence; re-assert the
        // replay here as the outermost end-to-end check.
        assert!(validate_lasso(
            &s,
            &BounceLinStepper,
            Policy::Zeros,
            &lasso.stem,
            &lasso.cycle
        ));
    }

    #[test]
    fn ring_pair_is_closed() {
        let s = ring_state(2, 2);
        let g = FairGraph::build(&s, &RealStepper, Policy::Zeros, 500_000);
        let report = check_closure(&g, &RealStepper);
        assert!(report.closed(), "escape: {:?}", report.escape);
        assert_eq!(report.ring_states, report.states);
    }

    #[test]
    fn labels_round_trip() {
        let s = livelock_demo_state();
        for t in s.enabled() {
            let l = pack_label(&s, &t);
            assert_eq!(unpack_label(&s, l), t);
        }
    }
}
