//! Static Kleinberg small worlds (STOC 2000) on the 1-D ring.
//!
//! The construction the self-stabilizing protocol converges to, built
//! directly: the cycle plus one long-range link per node whose length is
//! drawn from the 1-harmonic distribution. Also provides the *uniform*
//! shortcut variant, which by Kleinberg's lower bound does **not** admit
//! polylogarithmic greedy routing — the contrast baseline for experiment
//! E3.

use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use swn_topology::distribution::sample_harmonic;
use swn_topology::Graph;

/// The cycle on `n` ranks plus one directed harmonic long-range link per
/// node (link direction chosen uniformly, matching the ring symmetry of
/// the move-and-forget process).
pub fn kleinberg_ring(n: usize, seed: u64) -> Graph {
    assert!(n >= 4, "need at least 4 nodes, got {n}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = crate::ring_lattice::cycle(n);
    let max_d = n / 2;
    for i in 0..n {
        let target = loop {
            let d = sample_harmonic(max_d, &mut rng);
            let right = rng.random_bool(0.5);
            // For even n the two directions at d = n/2 name the same
            // (antipodal) node; accepting both would give it twice the
            // per-node harmonic weight, so one of them is rejected.
            if n.is_multiple_of(2) && d == max_d && !right {
                continue;
            }
            break if right { (i + d) % n } else { (i + n - d) % n };
        };
        g.add_edge(i, target);
    }
    g
}

/// The cycle plus one *uniformly random* long-range link per node — the
/// exponent-0 member of Kleinberg's family, with polynomial greedy
/// routing.
pub fn uniform_shortcut_ring(n: usize, seed: u64) -> Graph {
    assert!(n >= 4, "need at least 4 nodes, got {n}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = crate::ring_lattice::cycle(n);
    for i in 0..n {
        let mut t = rng.random_range(0..n);
        while t == i {
            t = rng.random_range(0..n);
        }
        g.add_edge(i, t);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use swn_topology::connectivity::is_weakly_connected;
    use swn_topology::paths::ring_distance;
    use swn_topology::routing::evaluate_routing;

    #[test]
    fn kleinberg_has_one_shortcut_per_node() {
        let g = kleinberg_ring(64, 1);
        // cycle m = 128 directed edges + ≤ 64 shortcuts (dedup may eat a
        // few that coincide with ring edges).
        assert!(g.m() > 128 && g.m() <= 192);
        assert!(is_weakly_connected(&g));
    }

    #[test]
    fn kleinberg_shortcut_lengths_are_harmonic() {
        let n = 1024;
        let g = kleinberg_ring(n, 7);
        let mut lengths = Vec::new();
        for u in 0..n {
            for &v in g.neighbors(u) {
                let d = ring_distance(u, v as usize, n);
                if d > 1 {
                    lengths.push(d);
                }
            }
        }
        let ks = swn_topology::distribution::ks_to_harmonic(&lengths, n / 2);
        // Lengths 2..n/2 of the harmonic law (length-1 samples merge into
        // ring edges): still close to the harmonic CDF.
        assert!(ks < 0.25, "KS = {ks}");
        let slope = swn_topology::distribution::log_log_slope(&lengths, n / 2).unwrap();
        assert!((-1.4..=-0.6).contains(&slope), "slope = {slope}");
    }

    #[test]
    fn harmonic_beats_uniform_at_greedy_routing() {
        let n = 4096;
        let harm = evaluate_routing(&kleinberg_ring(n, 3), 400, 10_000, 5, None);
        let unif = evaluate_routing(&uniform_shortcut_ring(n, 3), 400, 10_000, 5, None);
        assert_eq!(harm.success_rate(), 1.0);
        assert_eq!(unif.success_rate(), 1.0);
        assert!(
            harm.mean_hops * 1.5 < unif.mean_hops,
            "harmonic ({}) must clearly beat uniform ({})",
            harm.mean_hops,
            unif.mean_hops
        );
    }

    #[test]
    fn routing_scales_polylogarithmically() {
        // hops(4n)/hops(n) for polylog growth is ≈ (ln 4n / ln n)^2 ≈ 1.3,
        // for linear growth 4. Accept anything clearly sublinear.
        let small = evaluate_routing(&kleinberg_ring(1024, 11), 600, 100_000, 2, None);
        let large = evaluate_routing(&kleinberg_ring(4096, 11), 600, 100_000, 2, None);
        let ratio = large.mean_hops / small.mean_hops;
        assert!(ratio < 2.5, "hops ratio {ratio} too large for polylog");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = kleinberg_ring(128, 9);
        let b = kleinberg_ring(128, 9);
        assert_eq!(a, b);
        assert_ne!(a, kleinberg_ring(128, 10));
    }
}
