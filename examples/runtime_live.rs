//! Real concurrency: run the protocol on one OS thread per node with
//! crossbeam channels — no simulated rounds, no global scheduler — and
//! watch it stabilize from a scrambled chain.
//!
//! ```text
//! cargo run --release --example runtime_live
//! ```

use self_stabilizing_smallworld::prelude::*;
use self_stabilizing_smallworld::runtime::{Runtime, RuntimeConfig};
use std::time::{Duration, Instant};

fn main() {
    let n = 24;
    let cfg = ProtocolConfig::default();

    println!("== threaded runtime: {n} nodes, one thread each ==\n");

    // A scrambled chain: node i points at a pseudo-random successor, so
    // the id order must be rebuilt from scratch.
    let ids = evenly_spaced_ids(n);
    let mut order: Vec<_> = ids.clone();
    // Deterministic interleave scramble.
    order.sort_by_key(|id| id.bits().wrapping_mul(0x9e3779b97f4a7c15));
    let nodes: Vec<Node> = order.windows(2).map(|w| (w[0], w[1])).fold(
        order
            .iter()
            .map(|&id| Node::new(id, cfg))
            .collect::<Vec<_>>(),
        |mut nodes, (u, v)| {
            let node = nodes.iter_mut().find(|n| n.id() == u).expect("present");
            let (l, r) = if v < u {
                (Extended::Fin(v), node.right())
            } else {
                (node.left(), Extended::Fin(v))
            };
            *node = Node::with_state(u, l, r, u, None, cfg);
            nodes
        },
    );

    let rt = Runtime::spawn(nodes, RuntimeConfig::default());
    let start = Instant::now();

    // Poll snapshots while the threads race.
    let mut last_phase = None;
    let stabilized = rt.wait_until(Duration::from_secs(60), Duration::from_millis(10), |s| {
        let phase = classify(s);
        if last_phase != Some(phase) {
            println!("t = {:>6.1?}  phase {:?}", start.elapsed(), phase);
            last_phase = Some(phase);
        }
        phase == Phase::SortedRing
    });

    let sent = rt.messages_sent();
    let finals = rt.shutdown();
    assert!(stabilized, "threaded run failed to stabilize");
    println!(
        "\nstabilized in {:.1?} with {sent} messages across {} threads",
        start.elapsed(),
        finals.len()
    );

    // Show the final ring.
    println!("\nfinal ring (sorted by id):");
    for node in &finals {
        println!(
            "  {}  l={:<9} r={:<9} lrl={} ring={:?}",
            node.id(),
            node.left().to_string(),
            node.right().to_string(),
            node.lrl(),
            node.ring().map(|r| r.to_string()),
        );
    }
}
