//! Snapshot persistence: save and restore global states as JSON.
//!
//! Long experiments become checkpointable and failures replayable. Two
//! document versions exist:
//!
//! * **v1** — a bare [`Snapshot`](swn_core::views::Snapshot): node
//!   states plus channel contents. Still produced by
//!   [`snapshot_to_json`] and still loaded by every reader.
//! * **v2** — a full [`Checkpoint`]: the round counter, the snapshot,
//!   and (when a fault plan is attached) the complete
//!   [`InjectorState`] — plan, RNG cursor, down map, drop log and
//!   captured durable-crash states. Restoring a v2 checkpoint resumes
//!   the faulted computation exactly: plan windows stay aligned (the
//!   round counter is restored) and the injector's RNG continues from
//!   its persisted cursor.
//!
//! All readers reject malformed input with a named [`PersistError`]
//! instead of panicking.

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use swn_core::message::Message;
use swn_core::node::Node;
use swn_core::views::Snapshot;

use crate::faults::{FaultInjector, InjectorState};
use crate::network::Network;

/// Current document version (bumped on breaking layout changes).
pub const FORMAT_VERSION: u32 = 2;

/// The legacy bare-snapshot document version.
pub const V1_VERSION: u32 = 1;

/// A failure to parse or validate a persisted document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PersistError {
    /// The input is not parseable JSON or does not match the document
    /// layout (truncated input lands here).
    Json(String),
    /// The document declares a version this reader does not support.
    UnsupportedVersion(u32),
    /// The document parsed but violates a structural invariant
    /// (mismatched node/channel counts, duplicate ids, invalid plan).
    Malformed(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Json(e) => write!(f, "unparseable snapshot document: {e}"),
            PersistError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (expected {V1_VERSION} or {FORMAT_VERSION})"
                )
            }
            PersistError::Malformed(e) => write!(f, "malformed snapshot document: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// A restorable network state: the round counter, the global state
/// (node variables and channel contents) and — for faulted runs — the
/// injector's complete state.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// The round counter at capture time.
    pub round: u64,
    /// Node states and channel contents.
    pub snapshot: Snapshot,
    /// The fault injector's state, when a plan was attached.
    pub injector: Option<InjectorState>,
}

/// The serializable v1 form: a bare snapshot.
#[derive(Serialize, Deserialize)]
struct DocV1 {
    version: u32,
    nodes: Vec<Node>,
    channels: Vec<Vec<Message>>,
}

/// The serializable v2 form: a checkpoint.
#[derive(Serialize, Deserialize)]
struct DocV2 {
    version: u32,
    round: u64,
    nodes: Vec<Node>,
    channels: Vec<Vec<Message>>,
    injector: Option<InjectorState>,
}

/// Serializes a bare snapshot to a v1 JSON document.
pub fn snapshot_to_json(s: &Snapshot) -> String {
    let doc = DocV1 {
        version: V1_VERSION,
        nodes: s.nodes().to_vec(),
        channels: s.channels().to_vec(),
    };
    // Rendering an in-memory Value tree to text cannot fail; there is
    // no I/O and no non-string map key.
    // lint: allow(unwrap-in-lib)
    serde_json::to_string(&doc).expect("snapshot serialization cannot fail")
}

/// Deserializes a bare snapshot from JSON (either version; v2 documents
/// lose their round counter and injector — use [`checkpoint_from_json`]
/// to keep them).
pub fn snapshot_from_json(json: &str) -> Result<Snapshot, PersistError> {
    checkpoint_from_json(json).map(|cp| cp.snapshot)
}

/// Captures a restorable checkpoint of `net`: round counter, global
/// state, and the injector state when a fault plan is attached.
pub fn checkpoint(net: &Network) -> Checkpoint {
    Checkpoint {
        round: net.round(),
        snapshot: net.snapshot(),
        injector: net.fault_injector().map(FaultInjector::state),
    }
}

/// Serializes a checkpoint to a v2 JSON document.
pub fn checkpoint_to_json(cp: &Checkpoint) -> String {
    let doc = DocV2 {
        version: FORMAT_VERSION,
        round: cp.round,
        nodes: cp.snapshot.nodes().to_vec(),
        channels: cp.snapshot.channels().to_vec(),
        injector: cp.injector.clone(),
    };
    // lint: allow(unwrap-in-lib) — same argument as `snapshot_to_json`.
    serde_json::to_string(&doc).expect("checkpoint serialization cannot fail")
}

/// Deserializes a checkpoint from JSON, dispatching on the declared
/// document version: v1 documents load as a round-0 checkpoint with no
/// injector; v2 documents restore everything. Truncated or garbage
/// input yields [`PersistError::Json`], unknown versions
/// [`PersistError::UnsupportedVersion`], and structurally inconsistent
/// documents [`PersistError::Malformed`] — never a panic.
pub fn checkpoint_from_json(json: &str) -> Result<Checkpoint, PersistError> {
    let value: Value = serde_json::from_str(json).map_err(|e| PersistError::Json(e.to_string()))?;
    let version = declared_version(&value)?;
    let (round, nodes, channels, injector) = match version {
        V1_VERSION => {
            let doc = DocV1::from_value(&value).map_err(|e| PersistError::Json(e.to_string()))?;
            (0, doc.nodes, doc.channels, None)
        }
        FORMAT_VERSION => {
            let doc = DocV2::from_value(&value).map_err(|e| PersistError::Json(e.to_string()))?;
            (doc.round, doc.nodes, doc.channels, doc.injector)
        }
        other => return Err(PersistError::UnsupportedVersion(other)),
    };
    if nodes.len() != channels.len() {
        return Err(PersistError::Malformed(
            "node/channel count mismatch".to_string(),
        ));
    }
    let mut ids: Vec<_> = nodes.iter().map(Node::id).collect();
    ids.sort_unstable();
    if ids.windows(2).any(|w| w[0] == w[1]) {
        return Err(PersistError::Malformed(
            "duplicate node ids in snapshot".to_string(),
        ));
    }
    if let Some(state) = &injector {
        state
            .plan
            .validate()
            .map_err(|e| PersistError::Malformed(format!("invalid fault plan: {e}")))?;
    }
    Ok(Checkpoint {
        round,
        snapshot: Snapshot::new(nodes, channels),
        injector,
    })
}

/// Rebuilds a runnable network from a snapshot: node states are adopted
/// verbatim and persisted channel contents are preloaded, so the restored
/// computation continues from the same CC state (scheduler randomness is
/// freshly seeded — the model guarantees stabilization under *any*
/// fair schedule, so checkpoints never need to capture the RNG).
pub fn network_from_snapshot(s: &Snapshot, seed: u64) -> Network {
    let mut net = Network::new(s.nodes().to_vec(), seed);
    for (idx, msgs) in s.channels().iter().enumerate() {
        let dest = s.nodes()[idx].id();
        for &m in msgs {
            net.preload(dest, m);
        }
    }
    net
}

/// Rebuilds a runnable network from a checkpoint: like
/// [`network_from_snapshot`], plus the round counter is restored (plan
/// windows stay aligned) and the injector — when one was captured — is
/// rebuilt at its persisted RNG cursor and reattached.
pub fn network_from_checkpoint(cp: &Checkpoint, seed: u64) -> Result<Network, PersistError> {
    let mut net = Network::new(cp.snapshot.nodes().to_vec(), seed);
    net.set_round(cp.round);
    for (idx, msgs) in cp.snapshot.channels().iter().enumerate() {
        let dest = cp.snapshot.nodes()[idx].id();
        for &m in msgs {
            net.preload(dest, m);
        }
    }
    if let Some(state) = &cp.injector {
        let inj = FaultInjector::from_state(state.clone())
            .map_err(|e| PersistError::Malformed(format!("invalid fault plan: {e}")))?;
        net.attach_injector(inj);
    }
    Ok(net)
}

/// Reads the `version` field of a document without committing to a
/// layout — the dispatch key for multi-version loading.
fn declared_version(value: &Value) -> Result<u32, PersistError> {
    let Value::Map(entries) = value else {
        return Err(PersistError::Json("expected a JSON object".to_string()));
    };
    let Some((_, v)) = entries.iter().find(|(k, _)| k == "version") else {
        return Err(PersistError::Json("missing `version` field".to_string()));
    };
    u32::from_value(v).map_err(|e| PersistError::Json(format!("bad `version` field: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::run_to_ring;
    use crate::faults::FaultPlan;
    use crate::init::{generate, InitialTopology};
    use swn_core::config::ProtocolConfig;
    use swn_core::id::evenly_spaced_ids;
    use swn_core::invariants::{classify, Phase};

    fn sample_network() -> Network {
        let ids = evenly_spaced_ids(12);
        let mut net = generate(
            InitialTopology::RandomSparse { extra: 2 },
            &ids,
            ProtocolConfig::default(),
            5,
        )
        .into_network(5);
        net.run(3); // some in-flight messages
        net
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let net = sample_network();
        let s = net.snapshot();
        let json = snapshot_to_json(&s);
        let back = snapshot_from_json(&json).expect("round trip");
        assert_eq!(back.nodes(), s.nodes());
        assert_eq!(back.channels(), s.channels());
    }

    #[test]
    fn restored_network_continues_to_stabilize() {
        let net = sample_network();
        let json = snapshot_to_json(&net.snapshot());
        let restored = snapshot_from_json(&json).expect("parse");
        let mut net2 = network_from_snapshot(&restored, 99);
        let rep = run_to_ring(&mut net2, 100_000);
        assert!(rep.stabilized(), "restored computation must stabilize");
        assert_eq!(classify(&net2.snapshot()), Phase::SortedRing);
    }

    #[test]
    fn v1_documents_still_load() {
        // A v1 document (bare snapshot) loads through the v2 reader as
        // a round-0 checkpoint with no injector.
        let net = sample_network();
        let json = snapshot_to_json(&net.snapshot());
        assert!(json.contains("\"version\":1"), "writer must emit v1");
        let cp = checkpoint_from_json(&json).expect("v1 back-compat");
        assert_eq!(cp.round, 0);
        assert!(cp.injector.is_none());
        assert_eq!(cp.snapshot.nodes(), net.snapshot().nodes());
    }

    #[test]
    fn checkpoint_round_trips_with_injector() {
        let mut net = sample_network();
        let ids = net.ids();
        net.attach_faults(
            FaultPlan::new(17)
                .with_drop(net.round() + 1, net.round() + 6, 0.4)
                .with_crash(net.round() + 2, ids[3], 3),
        );
        net.run(4); // consume injector RNG, crash a node
        let cp = checkpoint(&net);
        assert!(cp.injector.is_some());
        let json = checkpoint_to_json(&cp);
        let back = checkpoint_from_json(&json).expect("round trip");
        assert_eq!(back.round, cp.round);
        assert_eq!(back.snapshot.nodes(), cp.snapshot.nodes());
        assert_eq!(back.snapshot.channels(), cp.snapshot.channels());
        assert_eq!(back.injector, cp.injector);
    }

    #[test]
    fn restored_checkpoint_resumes_deterministically_and_recovers() {
        // Checkpoint mid-fault-window, restore *twice* from the same
        // JSON with the same seed: the two resumed runs must be
        // bit-identical (restore is deterministic — the injector comes
        // back at its persisted RNG cursor and the round counter keeps
        // the plan windows aligned), and the resumed computation must
        // still stabilize once the windows close.
        let mut net = sample_network();
        let ids = net.ids();
        net.attach_faults(
            FaultPlan::new(23)
                .with_drop(5, 20, 0.3)
                .with_duplicate(6, 18, 0.2)
                .with_crash(7, ids[5], 4),
        );
        net.run(6); // park mid-window
        let json = checkpoint_to_json(&checkpoint(&net));
        let cp = checkpoint_from_json(&json).expect("parse");
        let mut a = network_from_checkpoint(&cp, 5).expect("restore");
        let mut b = network_from_checkpoint(&cp, 5).expect("restore");
        assert_eq!(a.round(), net.round());
        a.run(30);
        b.run(30);
        assert_eq!(
            a.snapshot().nodes(),
            b.snapshot().nodes(),
            "two restores from the same checkpoint must replay identically"
        );
        assert_eq!(
            a.fault_injector().expect("attached").drops(),
            b.fault_injector().expect("attached").drops(),
        );
        let rep = run_to_ring(&mut a, 100_000);
        assert!(rep.stabilized(), "resumed faulted run must stabilize");
    }

    #[test]
    fn version_mismatch_rejected() {
        let net = sample_network();
        let json = snapshot_to_json(&net.snapshot()).replace("\"version\":1", "\"version\":999");
        assert_eq!(
            snapshot_from_json(&json).unwrap_err(),
            PersistError::UnsupportedVersion(999)
        );
    }

    #[test]
    fn garbage_rejected_gracefully() {
        assert!(matches!(
            snapshot_from_json("not json").unwrap_err(),
            PersistError::Json(_)
        ));
        assert!(matches!(
            snapshot_from_json("{}").unwrap_err(),
            PersistError::Json(_)
        ));
        assert!(matches!(
            snapshot_from_json("[1,2,3]").unwrap_err(),
            PersistError::Json(_)
        ));
    }

    #[test]
    fn truncated_checkpoint_rejected_with_named_error() {
        let mut net = sample_network();
        net.attach_faults(FaultPlan::new(3).with_drop(4, 9, 0.5));
        net.run(6);
        let json = checkpoint_to_json(&checkpoint(&net));
        for cut in [1, json.len() / 4, json.len() / 2, json.len() - 1] {
            let truncated = &json[..cut];
            assert!(
                matches!(checkpoint_from_json(truncated), Err(PersistError::Json(_))),
                "truncation at {cut} must be a named parse error"
            );
        }
    }

    #[test]
    fn inconsistent_documents_rejected_as_malformed() {
        // Channel list shorter than the node list.
        let net = sample_network();
        let s = net.snapshot();
        let doc = DocV1 {
            version: V1_VERSION,
            nodes: s.nodes().to_vec(),
            channels: vec![Vec::new(); s.nodes().len() - 1],
        };
        let json = serde_json::to_string(&doc).expect("serialize");
        assert!(matches!(
            checkpoint_from_json(&json).unwrap_err(),
            PersistError::Malformed(_)
        ));
    }

    #[test]
    fn stable_state_persists_its_stability() {
        let ids = evenly_spaced_ids(8);
        let nodes = swn_core::invariants::make_sorted_ring(&ids, ProtocolConfig::default());
        let s = swn_core::views::Snapshot::from_nodes(nodes);
        let back = snapshot_from_json(&snapshot_to_json(&s)).expect("round trip");
        assert_eq!(classify(&back), Phase::SortedRing);
    }
}
