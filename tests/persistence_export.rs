//! Integration tests for checkpointing (swn-sim::persist) and DOT export
//! (swn-topology::export) across the full stack.

use self_stabilizing_smallworld::prelude::*;
use swn_sim::init::generate;
use swn_sim::persist::{network_from_snapshot, snapshot_from_json, snapshot_to_json};
use swn_topology::export::{snapshot_to_dot, to_dot};

#[test]
fn checkpoint_mid_stabilization_and_resume() {
    // Run a convergence halfway, checkpoint, restore, and finish — the
    // restored computation must stabilize to the same sorted ring.
    let ids = evenly_spaced_ids(24);
    let cfg = ProtocolConfig::default();
    let mut net = generate(InitialTopology::Star, &ids, cfg, 3).into_network(3);
    net.run(5); // partway through phase 2
    let json = snapshot_to_json(&net.snapshot());

    let restored = snapshot_from_json(&json).expect("valid checkpoint");
    let mut net2 = network_from_snapshot(&restored, 777);
    let rep = run_to_ring(&mut net2, 100_000);
    assert!(rep.stabilized(), "restored run failed: {rep:?}");

    // Both runs converge to the same unique list/ring structure.
    let rep1 = run_to_ring(&mut net, 100_000);
    assert!(rep1.stabilized());
    let (s1, s2) = (net.snapshot(), net2.snapshot());
    for (i1, i2) in s1.sorted_indices().into_iter().zip(s2.sorted_indices()) {
        let (a, b) = (&s1.nodes()[i1], &s2.nodes()[i2]);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.left(), b.left());
        assert_eq!(a.right(), b.right());
        assert_eq!(a.ring(), b.ring());
    }
}

#[test]
fn checkpoint_preserves_in_flight_messages() {
    let ids = evenly_spaced_ids(10);
    let mut net = generate(
        InitialTopology::RandomChain,
        &ids,
        ProtocolConfig::default(),
        9,
    )
    .into_network(9);
    net.run(2);
    let s = net.snapshot();
    let in_flight = s.messages_in_flight();
    assert!(in_flight > 0, "fixture needs traffic");
    let back = snapshot_from_json(&snapshot_to_json(&s)).expect("round trip");
    assert_eq!(back.messages_in_flight(), in_flight);
}

#[test]
fn dot_export_of_stabilized_network() {
    let ids = evenly_spaced_ids(16);
    let mut net =
        generate(InitialTopology::Clique, &ids, ProtocolConfig::default(), 4).into_network(4);
    let rep = run_to_ring(&mut net, 100_000);
    assert!(rep.stabilized());
    net.run(500); // let some tokens wander

    let s = net.snapshot();
    let dot = snapshot_to_dot(&s, "stable");
    // Every rank appears as a node and the seam ring edges are rendered.
    for rank in 0..16 {
        assert!(
            dot.contains(&format!("{rank} [pos=")),
            "rank {rank} missing"
        );
    }
    assert!(
        dot.contains("style=dashed, color=blue"),
        "ring edges missing"
    );
    assert!(dot.contains("color=gray40"), "list links missing");

    // The plain-graph exporter agrees on edge count with the CP view.
    let g = Graph::from_snapshot(&s, View::Cp);
    let plain = to_dot(&g, "cp", true);
    assert_eq!(plain.matches(" -> ").count(), g.m());
}
