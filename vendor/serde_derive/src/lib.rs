//! Offline stand-in for `serde_derive`.
//!
//! The registry (and therefore `syn`/`quote`) is unreachable from this
//! build environment, so the derive macros parse the item declaration
//! straight off the `proc_macro::TokenStream`: enough of Rust's grammar
//! to handle the concrete structs and enums this workspace derives on —
//! named structs, tuple/newtype structs, and enums with unit, tuple and
//! struct variants. Generics are rejected (nothing in the workspace
//! derives on a generic type); hitting that limit is a compile error
//! naming this file, not a silent misbehaviour.
//!
//! Generated code targets the vendored `serde`'s `Value` data model and
//! mirrors real serde's externally-tagged layout, so the JSON written by
//! `serde_json::to_string` matches what the real stack would produce.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we parsed out of the item a derive is attached to.
enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize` (the vendored stand-in's trait).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(&gen_serialize(&item))
}

/// Derives `serde::Deserialize` (the vendored stand-in's trait).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(&gen_deserialize(&item))
}

fn render(code: &str) -> TokenStream {
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive generated invalid Rust: {e}\n{code}"))
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = expect_any_ident(&tokens, &mut i);
    let name = expect_any_ident(&tokens, &mut i);
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }
    match kind.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => panic!("serde_derive (vendored): unexpected struct body {other:?}"),
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let Some(TokenTree::Group(g)) = tokens.get(i) else {
                panic!("serde_derive (vendored): expected enum body");
            };
            Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            }
        }
        other => panic!("serde_derive (vendored): cannot derive on `{other}` items"),
    }
}

/// Advances past any `#[...]` attributes and a `pub` / `pub(...)`
/// visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

fn expect_any_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive (vendored): expected identifier, got {other:?}"),
    }
}

/// Extracts field names from the contents of a `{ ... }` struct body.
/// Type tokens are skipped with angle-bracket tracking so commas inside
/// generics (`BTreeMap<K, V>`) don't split fields.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = expect_any_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("serde_derive (vendored): expected `:` after field `{field}`, got {other:?}")
            }
        }
        skip_type_until_comma(&tokens, &mut i);
        fields.push(field);
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type_until_comma(&tokens, &mut i);
        count += 1;
    }
    count
}

/// Skips type tokens up to (and past) the next top-level `,`, where
/// "top level" means angle-bracket depth zero. `>>` arrives as two
/// separate `>` puncts, so simple per-character tracking suffices.
fn skip_type_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tt) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_any_ident(&tokens, &mut i);
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        skip_type_until_comma(&tokens, &mut i);
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => {
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))")
                        })
                        .collect();
                    format!("serde::Value::Map(vec![{}])", entries.join(", "))
                }
                // Newtype structs serialize transparently (serde's
                // convention), longer tuples as sequences.
                Shape::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("serde::Value::Seq(vec![{}])", items.join(", "))
                }
                Shape::Unit => "serde::Value::Null".to_string(),
            };
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => serde::Value::Map(vec![(\"{vn}\".to_string(), serde::Serialize::to_value(__f0))]),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|k| format!("__f{k}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("serde::Serialize::to_value(__f{k})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::Value::Map(vec![(\"{vn}\".to_string(), serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => serde::Value::Map(vec![(\"{vn}\".to_string(), serde::Value::Map(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| format!("{f}: serde::helpers::field(__m, \"{f}\", \"{name}\")?"))
                        .collect();
                    format!(
                        "let __m = serde::helpers::as_map(__v, \"{name}\")?;\n\
                         ::core::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Shape::Tuple(1) => format!(
                    "::core::result::Result::Ok({name}(serde::Deserialize::from_value(__v)?))"
                ),
                Shape::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|k| format!("serde::Deserialize::from_value(&__s[{k}])?"))
                        .collect();
                    format!(
                        "let __s = serde::helpers::as_seq(__v, {n}, \"{name}\")?;\n\
                         ::core::result::Result::Ok({name}({}))",
                        inits.join(", ")
                    )
                }
                Shape::Unit => format!("::core::result::Result::Ok({name})"),
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &serde::Value) -> ::core::result::Result<Self, serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),"
                        ),
                        Shape::Tuple(1) => format!(
                            "\"{vn}\" => {{\n\
                                 let __d = __data.ok_or_else(|| serde::DeError::new(\"{name}::{vn}: missing variant data\"))?;\n\
                                 ::core::result::Result::Ok({name}::{vn}(serde::Deserialize::from_value(__d)?))\n\
                             }}"
                        ),
                        Shape::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|k| format!("serde::Deserialize::from_value(&__s[{k}])?"))
                                .collect();
                            format!(
                                "\"{vn}\" => {{\n\
                                     let __d = __data.ok_or_else(|| serde::DeError::new(\"{name}::{vn}: missing variant data\"))?;\n\
                                     let __s = serde::helpers::as_seq(__d, {n}, \"{name}::{vn}\")?;\n\
                                     ::core::result::Result::Ok({name}::{vn}({}))\n\
                                 }}",
                                inits.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: serde::helpers::field(__m, \"{f}\", \"{name}::{vn}\")?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => {{\n\
                                     let __d = __data.ok_or_else(|| serde::DeError::new(\"{name}::{vn}: missing variant data\"))?;\n\
                                     let __m = serde::helpers::as_map(__d, \"{name}::{vn}\")?;\n\
                                     ::core::result::Result::Ok({name}::{vn} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &serde::Value) -> ::core::result::Result<Self, serde::DeError> {{\n\
                         let (__tag, __data) = serde::helpers::variant(__v, \"{name}\")?;\n\
                         let _ = __data; // unused when every variant is a unit variant\n\
                         match __tag {{\n{}\n\
                             __other => ::core::result::Result::Err(serde::DeError::new(format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}
