//! Protocol parameters.

use serde::{Deserialize, Serialize};

/// Tunable parameters of the self-stabilizing small-world protocol.
///
/// The paper has a single explicit parameter, ε, controlling the forget
/// probability φ(α). The two remaining knobs exist for the ablation
/// experiments called out in DESIGN.md (they default to the paper's
/// behaviour):
///
/// * [`lrl_shortcut`](Self::lrl_shortcut) — the paper *extends* plain
///   linearization by routing `lin` messages over the long-range link when
///   it is a shortcut (Algorithm 2). Turning this off recovers the plain
///   linearization of Onus et al. / Nor et al. (ablation A1).
/// * [`probe_period`](Self::probe_period) — the paper sends probing
///   messages "each time a specific time interval passes"; the period is
///   measured in regular-action executions (ablation A3).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// The ε of the forget probability φ(α); any positive value. The paper
    /// calls it "a fixed (arbitrarily small) parameter".
    pub epsilon: f64,
    /// Use the long-range link as a forwarding shortcut inside
    /// `linearize` (Algorithm 2's `m.id > p.lrl > p.r` branches).
    pub lrl_shortcut: bool,
    /// Execute the probing procedure every `probe_period`-th regular
    /// action (1 = every regular action, the default).
    pub probe_period: u64,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            epsilon: 0.1,
            lrl_shortcut: true,
            probe_period: 1,
        }
    }
}

impl ProtocolConfig {
    /// Config with a given ε and everything else at the default.
    pub fn with_epsilon(epsilon: f64) -> Self {
        ProtocolConfig {
            epsilon,
            ..Default::default()
        }
    }

    /// Validates the parameters; called by the simulator at network build
    /// time so misconfiguration fails fast rather than mid-experiment.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.epsilon.is_finite() && self.epsilon > 0.0) {
            return Err(format!("epsilon must be positive, got {}", self.epsilon));
        }
        if self.probe_period == 0 {
            return Err("probe_period must be at least 1".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(ProtocolConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_bad_epsilon() {
        assert!(ProtocolConfig::with_epsilon(0.0).validate().is_err());
        assert!(ProtocolConfig::with_epsilon(-1.0).validate().is_err());
        assert!(ProtocolConfig::with_epsilon(f64::NAN).validate().is_err());
    }

    #[test]
    fn rejects_zero_probe_period() {
        let cfg = ProtocolConfig {
            probe_period: 0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }
}
