//! Experiment runner: regenerates every table of DESIGN.md §4.
//!
//! ```text
//! experiments <id>... [--quick] [--trace-out FILE]
//! experiments all [--quick]
//! experiments report FILE
//! experiments postmortem FILE
//! experiments chaos [--quick] [--reproducers DIR]
//! experiments replay FILE...
//! experiments list
//! ```
//!
//! Ids: e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e12 a1 a2 a3. `--quick` switches
//! every experiment to its reduced-scale preset (used by CI smoke runs);
//! the default is the full scale reported in EXPERIMENTS.md.
//!
//! `--trace-out FILE` additionally runs the id's representative traced
//! scenario with a JSONL observation sink attached (see DESIGN.md §9);
//! `report FILE` renders such a trace as a human-readable run report.
//! With several ids, each id's trace goes to `FILE.<id>` instead.
//!
//! `postmortem FILE` runs the sole-carrier disconnection demo (E10b)
//! with an anomaly-armed flight recorder: the permanently-disconnected
//! verdict auto-dumps the recent-event ring to `FILE` as JSONL, naming
//! the culprit drop. The dump is itself a valid trace for `report`.
//!
//! `chaos` runs only the seeded chaos campaign (E12b) as a gate: any
//! unclassified scenario (panic, budget exhaustion, unattributed
//! disconnection) exits non-zero, with every failure shrunk to a
//! minimal JSON reproducer under `--reproducers DIR`. `replay FILE`
//! re-runs such a reproducer deterministically and prints its verdict.

use std::time::Instant;
use swn_harness::table::Table;
use swn_harness::*;

const ALL_IDS: [&str; 15] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e12", "a1", "a2", "a3", "x1",
];

fn describe(id: &str) -> &'static str {
    match id {
        "e1" => "convergence from adversarial initial states (Thms 4.3/4.9/4.18)",
        "e2" => "long-range link length distribution (Thm 4.22 / Fact 4.21)",
        "e3" => "greedy routing hops vs n (Thm 4.22 / Lemma 4.23)",
        "e4" => "probing hops vs distance (Thm 4.3 / Lemma 4.23)",
        "e5" => "join integration cost (Thm 4.24)",
        "e6" => "leave recovery cost (Thm 4.24)",
        "e7" => "robustness: failures and attacks (Sec I / IV.G)",
        "e8" => "Watts-Strogatz interpolation figure ([24])",
        "e9" => "stable-state overhead and forget horizon (Sec IV.F)",
        "e10" => "self-stabilization under sustained faults (fault engine + watchdog)",
        "e12" => "adversarial behaviors, restart disciplines and the chaos campaign",
        "a1" => "ablation: lrl shortcuts in linearization",
        "a2" => "ablation: forget exponent eps",
        "a3" => "ablation: probing cadence",
        "x1" => "extension: multidimensional move-and-forget",
        _ => "unknown",
    }
}

fn run_one(id: &str, quick: bool) -> Vec<Table> {
    match id {
        "e1" => {
            let p = if quick {
                e1_convergence::Params::quick()
            } else {
                e1_convergence::Params::full()
            };
            vec![e1_convergence::run(&p)]
        }
        "e2" => {
            let p = if quick {
                e2_distribution::Params::quick()
            } else {
                e2_distribution::Params::full()
            };
            vec![e2_distribution::run(&p)]
        }
        "e3" => {
            let p = if quick {
                e3_routing::Params::quick()
            } else {
                e3_routing::Params::full()
            };
            vec![e3_routing::run(&p)]
        }
        "e4" => {
            let p = if quick {
                e4_probing::Params::quick()
            } else {
                e4_probing::Params::full()
            };
            vec![e4_probing::run(&p)]
        }
        "e5" => {
            let p = if quick {
                e5_join_leave::Params::quick()
            } else {
                e5_join_leave::Params::full()
            };
            vec![e5_join_leave::run_join(&p)]
        }
        "e6" => {
            let p = if quick {
                e5_join_leave::Params::quick()
            } else {
                e5_join_leave::Params::full()
            };
            vec![e5_join_leave::run_leave(&p)]
        }
        "e7" => {
            let p = if quick {
                e7_robustness::Params::quick()
            } else {
                e7_robustness::Params::full()
            };
            vec![e7_robustness::run(&p)]
        }
        "e8" => {
            let p = if quick {
                e8_watts_strogatz::Params::quick()
            } else {
                e8_watts_strogatz::Params::full()
            };
            vec![e8_watts_strogatz::run(&p)]
        }
        "e9" => {
            let p = if quick {
                e9_overhead::Params::quick()
            } else {
                e9_overhead::Params::full()
            };
            vec![e9_overhead::run(&p)]
        }
        "e10" => {
            let p = if quick {
                e10_faults::Params::quick()
            } else {
                e10_faults::Params::full()
            };
            vec![e10_faults::run(&p), e10_faults::run_disconnect_demo()]
        }
        "e12" => {
            let p = if quick {
                e12_chaos::Params::quick()
            } else {
                e12_chaos::Params::full()
            };
            let report = e12_chaos::run_campaign_report(&p);
            vec![e12_chaos::run(&p), e12_chaos::campaign_table(&p, &report)]
        }
        "a1" => {
            let p = if quick {
                ablations::Params::quick()
            } else {
                ablations::Params::full()
            };
            vec![ablations::run_a1(&p)]
        }
        "a2" => {
            let p = if quick {
                ablations::Params::quick()
            } else {
                ablations::Params::full()
            };
            vec![ablations::run_a2(&p)]
        }
        "a3" => {
            let p = if quick {
                ablations::Params::quick()
            } else {
                ablations::Params::full()
            };
            vec![ablations::run_a3(&p)]
        }
        "x1" => {
            let p = if quick {
                x1_multidim::Params::quick()
            } else {
                x1_multidim::Params::full()
            };
            vec![x1_multidim::run(&p)]
        }
        other => {
            eprintln!("unknown experiment id: {other}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .map(|i| match args.get(i + 1) {
            Some(path) if !path.starts_with("--") => std::path::PathBuf::from(path),
            _ => {
                eprintln!("--trace-out requires a file path");
                std::process::exit(2);
            }
        });
    let reproducers =
        args.iter()
            .position(|a| a == "--reproducers")
            .map(|i| match args.get(i + 1) {
                Some(path) if !path.starts_with("--") => std::path::PathBuf::from(path),
                _ => {
                    eprintln!("--reproducers requires a directory path");
                    std::process::exit(2);
                }
            });
    let mut positional: Vec<&str> = Vec::new();
    let mut skip = false;
    for a in &args {
        if skip {
            skip = false;
            continue;
        }
        if a == "--trace-out" || a == "--reproducers" {
            skip = true;
        } else if !a.starts_with("--") {
            positional.push(a.as_str());
        }
    }
    let ids = positional;

    if let Some(("report", files)) = ids.split_first().map(|(f, r)| (*f, r)) {
        if files.is_empty() {
            eprintln!("usage: experiments report FILE");
            std::process::exit(2);
        }
        for file in files {
            let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
                eprintln!("cannot read {file}: {e}");
                std::process::exit(1);
            });
            match swn_harness::report::render_report(&text) {
                Ok(report) => print!("{report}"),
                Err(e) => {
                    eprintln!("{file}: {e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }

    if let Some(("postmortem", files)) = ids.split_first().map(|(f, r)| (*f, r)) {
        let [file] = files else {
            eprintln!("usage: experiments postmortem FILE");
            std::process::exit(2);
        };
        let rep = swn_harness::e10_faults::write_post_mortem(file);
        eprintln!(
            "verdict: {} — flight-recorder dump written to {file}",
            rep.verdict.outcome()
        );
        if rep.verdict.outcome() != "disconnected" {
            eprintln!("expected a permanently-disconnected verdict, got {rep:?}");
            std::process::exit(1);
        }
        return;
    }

    if let Some(("chaos", rest)) = ids.split_first().map(|(f, r)| (*f, r)) {
        if !rest.is_empty() {
            eprintln!("usage: experiments chaos [--quick] [--reproducers DIR]");
            std::process::exit(2);
        }
        let p = if quick {
            e12_chaos::Params::quick()
        } else {
            e12_chaos::Params::full()
        };
        eprintln!(
            ">>> chaos campaign: {} scenarios (seed {:#x})",
            p.scenarios, p.campaign_seed
        );
        let report = e12_chaos::run_campaign_report(&p);
        e12_chaos::campaign_table(&p, &report).print();
        if let Some(dir) = &reproducers {
            match e12_chaos::write_reproducers(&report, dir) {
                Ok(paths) => {
                    for path in paths {
                        eprintln!("shrunk reproducer written to {}", path.display());
                    }
                }
                Err(e) => {
                    eprintln!("cannot write reproducers to {}: {e}", dir.display());
                    std::process::exit(1);
                }
            }
        }
        if !report.clean() {
            eprintln!(
                "chaos campaign FAILED: {} unclassified scenario(s)",
                report.failures.len()
            );
            std::process::exit(1);
        }
        eprintln!("chaos campaign clean: every scenario classified");
        return;
    }

    if let Some(("replay", files)) = ids.split_first().map(|(f, r)| (*f, r)) {
        if files.is_empty() {
            eprintln!("usage: experiments replay FILE...");
            std::process::exit(2);
        }
        let mut failed = false;
        for file in files {
            match e12_chaos::replay_file(file) {
                Ok((scenario, result)) => {
                    println!(
                        "{file}: n={} start={:?} entries={} -> {} ({:?})",
                        scenario.n,
                        scenario.start,
                        scenario.plan.entry_count(),
                        result.outcome.label(),
                        result.outcome
                    );
                    failed |= !result.outcome.classified();
                }
                Err(e) => {
                    eprintln!("{file}: {e}");
                    std::process::exit(1);
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
        return;
    }

    if ids.is_empty() || ids == ["list"] {
        println!(
            "usage: experiments <id>... [--quick] [--trace-out FILE] | all [--quick] | report FILE | postmortem FILE | chaos [--quick] [--reproducers DIR] | replay FILE... | list\n"
        );
        for id in ALL_IDS {
            println!("  {id}  {}", describe(id));
        }
        return;
    }

    let ids: Vec<&str> = if ids == ["all"] {
        ALL_IDS.to_vec()
    } else {
        ids
    };

    let multi = ids.len() > 1;
    for id in &ids {
        let start = Instant::now();
        eprintln!(
            ">>> {id} ({}) — {}",
            if quick { "quick" } else { "full" },
            describe(id)
        );
        for table in run_one(id, quick) {
            table.print();
        }
        if let Some(base) = &trace_out {
            // One trace per id: the given path for a single id, an
            // id-suffixed sibling when several ids share the run.
            let path = if multi {
                base.with_extension(format!("{id}.jsonl"))
            } else {
                base.clone()
            };
            eprintln!(
                "    tracing representative {id} scenario -> {}",
                path.display()
            );
            if let Err(e) = swn_harness::runlog::write_trace(id, quick, &path) {
                eprintln!("trace-out failed for {id}: {e}");
                std::process::exit(1);
            }
        }
        eprintln!("<<< {id} finished in {:.1?}\n", start.elapsed());
    }
}
