//! Property test: quiescence detection is *correct* — after
//! stabilization a fault-free active-set network reports zero active
//! nodes, and stepping a quiescent network is a no-op byte-for-byte on
//! node state, channel state and the RNG position.
//!
//! The RNG-position half cannot read the network's private generator, so
//! it is proven observationally with a **twin experiment**: two
//! identical networks converge and drain; one steps `extra` additional
//! quiescent rounds; then both perform the same join and run the same
//! number of rounds. If a quiescent round consumed even one RNG draw (or
//! touched any state), the twins' post-join computations — whose shuffle
//! orders, delivery orders and lrl walks all feed off the shared stream —
//! would diverge; their state fingerprints must stay equal.

use proptest::prelude::*;
use swn_core::config::ProtocolConfig;
use swn_core::id::{evenly_spaced_ids, NodeId};
use swn_core::message::Message;
use swn_core::node::Node;
use swn_sim::convergence::{drain_to_quiescence, run_to_ring};
use swn_sim::init::{generate, InitialTopology};
use swn_sim::{Network, ScheduleMode};

/// Node and channel state only — no trace, no round counter, no enqueue
/// timestamps — so fingerprints compare across networks whose round
/// counters differ by the quiescent padding.
fn state_fingerprint(net: &Network) -> String {
    use std::fmt::Write as _;
    let v = net.view();
    let mut s = String::new();
    for (rank, n) in v.nodes().iter().enumerate() {
        let _ = write!(
            s,
            "{:?} l={:?} r={:?} lrl={:?} ring={:?} age={} pt={} ch={:?};",
            n.id(),
            n.left(),
            n.right(),
            n.lrl(),
            n.ring(),
            n.age(),
            n.probe_tick(),
            v.channel(rank),
        );
    }
    s
}

fn topology(pick: u8) -> InitialTopology {
    match pick % 4 {
        0 => InitialTopology::RandomSparse { extra: 2 },
        1 => InitialTopology::Star,
        2 => InitialTopology::SortedListNoRing,
        _ => InitialTopology::CorruptedRing { corruptions: 3 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Zero active nodes after stabilization, and every further step is
    /// a state no-op with an all-zero stats row.
    #[test]
    fn stabilized_network_drains_to_zero_active_nodes(
        n in 4usize..20,
        seed in 0u64..500,
        pick in 0u8..4,
        mode_first in any::<bool>(),
    ) {
        let ids = evenly_spaced_ids(n);
        let mut net =
            generate(topology(pick), &ids, ProtocolConfig::default(), seed).into_network(seed);
        if mode_first {
            // Converge under the scheduler itself.
            net.set_schedule_mode(ScheduleMode::ActiveSet);
        }
        let report = run_to_ring(&mut net, 20_000);
        prop_assert!(report.stabilized(), "failed to reach the ring");
        if !mode_first {
            // Converge under full scan, then hand over to the scheduler.
            net.set_schedule_mode(ScheduleMode::ActiveSet);
        }
        let drained = drain_to_quiescence(&mut net, 2_000);
        prop_assert!(drained.is_some(), "agenda failed to drain");
        prop_assert_eq!(net.active_count(), 0);
        prop_assert!(net.is_quiescent());
        let before = state_fingerprint(&net);
        for _ in 0..5 {
            let stats = net.step();
            prop_assert_eq!(stats.total_sent(), 0, "quiescent round sent mail");
            prop_assert_eq!(stats.total_delivered(), 0);
            prop_assert!(!stats.links_changed);
            prop_assert!(net.is_quiescent(), "quiescence must be absorbing");
        }
        prop_assert_eq!(state_fingerprint(&net), before, "state changed in a quiescent round");
    }

    /// The twin experiment: quiescent padding rounds leave the RNG
    /// position (and all state) untouched, so padded and unpadded twins
    /// compute identically afterwards.
    #[test]
    fn quiescent_rounds_leave_rng_position_untouched(
        n in 4usize..16,
        seed in 0u64..500,
        pick in 0u8..4,
        extra in 1u64..12,
    ) {
        let run = |padding: u64| -> Option<String> {
            let ids = evenly_spaced_ids(n);
            let mut net =
                generate(topology(pick), &ids, ProtocolConfig::default(), seed).into_network(seed);
            net.set_schedule_mode(ScheduleMode::ActiveSet);
            if !run_to_ring(&mut net, 20_000).stabilized() {
                return None;
            }
            drain_to_quiescence(&mut net, 2_000)?;
            net.run(padding);
            // An identical join wakes both twins: the newcomer sorts
            // between the two smallest ids (`evenly_spaced_ids` starts
            // at bits 0) and announces itself to the maximum.
            let joiner = NodeId::from_bits(1);
            assert!(net.insert_node(Node::new(joiner, ProtocolConfig::default())));
            let contact = *net.ids().last().expect("nonempty");
            net.send_external(contact, Message::Lin(joiner));
            net.run(30);
            Some(state_fingerprint(&net))
        };
        let unpadded = run(0);
        prop_assert!(unpadded.is_some(), "baseline failed to stabilize/drain");
        prop_assert_eq!(run(extra), unpadded, "padding perturbed the twin");
    }
}
