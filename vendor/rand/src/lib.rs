//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: a seedable, cloneable
//! [`StdRng`] built on xoshiro256++ (Blackman & Vigna), the [`Rng`] /
//! [`RngExt`] traits, and Fisher–Yates shuffling via
//! [`seq::SliceRandom`]. The statistical quality matters: the test suite
//! asserts near-uniform branch frequencies and per-seed determinism, so
//! this is a real generator, not a toy counter.
//!
//! Not cryptographically secure — neither is anything in this workspace
//! that consumes it.

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait Rng {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64`, expanding it to a full seed with
    /// SplitMix64 (the construction recommended by the xoshiro authors).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's word stream.
pub trait Random: Sized {
    /// Draws one uniform value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                // Truncation is the point: take the low bits of the word.
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit: xoshiro's low bits are its weakest.
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        #[allow(clippy::cast_precision_loss)]
        let mantissa = (rng.next_u64() >> 11) as f64;
        mantissa * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        #[allow(clippy::cast_precision_loss)]
        let mantissa = (rng.next_u64() >> 40) as f32;
        mantissa * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics when the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end as u64 - self.start as u64;
                // Multiply-shift bounded sampling (Lemire); the residual
                // modulo bias is < 2^-64 per draw, far below what any
                // statistical assertion in this workspace can observe.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                #[allow(clippy::cast_possible_truncation)]
                { self.start + hi as $t }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == 0 && end as u64 == u64::MAX {
                    #[allow(clippy::cast_possible_truncation)]
                    return rng.next_u64() as $t;
                }
                let span = (end as u64 - start as u64) + 1;
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                #[allow(clippy::cast_possible_truncation)]
                { start + hi as $t }
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[allow(clippy::cast_sign_loss)]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                let hi = ((u128::from(span as u64) * u128::from(rng.next_u64())) >> 64) as u64;
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                { (self.start as $u).wrapping_add(hi as $u) as $t }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[allow(clippy::cast_sign_loss)]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $u).wrapping_sub(start as $u);
                if span as u64 == u64::MAX {
                    #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                    return rng.next_u64() as $t;
                }
                let hi = ((u128::from(span as u64 + 1) * u128::from(rng.next_u64())) >> 64) as u64;
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                { (start as $u).wrapping_add(hi as $u) as $t }
            }
        }
    )*};
}
impl_sample_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::random(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws one uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws a value uniformly from `range`. Panics on an empty range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Named generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// 256 bits of state, period `2^256 − 1`, passes BigCrush; `Clone`
    /// forks the exact stream and `Debug` shows the raw state (the
    /// simulator's `Network` derives `Debug` through its scheduler RNG).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // The all-zero state is xoshiro's single fixed point.
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngExt};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(8);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_forks_the_stream() {
        let mut a = StdRng::seed_from_u64(3);
        a.next_u64();
        let mut b = a.clone();
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut below_half = 0u32;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            if x < 0.5 {
                below_half += 1;
            }
        }
        let frac = f64::from(below_half) / f64::from(n);
        assert!((0.48..0.52).contains(&frac), "frac = {frac}");
    }

    #[test]
    fn range_sampling_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let k = rng.random_range(0usize..10);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.random_range(5u64..=6);
            assert!(v == 5 || v == 6);
        }
    }

    #[test]
    fn random_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((0.22..0.28).contains(&frac), "frac = {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_mixes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..32).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert_ne!(v, orig, "32 elements staying in place is ~impossible");
    }
}
