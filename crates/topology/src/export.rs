//! Graph export for external visualization (Graphviz DOT).
//!
//! Small-world structure is easiest to *see*: the ring as a circle, the
//! long-range links as chords. `to_dot` renders any [`Graph`] (circular
//! layout hints included for ring-ranked graphs), and
//! `snapshot_to_dot` renders a protocol snapshot with the link roles
//! (list / ring / long-range) distinguished by style.

use crate::graph::Graph;
use std::fmt::Write as _;
use swn_core::views::Snapshot;

/// Renders a directed graph as Graphviz DOT (`circo`-friendly: nodes are
/// pinned on a circle when `circular` is set, which is the right layout
/// for ring-ranked graphs).
pub fn to_dot(g: &Graph, name: &str, circular: bool) -> String {
    let n = g.n();
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  node [shape=circle, fontsize=8, width=0.25];");
    if circular && n > 0 {
        let radius = (n as f64) / std::f64::consts::TAU * 0.5 + 1.0;
        for v in 0..n {
            let angle = std::f64::consts::TAU * (v as f64) / (n as f64);
            let (x, y) = (radius * angle.cos(), radius * angle.sin());
            let _ = writeln!(out, "  {v} [pos=\"{x:.3},{y:.3}!\"];");
        }
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "  {u} -> {v};");
    }
    out.push_str("}\n");
    out
}

/// Renders a protocol snapshot as DOT with link roles styled: list links
/// solid, ring edges dashed, long-range links bold red. Node labels are
/// the id ranks.
pub fn snapshot_to_dot(s: &Snapshot, name: &str) -> String {
    let order = s.sorted_indices();
    let n = order.len();
    let mut rank_of = vec![0usize; s.len()];
    for (rank, &idx) in order.iter().enumerate() {
        rank_of[idx] = rank;
    }
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  node [shape=circle, fontsize=8, width=0.25];");
    let radius = (n.max(1) as f64) / std::f64::consts::TAU * 0.5 + 1.0;
    for (rank, &idx) in order.iter().enumerate() {
        let angle = std::f64::consts::TAU * (rank as f64) / (n as f64);
        let (x, y) = (radius * angle.cos(), radius * angle.sin());
        let _ = writeln!(
            out,
            "  {rank} [pos=\"{x:.3},{y:.3}!\", tooltip=\"{}\"];",
            s.nodes()[idx].id()
        );
    }
    for &idx in &order {
        let node = &s.nodes()[idx];
        let me = rank_of[idx];
        let mut emit = |to: swn_core::id::NodeId, style: &str| {
            if let Some(t) = s.index_of(to) {
                let _ = writeln!(out, "  {me} -> {} [{style}];", rank_of[t]);
            }
        };
        if let Some(l) = node.left().fin() {
            emit(l, "color=gray40");
        }
        if let Some(r) = node.right().fin() {
            emit(r, "color=gray40");
        }
        if let Some(ring) = node.ring() {
            emit(ring, "style=dashed, color=blue");
        }
        if node.lrl() != node.id() {
            emit(node.lrl(), "style=bold, color=red");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use swn_core::config::ProtocolConfig;
    use swn_core::id::evenly_spaced_ids;
    use swn_core::invariants::make_sorted_ring;

    #[test]
    fn dot_contains_all_edges() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let dot = to_dot(&g, "tri", false);
        assert!(dot.starts_with("digraph tri {"));
        assert!(dot.contains("0 -> 1;"));
        assert!(dot.contains("1 -> 2;"));
        assert!(dot.contains("2 -> 0;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn circular_layout_pins_positions() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let dot = to_dot(&g, "c", true);
        assert_eq!(dot.matches("pos=").count(), 4);
        assert!(dot.contains('!'), "positions must be pinned");
    }

    #[test]
    fn snapshot_dot_styles_link_roles() {
        let ids = evenly_spaced_ids(6);
        let mut nodes = make_sorted_ring(&ids, ProtocolConfig::default());
        // Give one node a long-range link.
        nodes[1] = swn_core::node::Node::with_state(
            nodes[1].id(),
            nodes[1].left(),
            nodes[1].right(),
            ids[4],
            None,
            ProtocolConfig::default(),
        );
        let s = Snapshot::from_nodes(nodes);
        let dot = snapshot_to_dot(&s, "net");
        assert!(dot.contains("color=gray40"), "list links styled");
        assert!(
            dot.contains("style=dashed, color=blue"),
            "ring edges styled"
        );
        assert!(dot.contains("style=bold, color=red"), "lrl styled");
        assert!(dot.contains("1 -> 4 [style=bold, color=red];"));
    }

    #[test]
    fn empty_graph_renders() {
        let dot = to_dot(&Graph::new(0), "e", true);
        assert!(dot.contains("digraph e {"));
    }
}
