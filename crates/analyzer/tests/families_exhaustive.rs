//! Acceptance suite: the checker exhaustively explores every seeded
//! n = 3 topology family to quiescence with zero violations.
//!
//! These are the real-protocol runs the paper's safety lemmas predict to
//! be clean: every message-delivery order and regular-action schedule
//! (one regular action per node, set-semantics channels) preserves weak
//! CC-connectivity and the monotone phase predicates, and every
//! quiescent state is reached without a single monitor firing. The
//! heavier clique family runs under one policy here; the full
//! two-policy sweep is the `analyzer` binary's default mode, which CI
//! runs in release.

use swn_analyzer::{ExploreConfig, Explorer, Family, Policy, RealStepper};

fn check(family: Family, policy: Policy) {
    let initial = family.initial_state(3, 1, 1);
    let cfg = ExploreConfig {
        policy,
        ..ExploreConfig::default()
    };
    let report = Explorer::new(&RealStepper, cfg).run(&initial);
    assert!(
        report.clean_and_exhaustive(),
        "{} under {}: truncated={} violation={:?}",
        family.label(),
        policy.label(),
        report.truncated,
        report.violation
    );
    assert!(report.quiescent_states >= 1, "must reach quiescence");
    assert!(report.distinct_states > 1_000, "search must be non-trivial");
}

#[test]
fn line_is_clean_and_exhaustive_under_both_policies() {
    for policy in Policy::ALL {
        check(Family::Line, policy);
    }
}

#[test]
fn star_is_clean_and_exhaustive_under_both_policies() {
    for policy in Policy::ALL {
        check(Family::Star, policy);
    }
}

#[test]
fn clique_is_clean_and_exhaustive() {
    check(Family::Clique, Policy::Zeros);
}

#[test]
#[ignore = "heavy (~1.3M states); the analyzer binary's default sweep covers it"]
fn clique_is_clean_and_exhaustive_under_ones() {
    check(Family::Clique, Policy::Ones);
}
