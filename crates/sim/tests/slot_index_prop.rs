//! Property test: the dense id→slot index agrees with a `BTreeMap`
//! routing oracle under churn.
//!
//! The round loop routes every message through [`SlotIndex::get`], so a
//! single stale entry silently delivers messages to the wrong node. The
//! dangerous pattern is the network's slot recycling: `remove_node`
//! pushes a slot onto a free list and a later insert reuses it for a
//! *different* id — a buggy backward-shift deletion would leave the old
//! id reachable (routing to a slot now owned by someone else) or make a
//! surviving id unreachable (its probe chain broken by the hole).
//!
//! This test replays randomized insert/remove/lookup sequences over a
//! deliberately small id universe (maximizing reuse and hash collisions)
//! against a `BTreeMap<NodeId, usize>` oracle, with the same free-list
//! slot allocation the network uses, checking full agreement — every
//! lookup, the ordered traversal, and the length — after every step.
//!
//! [`SlotIndex::get`]: swn_sim::slots::SlotIndex::get

use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use swn_core::id::NodeId;
use swn_sim::slots::SlotIndex;

/// One scripted operation over an id drawn from the small universe.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Op {
    Insert(u64),
    Remove(u64),
    Lookup(u64),
}

fn decode(code: (u8, u64)) -> Op {
    match code.0 {
        0 => Op::Insert(code.1),
        1 => Op::Remove(code.1),
        _ => Op::Lookup(code.1),
    }
}

fn assert_full_agreement(
    idx: &SlotIndex,
    oracle: &BTreeMap<NodeId, usize>,
    universe: u64,
    step: usize,
) {
    assert_eq!(idx.len(), oracle.len(), "len diverged at step {step}");
    for bits in 0..universe {
        let id = NodeId::from_bits(bits);
        assert_eq!(
            idx.get(id),
            oracle.get(&id).copied(),
            "lookup of {bits} diverged at step {step}"
        );
    }
    let ordered: Vec<(NodeId, usize)> = idx.ids().zip(idx.slots_by_id()).collect();
    let expected: Vec<(NodeId, usize)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
    assert_eq!(ordered, expected, "ordered view diverged at step {step}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dense_index_agrees_with_btreemap_oracle_under_churn(
        codes in vec((0u8..3, 0u64..24), 1..200),
    ) {
        const UNIVERSE: u64 = 24;
        let mut idx = SlotIndex::new();
        let mut oracle: BTreeMap<NodeId, usize> = BTreeMap::new();
        // The network's slot allocation: recycle freed slots LIFO, grow
        // otherwise. Shared by both sides so slots stay comparable.
        let mut free: Vec<usize> = Vec::new();
        let mut next_slot = 0usize;
        for (step, &code) in codes.iter().enumerate() {
            match decode(code) {
                Op::Insert(bits) => {
                    let id = NodeId::from_bits(bits);
                    match oracle.entry(id) {
                        Entry::Occupied(_) => {
                            prop_assert!(!idx.insert(id, usize::MAX), "duplicate accepted");
                        }
                        Entry::Vacant(e) => {
                            let slot = free.pop().unwrap_or_else(|| {
                                next_slot += 1;
                                next_slot - 1
                            });
                            prop_assert!(idx.insert(id, slot));
                            e.insert(slot);
                        }
                    }
                }
                Op::Remove(bits) => {
                    let id = NodeId::from_bits(bits);
                    let expect = oracle.remove(&id);
                    let got = idx.remove(id);
                    prop_assert_eq!(got, expect, "remove diverged at step {}", step);
                    if let Some(slot) = got {
                        free.push(slot);
                    }
                }
                Op::Lookup(bits) => {
                    let id = NodeId::from_bits(bits);
                    prop_assert_eq!(
                        idx.get(id),
                        oracle.get(&id).copied(),
                        "lookup diverged at step {}",
                        step
                    );
                }
            }
            assert_full_agreement(&idx, &oracle, UNIVERSE, step);
        }
    }
}

/// Deterministic stress along the same axis: many rounds of "remove a
/// batch, reinsert different ids into the recycled slots", which is the
/// exact traffic pattern `Network` churn produces at scale.
#[test]
fn slot_recycling_stress_stays_consistent() {
    let mut idx = SlotIndex::new();
    let mut oracle: BTreeMap<NodeId, usize> = BTreeMap::new();
    let mut free: Vec<usize> = Vec::new();
    let mut next_slot = 0usize;
    let mut alloc = |free: &mut Vec<usize>| {
        free.pop().unwrap_or_else(|| {
            next_slot += 1;
            next_slot - 1
        })
    };
    // Seed 64 nodes.
    for bits in 0..64u64 {
        let slot = alloc(&mut free);
        assert!(idx.insert(NodeId::from_bits(bits), slot));
        oracle.insert(NodeId::from_bits(bits), slot);
    }
    // 40 churn waves: drop every third live id, insert fresh ids.
    let mut fresh = 64u64;
    for wave in 0..40 {
        let victims: Vec<NodeId> = oracle.keys().copied().step_by(3).collect();
        for v in victims {
            let slot = oracle.remove(&v).expect("oracle has victim");
            assert_eq!(idx.remove(v), Some(slot), "wave {wave}");
            free.push(slot);
        }
        for _ in 0..20 {
            let id = NodeId::from_bits(fresh);
            fresh += 1;
            let slot = alloc(&mut free);
            assert!(idx.insert(id, slot), "wave {wave}");
            oracle.insert(id, slot);
        }
        assert_eq!(idx.len(), oracle.len(), "wave {wave}");
        for (&id, &slot) in &oracle {
            assert_eq!(idx.get(id), Some(slot), "wave {wave}: {id:?}");
        }
        let ordered: Vec<NodeId> = idx.ids().collect();
        let expected: Vec<NodeId> = oracle.keys().copied().collect();
        assert_eq!(ordered, expected, "wave {wave}");
    }
}
