//! The explorer's global-state model and per-activation monitors.
//!
//! A [`State`] is a closed-world configuration: every node's variables,
//! every channel's contents (as a canonically ordered multiset — channels
//! are unordered in the asynchronous model, so delivery *order within one
//! channel* is scheduler choice, not state), and the per-node budget of
//! remaining regular actions. The budget is what makes the reachable
//! space finite: regular actions are always enabled in the protocol, so
//! an unbounded schedule never quiesces; bounding each node to `k`
//! regular actions explores every interleaving of `n·k` regular actions
//! with all the message deliveries they transitively cause.

use crate::stepper::{Policy, PolicyRng, Stepper};
use std::fmt;
use swn_core::id::{Extended, NodeId};
use swn_core::invariants::{is_sorted_list, is_sorted_ring, weakly_connected};
use swn_core::message::Message;
use swn_core::node::Node;
use swn_core::outbox::Outbox;
use swn_core::views::{Snapshot, View};
use swn_sim::trace::RoundStats;

/// One scheduler choice: deliver a specific in-flight message, or run a
/// node's regular action.
#[derive(Clone, Debug, PartialEq)]
pub enum Transition {
    /// Deliver one instance of `msg` from node `dest`'s channel.
    Deliver {
        /// Receiver's node index.
        dest: usize,
        /// The message to deliver (identifies the channel entry).
        msg: Message,
    },
    /// Run node `node`'s regular action (consumes one budget unit).
    Regular {
        /// The acting node's index.
        node: usize,
    },
}

impl Transition {
    /// The node whose variables this transition touches. Transitions with
    /// distinct actors commute: a handler mutates only its own node and
    /// appends to channels (multisets, so append order is invisible), and
    /// neither delivery consumes the other's message.
    pub fn actor(&self) -> usize {
        match *self {
            Transition::Deliver { dest, .. } => dest,
            Transition::Regular { node } => node,
        }
    }
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Transition::Deliver { dest, msg } => write!(f, "deliver {msg:?} -> node[{dest}]"),
            Transition::Regular { node } => write!(f, "regular action at node[{node}]"),
        }
    }
}

/// The monitored monotone predicates, evaluated on one state.
///
/// Each is a pure function of the configuration; monotonicity along an
/// execution is therefore checkable per transition (`true` before,
/// `false` after = violation) with no history carried in the state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PredVector {
    /// `weakly_connected(s, View::Cc)` — the paper's core safety lemma:
    /// no protocol action loses the last connection between components.
    pub connected: bool,
    /// `is_sorted_list` — once the `l`/`r` pointers form the sorted list
    /// they only ever get refined toward it, never away.
    pub sorted_list: bool,
    /// `is_sorted_ring` — sorted list plus the closing ring edges.
    pub sorted_ring: bool,
}

impl PredVector {
    /// Predicate names paired with (before, after) values, for reporting.
    pub fn diff(self, after: PredVector) -> [(&'static str, bool, bool); 3] {
        [
            ("weakly_connected(Cc)", self.connected, after.connected),
            ("is_sorted_list", self.sorted_list, after.sorted_list),
            ("is_sorted_ring", self.sorted_ring, after.sorted_ring),
        ]
    }

    /// Compact `C L R` / `- - -` rendering for trace listings.
    pub fn glyphs(self) -> String {
        let g = |b: bool, c: char| if b { c } else { '-' };
        format!(
            "{}{}{}",
            g(self.connected, 'C'),
            g(self.sorted_list, 'L'),
            g(self.sorted_ring, 'R')
        )
    }
}

/// A monitor violation observed while executing one transition.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// A monotone predicate was true before the transition and false after.
    MonotonicityBroken {
        /// Which predicate flipped.
        predicate: &'static str,
    },
    /// A handler emitted a message addressed to its own node (other than
    /// the declared `inclrl`-at-origin self-delivery).
    SelfSend {
        /// The offending node's identifier.
        node: NodeId,
        /// The self-addressed message.
        msg: Message,
    },
    /// One activation emitted the same `(destination, message)` pair twice.
    DuplicateSend {
        /// The acting node.
        node: NodeId,
        /// Destination of the duplicated send.
        dest: NodeId,
        /// The duplicated message.
        msg: Message,
    },
    /// A `ProtocolEvent` that `RoundStats::count_event` does not fold into
    /// any counter — the accounting in `swn_sim::trace` is incomplete.
    UnaccountedEvent {
        /// Debug rendering of the orphaned event.
        event: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MonotonicityBroken { predicate } => {
                write!(f, "monotone predicate {predicate} flipped true -> false")
            }
            Violation::SelfSend { node, msg } => {
                write!(f, "node {node:?} sent itself {msg:?}")
            }
            Violation::DuplicateSend { node, dest, msg } => {
                write!(f, "node {node:?} emitted duplicate ({dest:?}, {msg:?})")
            }
            Violation::UnaccountedEvent { event } => {
                write!(f, "event {event} not counted by RoundStats")
            }
        }
    }
}

/// Canonical state encoding (see [`State::key`]).
pub type Key = Vec<u64>;

/// Code for a finite identifier: its index in the node list, offset past
/// the two sentinel codes. Panics on an identifier outside the closed
/// world — the model owns every id that can appear.
fn id_code(nodes: &[Node], id: NodeId) -> u64 {
    let i = nodes
        .iter()
        .position(|n| n.id() == id)
        .expect("identifier belongs to the closed world");
    i as u64 + 2
}

/// Code for an extended identifier: `−∞` → 0, `+∞` → 1, finite → index+2.
fn ext_code(nodes: &[Node], e: Extended) -> u64 {
    match e {
        Extended::NegInf => 0,
        Extended::PosInf => 1,
        Extended::Fin(id) => id_code(nodes, id),
    }
}

/// Canonical `[kind, payload, payload]` encoding of a message.
pub(crate) fn msg_code(nodes: &[Node], m: &Message) -> [u64; 3] {
    match *m {
        Message::Lin(x) => [0, id_code(nodes, x), 0],
        Message::IncLrl(x) => [1, id_code(nodes, x), 0],
        Message::ResLrl(a, b) => [2, ext_code(nodes, a), ext_code(nodes, b)],
        Message::Ring(x) => [3, id_code(nodes, x), 0],
        Message::ResRing(x) => [4, id_code(nodes, x), 0],
        Message::ProbR(x) => [5, id_code(nodes, x), 0],
        Message::ProbL(x) => [6, id_code(nodes, x), 0],
    }
}

/// Inverse of [`ext_code`]. Panics on a code outside the closed world.
fn decode_ext(nodes: &[Node], code: u64) -> Extended {
    match code {
        0 => Extended::NegInf,
        1 => Extended::PosInf,
        c => Extended::Fin(nodes[usize::try_from(c - 2).expect("code fits usize")].id()),
    }
}

/// Inverse of the finite-id arm of [`id_code`].
fn decode_id(nodes: &[Node], code: u64) -> NodeId {
    nodes[usize::try_from(code - 2).expect("code fits usize")].id()
}

/// Inverse of [`msg_code`], used to unpack edge labels of the liveness
/// graph back into concrete messages.
pub(crate) fn decode_msg(nodes: &[Node], code: [u64; 3]) -> Message {
    match code[0] {
        0 => Message::Lin(decode_id(nodes, code[1])),
        1 => Message::IncLrl(decode_id(nodes, code[1])),
        2 => Message::ResLrl(decode_ext(nodes, code[1]), decode_ext(nodes, code[2])),
        3 => Message::Ring(decode_id(nodes, code[1])),
        4 => Message::ResRing(decode_id(nodes, code[1])),
        5 => Message::ProbR(decode_id(nodes, code[1])),
        6 => Message::ProbL(decode_id(nodes, code[1])),
        k => unreachable!("unknown message kind code {k}"),
    }
}

/// Result of executing one transition (see [`State::apply`]).
#[derive(Clone, Debug)]
pub struct Applied {
    /// The successor configuration.
    pub next: State,
    /// Per-activation monitor violations.
    pub violations: Vec<Violation>,
    /// The activation's raw outbox sends, *before* channel-bound
    /// coalescing. The sleep-set reduction needs these: a send that
    /// coalesces does not commute with a pending delivery of the same
    /// message at the same destination, so independence is refined by
    /// send-sets (see `explore`).
    pub sends: Vec<(NodeId, Message)>,
    /// Sends coalesced by the channel-multiplicity bound.
    pub coalesced_sends: u32,
}

/// A closed-world configuration of the small-scope model.
#[derive(Clone, Debug)]
pub struct State {
    /// Node states, in fixed index order (the order never changes).
    pub nodes: Vec<Node>,
    /// `channels[i]` = multiset of messages in flight to `nodes[i]`,
    /// kept in canonical encoded order.
    pub channels: Vec<Vec<Message>>,
    /// Remaining regular actions per node.
    pub budgets: Vec<u32>,
    /// Maximum copies of one identical message a channel holds; further
    /// copies are coalesced (see [`State::with_channel_bound`]).
    pub channel_bound: u32,
}

impl State {
    /// Builds the initial state from adversarially initialized nodes,
    /// preloaded stale messages, and a uniform regular-action budget.
    pub fn initial(nodes: Vec<Node>, preloads: &[(NodeId, Message)], budget: u32) -> State {
        Self::initial_bounded(nodes, preloads, budget, 1)
    }

    /// [`State::initial`] with an explicit channel-multiplicity bound:
    /// how many *identical* copies of one message a channel may hold
    /// (further copies, preloaded or sent, are coalesced). The default
    /// bound of 1 is the set-channel abstraction: the transport merges
    /// identical in-flight messages to one destination. Like the
    /// regular-action budget, the bound is part of the small-scope model:
    /// a violation found under it is real, and exhaustiveness is relative
    /// to it. Raise it to also explore schedules that deliver the same
    /// content several times.
    pub fn initial_bounded(
        nodes: Vec<Node>,
        preloads: &[(NodeId, Message)],
        budget: u32,
        channel_bound: u32,
    ) -> State {
        assert!(channel_bound >= 1, "channel bound must be at least 1");
        let n = nodes.len();
        let mut s = State {
            nodes,
            channels: vec![Vec::new(); n],
            budgets: vec![budget; n],
            channel_bound,
        };
        for (dest, msg) in preloads {
            let i = s
                .index_of(*dest)
                .expect("preload addressed to a node in the network");
            s.push_bounded(i, *msg);
        }
        s.canonicalize();
        s
    }

    /// Appends `msg` to channel `i` unless the bound's worth of identical
    /// copies is already in flight. Returns true when the copy was
    /// coalesced (dropped).
    fn push_bounded(&mut self, i: usize, msg: Message) -> bool {
        let copies = self.channels[i].iter().filter(|m| **m == msg).count();
        if copies >= self.channel_bound as usize {
            return true;
        }
        self.channels[i].push(msg);
        false
    }

    /// Index of the node with identifier `id`.
    pub fn index_of(&self, id: NodeId) -> Option<usize> {
        self.nodes.iter().position(|n| n.id() == id)
    }

    /// Restores the canonical channel order (channels are multisets, so
    /// any stable total order works; the encoded triple is cheap).
    fn canonicalize(&mut self) {
        let nodes = std::mem::take(&mut self.nodes);
        for ch in &mut self.channels {
            ch.sort_unstable_by_key(|m| msg_code(&nodes, m));
        }
        self.nodes = nodes;
    }

    /// Semantic canonical encoding of the configuration, used as the
    /// visited-set key. It covers every variable future behaviour depends
    /// on: per node `(l, r, lrl, ring, age, tick mod probe_period)` — the
    /// raw probing tick only acts through its residue — plus the budgets
    /// and the canonically ordered channel multisets. Node ids and the
    /// protocol config are immutable and omitted. Equal keys are
    /// therefore bisimilar states.
    pub fn key(&self) -> Key {
        let mut k = Vec::with_capacity(6 * self.nodes.len() + 4 * self.channels.len());
        for node in &self.nodes {
            k.push(ext_code(&self.nodes, node.left()));
            k.push(ext_code(&self.nodes, node.right()));
            k.push(id_code(&self.nodes, node.lrl()));
            k.push(node.ring().map_or(0, |x| id_code(&self.nodes, x)));
            k.push(node.age());
            k.push(node.probe_tick() % node.config().probe_period);
        }
        for &b in &self.budgets {
            k.push(u64::from(b));
        }
        for ch in &self.channels {
            k.push(ch.len() as u64);
            for m in ch {
                k.extend(msg_code(&self.nodes, m));
            }
        }
        k
    }

    /// Evaluates the monitored predicates on this configuration.
    pub fn eval(&self) -> PredVector {
        let snap = Snapshot::new(self.nodes.clone(), self.channels.clone());
        PredVector {
            connected: weakly_connected(&snap, View::Cc),
            sorted_list: is_sorted_list(&snap),
            sorted_ring: is_sorted_ring(&snap),
        }
    }

    /// True when no transition is enabled: all channels drained and all
    /// regular-action budgets exhausted.
    pub fn is_quiescent(&self) -> bool {
        self.budgets.iter().all(|&b| b == 0) && self.channels.iter().all(Vec::is_empty)
    }

    /// All enabled transitions, in a fixed deterministic order: regular
    /// actions by node index, then deliveries by node index and canonical
    /// message order. Identical in-flight messages to the same destination
    /// are collapsed to one transition — delivering either instance
    /// produces the same successor.
    pub fn enabled(&self) -> Vec<Transition> {
        let mut ts = Vec::new();
        for (i, &b) in self.budgets.iter().enumerate() {
            if b > 0 {
                ts.push(Transition::Regular { node: i });
            }
        }
        self.push_deliveries(&mut ts);
        ts
    }

    fn push_deliveries(&self, ts: &mut Vec<Transition>) {
        for (i, ch) in self.channels.iter().enumerate() {
            for (k, m) in ch.iter().enumerate() {
                if ch[..k].contains(m) {
                    continue; // duplicate instance: same successor state
                }
                ts.push(Transition::Deliver { dest: i, msg: *m });
            }
        }
    }

    /// Executes `t` through `stepper`, returning the successor, any
    /// per-activation violations and the number of coalesced sends, or
    /// `None` when `t` is not enabled here (used by trace replay during
    /// minimization).
    pub fn apply(&self, stepper: &dyn Stepper, policy: Policy, t: &Transition) -> Option<Applied> {
        let mut next = self.clone();
        let mut out = Outbox::new();
        let mut rng = PolicyRng(policy);
        let (actor, trigger) = match *t {
            Transition::Deliver { dest, ref msg } => {
                let pos = next.channels[dest].iter().position(|m| m == msg)?;
                let msg = next.channels[dest].remove(pos);
                stepper.deliver(&mut next.nodes[dest], msg, &mut rng, &mut out);
                (dest, Some(msg))
            }
            Transition::Regular { node } => {
                if next.budgets[node] == 0 {
                    return None;
                }
                next.budgets[node] -= 1;
                stepper.regular(&mut next.nodes[node], &mut out);
                (node, None)
            }
        };
        let sends = out.sends().to_vec();
        let (violations, coalesced_sends) = next.absorb_outbox(actor, trigger.as_ref(), &out);
        next.canonicalize();
        Some(Applied {
            next,
            violations,
            sends,
            coalesced_sends,
        })
    }

    /// Routes the activation's sends into the channels and runs the
    /// per-activation monitors (self-send, duplicate send, event
    /// accounting). `trigger` is the message the activation delivered
    /// (`None` for a regular action).
    fn absorb_outbox(
        &mut self,
        actor: usize,
        trigger: Option<&Message>,
        out: &Outbox,
    ) -> (Vec<Violation>, u32) {
        let actor_id = self.nodes[actor].id();
        let mut violations = Vec::new();
        let mut coalesced = 0u32;
        let sends = out.sends();
        for (k, (dest, msg)) in sends.iter().enumerate() {
            // The protocol declares exactly two self-delivery idioms,
            // both part of the lrl-at-origin loop:
            //  * `sendid` emits `inclrl` to the token's endpoint, which
            //    *is* the node itself while lrl = id;
            //  * answering one's own `inclrl` (`respondlrl`) sends the
            //    `reslrl` back to origin = self — this is how the token
            //    first leaves its origin.
            // Everything else addressed to self is a bug.
            let declared_self_delivery = *msg == Message::IncLrl(actor_id)
                || (matches!(msg, Message::ResLrl(..))
                    && trigger == Some(&Message::IncLrl(actor_id)));
            if *dest == actor_id && !declared_self_delivery {
                violations.push(Violation::SelfSend {
                    node: actor_id,
                    msg: *msg,
                });
            }
            // The duplicate monitor covers the control messages, which
            // the handlers emit at most once per activation by
            // construction. Two duplicate shapes are *declared* protocol
            // behaviour and exempt:
            //  * probes — Algorithm 10 launches a ring-target probe and
            //    an lrl probe in one activation, and when ring = lrl the
            //    two coincide (probes are idempotent);
            //  * `lin` — sanitation can salvage the very identifier the
            //    activation also delivers; both enter `linearize`, whose
            //    never-drop rule (Lemma 4.10) then forwards identically.
            let dedupe_checked = matches!(
                msg,
                Message::IncLrl(_) | Message::ResLrl(..) | Message::Ring(_) | Message::ResRing(_)
            );
            if dedupe_checked && sends[..k].iter().any(|(d, m)| d == dest && m == msg) {
                violations.push(Violation::DuplicateSend {
                    node: actor_id,
                    dest: *dest,
                    msg: *msg,
                });
            }
            let i = self
                .index_of(*dest)
                .expect("message addressed to a node in the closed world");
            if self.push_bounded(i, *msg) {
                coalesced += 1;
            }
        }
        for ev in out.events() {
            let mut stats = RoundStats::default();
            stats.count_event(ev);
            if stats == RoundStats::default() {
                violations.push(Violation::UnaccountedEvent {
                    event: format!("{ev:?}"),
                });
            }
        }
        (violations, coalesced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stepper::RealStepper;
    use swn_core::config::ProtocolConfig;
    use swn_core::id::evenly_spaced_ids;

    fn two_fresh_nodes() -> (Vec<Node>, Vec<NodeId>) {
        let ids = evenly_spaced_ids(2);
        let nodes = ids
            .iter()
            .map(|&id| Node::new(id, ProtocolConfig::default()))
            .collect();
        (nodes, ids)
    }

    #[test]
    fn initial_state_routes_preloads() {
        let (nodes, ids) = two_fresh_nodes();
        let s = State::initial(nodes, &[(ids[0], Message::Lin(ids[1]))], 2);
        assert_eq!(s.channels[0], vec![Message::Lin(ids[1])]);
        assert!(s.channels[1].is_empty());
        assert_eq!(s.budgets, vec![2, 2]);
        assert!(!s.is_quiescent());
    }

    #[test]
    fn enabled_collapses_duplicate_messages() {
        let (nodes, ids) = two_fresh_nodes();
        let pre = [
            (ids[0], Message::Lin(ids[1])),
            (ids[0], Message::Lin(ids[1])),
        ];
        let s = State::initial_bounded(nodes, &pre, 0, 2);
        assert_eq!(s.channels[0].len(), 2, "bound 2 keeps both copies");
        let ts = s.enabled();
        assert_eq!(ts.len(), 1, "identical instances collapse: {ts:?}");
    }

    #[test]
    fn delivery_consumes_one_instance() {
        let (nodes, ids) = two_fresh_nodes();
        let pre = [
            (ids[0], Message::Lin(ids[1])),
            (ids[0], Message::Lin(ids[1])),
        ];
        let s = State::initial_bounded(nodes, &pre, 0, 2);
        let t = Transition::Deliver {
            dest: 0,
            msg: Message::Lin(ids[1]),
        };
        let a = s.apply(&RealStepper, Policy::Zeros, &t).expect("enabled");
        assert!(
            a.violations.is_empty(),
            "real protocol is clean: {:?}",
            a.violations
        );
        assert_eq!(a.next.channels[0].len(), 1, "one instance left");
    }

    #[test]
    fn preload_copies_beyond_bound_coalesce() {
        let (nodes, ids) = two_fresh_nodes();
        let pre = [
            (ids[0], Message::Lin(ids[1])),
            (ids[0], Message::Lin(ids[1])),
        ];
        let s = State::initial(nodes, &pre, 0);
        assert_eq!(
            s.channels[0],
            vec![Message::Lin(ids[1])],
            "default bound 1 keeps a single copy"
        );
    }

    #[test]
    fn replaying_disabled_transition_returns_none() {
        let (nodes, ids) = two_fresh_nodes();
        let s = State::initial(nodes, &[], 0);
        let t = Transition::Deliver {
            dest: 0,
            msg: Message::Lin(ids[1]),
        };
        assert!(s.apply(&RealStepper, Policy::Zeros, &t).is_none());
        assert!(s
            .apply(
                &RealStepper,
                Policy::Zeros,
                &Transition::Regular { node: 1 }
            )
            .is_none());
    }

    #[test]
    fn inclrl_at_origin_is_not_a_self_send() {
        let (nodes, _) = two_fresh_nodes();
        // Fresh node: lrl = id, so the regular action sends inclrl to
        // itself — the declared exception.
        let s = State::initial(nodes, &[], 1);
        let a = s
            .apply(
                &RealStepper,
                Policy::Zeros,
                &Transition::Regular { node: 0 },
            )
            .expect("budget available");
        assert!(
            a.violations.is_empty(),
            "declared self-delivery flagged: {:?}",
            a.violations
        );
        assert!(a.next.channels[0].contains(&Message::IncLrl(a.next.nodes[0].id())));
        assert_eq!(a.next.budgets[0], 0);
    }

    #[test]
    fn predicate_vector_on_fresh_pair() {
        let (nodes, ids) = two_fresh_nodes();
        let disconnected = State::initial(nodes.clone(), &[], 0);
        assert!(!disconnected.eval().connected);
        let connected = State::initial(nodes, &[(ids[0], Message::Lin(ids[1]))], 0);
        assert!(connected.eval().connected, "channel edge counts in Cc");
    }

    #[test]
    fn key_distinguishes_budgets_and_channels() {
        let (nodes, ids) = two_fresh_nodes();
        let a = State::initial(nodes.clone(), &[], 1);
        let b = State::initial(nodes.clone(), &[], 2);
        assert_ne!(a.key(), b.key());
        let c = State::initial(nodes, &[(ids[0], Message::Lin(ids[1]))], 1);
        assert_ne!(a.key(), c.key());
        assert_eq!(a.key(), a.clone().key());
    }
}
