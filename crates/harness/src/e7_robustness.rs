//! **E7 — Robustness under failures and attacks** (Section I / IV.G,
//! reference [25]).
//!
//! The stabilized small world vs the structured Chord overlay, the static
//! Kleinberg graph, and an Erdős–Rényi graph of matching mean degree.
//! For removal fractions up to 50%, under random failures and
//! highest-degree-first attacks, we report the giant-component fraction
//! and the greedy-routing success among survivors.
//!
//! Shape to verify: the small-world systems (constant degree, randomized
//! links) degrade gracefully and look the same under attack and failure
//! (no hubs to hit); ER at *matched* mean degree fragments earlier;
//! idealized Chord is more robust in absolute terms but pays Θ(log n)
//! links per node for it — the degree column makes the state cost of that
//! robustness explicit, and unlike the protocol it has no mechanism to
//! rebuild lost fingers.

use crate::table::{f2, Table};
use crate::testbed::harmonic_network;
use swn_baselines::chord::chord;
use swn_baselines::kleinberg::kleinberg_ring;
use swn_baselines::random_graph::gnm;
use swn_core::config::ProtocolConfig;
use swn_sim::parallel::par_map;
use swn_topology::robustness::{sweep, FailureMode, RobustnessPoint};
use swn_topology::Graph;

/// Parameters for E7.
#[derive(Clone, Debug)]
pub struct Params {
    /// Network size.
    pub n: usize,
    /// Removal fractions.
    pub fractions: Vec<f64>,
    /// Routing pairs per point.
    pub pairs: usize,
    /// Protocol ε.
    pub epsilon: f64,
}

impl Params {
    /// Full-scale run.
    pub fn full() -> Self {
        Params {
            n: 1024,
            fractions: vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5],
            pairs: 400,
            epsilon: 0.1,
        }
    }

    /// Reduced scale.
    pub fn quick() -> Self {
        Params {
            n: 256,
            fractions: vec![0.0, 0.2, 0.4],
            pairs: 150,
            epsilon: 0.1,
        }
    }
}

/// Systems compared by E7.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum System {
    /// The self-stabilized overlay (stationary fixture).
    Protocol,
    /// The static harmonic construction.
    Kleinberg,
    /// The idealized structured overlay.
    Chord,
    /// Erdős–Rényi at matched mean degree.
    RandomGraph,
}

impl System {
    /// All systems in display order.
    pub const ALL: [System; 4] = [
        System::Protocol,
        System::Kleinberg,
        System::Chord,
        System::RandomGraph,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            System::Protocol => "protocol",
            System::Kleinberg => "kleinberg",
            System::Chord => "chord",
            System::RandomGraph => "er-graph",
        }
    }
}

/// Builds a system's graph at the experiment size.
pub fn build_graph(sys: System, p: &Params, seed: u64) -> Graph {
    match sys {
        System::Protocol => {
            let net = harmonic_network(p.n, ProtocolConfig::with_epsilon(p.epsilon), seed);
            Graph::from_view(&net.view(), swn_core::views::View::Cp)
        }
        System::Kleinberg => kleinberg_ring(p.n, seed),
        // ER with the small-world's mean degree (ring + 1 lrl ≈ 3
        // undirected edges per node).
        System::RandomGraph => gnm(p.n, p.n * 3 / 2, seed),
        System::Chord => chord(p.n),
    }
}

/// One system's sweep under one failure mode.
pub fn measure(sys: System, mode: FailureMode, p: &Params, seed: u64) -> Vec<RobustnessPoint> {
    let g = build_graph(sys, p, seed);
    sweep(&g, &p.fractions, mode, p.pairs, seed)
}

/// Runs E7 and renders the table.
pub fn run(p: &Params) -> Table {
    let mut t = Table::new(
        format!("E7  Robustness under failures and attacks (n = {})", p.n),
        "constant-degree small-world links degrade gracefully and are attack-indifferent; \
         ER at matched degree fragments first; Chord buys robustness with log n state per node \
         (Sec. I / IV.G, [25])",
        &[
            "system",
            "deg",
            "mode",
            "removed",
            "giant frac",
            "routing ok",
        ],
    );
    // The (system, mode) sweeps share nothing and use the fixed seed
    // 777, so run them (and the per-system degree census) in parallel;
    // rows are rendered in the deterministic cell order afterwards.
    let degs = par_map(&System::ALL, |&sys| {
        let g = build_graph(sys, p, 777);
        g.undirected_view().m() as f64 / p.n as f64
    });
    let cells: Vec<(System, FailureMode)> = System::ALL
        .iter()
        .flat_map(|&sys| {
            [FailureMode::Random, FailureMode::TargetedHighestDegree]
                .into_iter()
                .map(move |mode| (sys, mode))
        })
        .collect();
    let sweeps = par_map(&cells, |&(sys, mode)| measure(sys, mode, p, 777));
    for (&(sys, mode), pts) in cells.iter().zip(&sweeps) {
        let deg = degs[System::ALL
            .iter()
            .position(|&s| s == sys)
            .expect("system is in ALL")];
        for pt in pts {
            t.push_row(vec![
                sys.label().to_string(),
                f2(deg),
                match mode {
                    FailureMode::Random => "random",
                    FailureMode::TargetedHighestDegree => "attack",
                }
                .to_string(),
                f2(pt.removed_frac),
                f2(pt.giant_frac),
                f2(pt.routing_success),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intact_systems_are_fully_functional() {
        let p = Params::quick();
        for &sys in &System::ALL {
            let pts = measure(sys, FailureMode::Random, &p, 1);
            // The ring-backed systems are connected by construction; the
            // ER graph at mean degree 3 already carries a few isolated
            // nodes — itself part of the story E7 tells.
            let floor = if sys == System::RandomGraph {
                0.85
            } else {
                0.999
            };
            assert!(
                pts[0].giant_frac > floor,
                "{} giant {}",
                sys.label(),
                pts[0].giant_frac
            );
        }
    }

    #[test]
    fn protocol_keeps_giant_component_under_moderate_failure() {
        let p = Params::quick();
        let pts = measure(System::Protocol, FailureMode::Random, &p, 2);
        // 20% random failures: the ring fragments into arcs, but the
        // long-range shortcuts stitch most survivors together.
        let at20 = pts
            .iter()
            .find(|pt| (pt.removed_frac - 0.2).abs() < 1e-9)
            .expect("0.2 in fractions");
        assert!(at20.giant_frac > 0.4, "giant at 20%: {}", at20.giant_frac);
        // And strictly better than the bare ring would manage: a cycle
        // with 20% of 256 nodes removed shatters into ~51 arcs of mean
        // length 4, i.e. giant ≈ a few percent.
        assert!(at20.giant_frac > 0.2);
    }

    #[test]
    fn attack_close_to_failure_at_moderate_damage() {
        // The protocol graph has no real hubs (max in-degree is
        // O(log n / log log n)), so at moderate damage a targeted attack
        // buys little over random failure. (At extreme damage fractions
        // even the mild degree variance matters, so the comparison is made
        // at 20%.)
        let p = Params::quick();
        let rnd = measure(System::Protocol, FailureMode::Random, &p, 3);
        let tgt = measure(System::Protocol, FailureMode::TargetedHighestDegree, &p, 3);
        let at = |pts: &[RobustnessPoint], f: f64| {
            pts.iter()
                .find(|pt| (pt.removed_frac - f).abs() < 1e-9)
                .expect("fraction present")
                .giant_frac
        };
        let diff = (at(&rnd, 0.2) - at(&tgt, 0.2)).abs();
        assert!(
            diff < 0.4,
            "attack/failure gap {diff} too large at 20% for a near-regular graph"
        );
    }

    #[test]
    fn table_row_count() {
        let mut p = Params::quick();
        p.fractions = vec![0.0, 0.3];
        p.pairs = 50;
        let t = run(&p);
        assert_eq!(t.rows.len(), System::ALL.len() * 2 * 2);
    }
}
