//! The per-node message channel of the computational model (Section II.B).
//!
//! Channels have unbounded capacity, lose no messages, and do **not**
//! preserve order. The only liveness guarantee is *fair receipt*: a
//! message that is in the channel is eventually received. The simulator
//! enforces fairness with an age cap — a delivery policy may delay a
//! message for at most [`DeliveryPolicy::max_delay`] rounds, after which
//! delivery is forced.
//!
//! Losslessness is a property of *this* layer, not of every run: when a
//! [`crate::faults`] plan is attached to the network, the fault engine
//! may intercept a send before it is enqueued here (drop, duplicate,
//! partition) or clear a crashed node's queue wholesale. The channel
//! itself never loses an enqueued message; all loss is injected above it
//! and accounted separately (`dropped_fault` in the round stats).
//!
//! Channels also feed the active-set scheduler (DESIGN.md §12): enqueueing
//! into a node's channel is what puts that node back on the round agenda,
//! so the fair-receipt bound doubles as the scheduler's no-starvation
//! argument — a non-empty channel keeps its owner scheduled until drained.

use rand::seq::SliceRandom;
use rand::{Rng, RngExt as _};
use serde::{Deserialize, Serialize};
use swn_core::message::Message;

use crate::obs::causal::CauseTag;

/// How the scheduler decides which queued messages to deliver each round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum DeliveryPolicy {
    /// Deliver every queued message each round, in random order. This is
    /// the synchronous-round abstraction used for *measuring* convergence
    /// (DESIGN.md deviation #7).
    #[default]
    Immediate,
    /// Adversarial asynchrony: each round each message is delivered with
    /// probability `p_deliver`, but never delayed more than `max_delay`
    /// rounds (fair receipt): a message enqueued in round `e` is
    /// force-delivered no later than round `e + max_delay`. Order is
    /// randomized.
    RandomDelay {
        /// Per-round delivery probability for each queued message.
        p_deliver: f64,
        /// Fairness bound: maximal rounds a message may be delayed.
        max_delay: u64,
    },
}

impl DeliveryPolicy {
    /// The fairness bound: the maximal number of rounds a message may sit
    /// in a channel under this policy.
    pub fn max_delay(&self) -> u64 {
        match *self {
            DeliveryPolicy::Immediate => 0,
            DeliveryPolicy::RandomDelay { max_delay, .. } => max_delay,
        }
    }

    /// Validates policy parameters.
    pub fn validate(&self) -> Result<(), String> {
        if let DeliveryPolicy::RandomDelay { p_deliver, .. } = *self {
            if !(0.0..=1.0).contains(&p_deliver) || p_deliver == 0.0 {
                return Err(format!("p_deliver must be in (0, 1], got {p_deliver}"));
            }
        }
        Ok(())
    }
}

/// An unbounded, unordered, lossless message channel.
///
/// Stored struct-of-arrays: the messages and their enqueue rounds live in
/// two parallel vecs, so the message payloads are contiguous and can be
/// borrowed as a plain `&[Message]` slice by the measurement views
/// without cloning the channel.
///
/// A third, *lazy* lane carries causal provenance for the observability
/// layer: `causes[i]` tags `msgs[i]`, with the invariant
/// `causes.len() <= msgs.len()` — any missing tail is implicitly
/// [`CauseTag::ROOT`]. The detached round loop only ever calls
/// [`Channel::push`] and the non-causal takes, so `causes` stays an
/// empty vec (its `clear()` is a no-op on a null pointer) and the
/// uninstrumented path is byte-identical to the pre-causal code.
#[derive(Clone, Debug, Default)]
pub struct Channel {
    msgs: Vec<Message>,
    enqueued: Vec<u64>,
    causes: Vec<CauseTag>,
}

impl Channel {
    /// An empty channel.
    pub fn new() -> Self {
        Channel::default()
    }

    /// Enqueues a message at round `round`.
    pub fn push(&mut self, msg: Message, round: u64) {
        self.msgs.push(msg);
        self.enqueued.push(round);
    }

    /// Enqueues a message at round `round` with its causal provenance —
    /// the observability layer's push. Pads the `causes` lane with
    /// [`CauseTag::ROOT`] first, so tags enqueued after a stretch of
    /// untagged pushes still line up with their messages.
    pub fn push_caused(&mut self, msg: Message, round: u64, tag: CauseTag) {
        self.causes.resize(self.msgs.len(), CauseTag::ROOT);
        self.msgs.push(msg);
        self.enqueued.push(round);
        self.causes.push(tag);
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Iterates over the queued messages (for snapshots).
    pub fn messages(&self) -> impl Iterator<Item = &Message> {
        self.msgs.iter()
    }

    /// The queued messages as a contiguous slice, in enqueue order. This
    /// is what [`NetView`](swn_core::views::NetView) borrows.
    pub fn as_slice(&self) -> &[Message] {
        &self.msgs
    }

    /// Empties the channel but keeps its allocation, so churn can recycle
    /// a departed node's channel storage for the slot's next occupant.
    pub fn clear(&mut self) {
        self.msgs.clear();
        self.enqueued.clear();
        self.causes.clear();
    }

    /// Takes the messages to deliver in round `now` under `policy`,
    /// shuffled (channels are unordered). Only messages enqueued *before*
    /// `now` are eligible, so a message is never received in the same
    /// round it was sent — receipt strictly follows transmission.
    pub fn take_deliverable<R: Rng + ?Sized>(
        &mut self,
        now: u64,
        policy: DeliveryPolicy,
        rng: &mut R,
    ) -> Vec<Message> {
        let mut out = Vec::new();
        self.take_deliverable_into(now, policy, rng, &mut out);
        out
    }

    /// Allocation-free spelling of [`Channel::take_deliverable`]: clears
    /// `out` and fills it with the deliverable messages, compacting the
    /// channel in place. Identical element order and RNG consumption to
    /// the owning variant, so traces are bit-for-bit unchanged.
    pub fn take_deliverable_into<R: Rng + ?Sized>(
        &mut self,
        now: u64,
        policy: DeliveryPolicy,
        rng: &mut R,
        out: &mut Vec<Message>,
    ) {
        out.clear();
        // A non-causal take invalidates any provenance tags (messages
        // move without their lane); kept messages become implicit
        // roots. Free when no observer ever tagged: clearing an empty
        // vec is a single length store.
        self.causes.clear();
        // Fast path for the hot case: `Immediate` policy with every
        // queued message eligible (nobody sent to this node yet in the
        // current round). The whole storage is handed to `out` by
        // pointer swap instead of a message-by-message compaction copy.
        // Element order (enqueue order, like the general path's push
        // order) and RNG consumption (one shuffle of the same length)
        // are identical, so traces are bit-for-bit unchanged. The
        // eligibility scan must check *every* element: `preload` and
        // same-round sends make `enqueued` non-monotone.
        if matches!(policy, DeliveryPolicy::Immediate) && self.enqueued.iter().all(|&e| e < now) {
            std::mem::swap(&mut self.msgs, out);
            self.enqueued.clear();
            out.shuffle(rng);
            return;
        }
        let mut kept = 0;
        for i in 0..self.msgs.len() {
            let enqueued_at = self.enqueued[i];
            let deliver = enqueued_at < now
                && match policy {
                    DeliveryPolicy::Immediate => true,
                    DeliveryPolicy::RandomDelay {
                        p_deliver,
                        max_delay,
                    } => now - enqueued_at >= max_delay || rng.random_bool(p_deliver),
                };
            if deliver {
                out.push(self.msgs[i]);
            } else {
                self.msgs[kept] = self.msgs[i];
                self.enqueued[kept] = enqueued_at;
                kept += 1;
            }
        }
        self.msgs.truncate(kept);
        self.enqueued.truncate(kept);
        out.shuffle(rng);
    }

    /// [`Channel::take_deliverable_into`] with each message tagged by its
    /// enqueue round — the observability layer's variant, feeding the
    /// enqueue→deliver latency histogram.
    ///
    /// **RNG-stream equality.** Both paths make exactly the RNG calls of
    /// the untagged variant in the same order: the per-element
    /// `random_bool` draws depend only on `enqueued`/`now`/`policy`, and
    /// `shuffle` on a slice consumes draws as a function of length alone,
    /// not element type. So delivery order and every downstream draw are
    /// bit-for-bit identical to an untagged run — pinned by the
    /// `tagged_take_matches_untagged_order` test below and the golden
    /// event-stream fingerprint.
    pub fn take_deliverable_tagged<R: Rng + ?Sized>(
        &mut self,
        now: u64,
        policy: DeliveryPolicy,
        rng: &mut R,
        out: &mut Vec<(Message, u64)>,
    ) {
        out.clear();
        // Tags are not handed out by this take: invalidate them.
        self.causes.clear();
        // Mirror of the untagged fast path: every queued message is
        // eligible under Immediate, so hand everything over in enqueue
        // order, then one shuffle.
        if matches!(policy, DeliveryPolicy::Immediate) && self.enqueued.iter().all(|&e| e < now) {
            out.extend(self.msgs.drain(..).zip(self.enqueued.drain(..)));
            out.shuffle(rng);
            return;
        }
        let mut kept = 0;
        for i in 0..self.msgs.len() {
            let enqueued_at = self.enqueued[i];
            let deliver = enqueued_at < now
                && match policy {
                    DeliveryPolicy::Immediate => true,
                    DeliveryPolicy::RandomDelay {
                        p_deliver,
                        max_delay,
                    } => now - enqueued_at >= max_delay || rng.random_bool(p_deliver),
                };
            if deliver {
                out.push((self.msgs[i], enqueued_at));
            } else {
                self.msgs[kept] = self.msgs[i];
                self.enqueued[kept] = enqueued_at;
                kept += 1;
            }
        }
        self.msgs.truncate(kept);
        self.enqueued.truncate(kept);
        out.shuffle(rng);
    }

    /// [`Channel::take_deliverable_tagged`] with each message's causal
    /// provenance attached — the `OBS = true` round loop's take. The
    /// `causes` lane is padded to length with [`CauseTag::ROOT`] first
    /// (untagged pushes are implicit roots), then mirrors the tagged
    /// take element for element.
    ///
    /// **RNG-stream equality** holds by the same argument as the tagged
    /// variant: per-element `random_bool` draws depend only on
    /// `enqueued`/`now`/`policy`, and `shuffle` consumes draws as a
    /// function of slice *length* alone — tag payloads ride along for
    /// free. Pinned by `causal_take_matches_tagged_order` below and the
    /// golden event-stream fingerprint.
    pub fn take_deliverable_causal<R: Rng + ?Sized>(
        &mut self,
        now: u64,
        policy: DeliveryPolicy,
        rng: &mut R,
        out: &mut Vec<(Message, u64, CauseTag)>,
    ) {
        out.clear();
        self.causes.resize(self.msgs.len(), CauseTag::ROOT);
        if matches!(policy, DeliveryPolicy::Immediate) && self.enqueued.iter().all(|&e| e < now) {
            out.extend(
                self.msgs
                    .drain(..)
                    .zip(self.enqueued.drain(..))
                    .zip(self.causes.drain(..))
                    .map(|((m, e), c)| (m, e, c)),
            );
            out.shuffle(rng);
            return;
        }
        let mut kept = 0;
        for i in 0..self.msgs.len() {
            let enqueued_at = self.enqueued[i];
            let deliver = enqueued_at < now
                && match policy {
                    DeliveryPolicy::Immediate => true,
                    DeliveryPolicy::RandomDelay {
                        p_deliver,
                        max_delay,
                    } => now - enqueued_at >= max_delay || rng.random_bool(p_deliver),
                };
            if deliver {
                out.push((self.msgs[i], enqueued_at, self.causes[i]));
            } else {
                self.msgs[kept] = self.msgs[i];
                self.enqueued[kept] = enqueued_at;
                self.causes[kept] = self.causes[i];
                kept += 1;
            }
        }
        self.msgs.truncate(kept);
        self.enqueued.truncate(kept);
        self.causes.truncate(kept);
        out.shuffle(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use swn_core::id::NodeId;

    fn lin(f: f64) -> Message {
        Message::Lin(NodeId::from_fraction(f))
    }

    #[test]
    fn immediate_policy_delivers_everything_older_than_now() {
        let mut ch = Channel::new();
        ch.push(lin(0.1), 0);
        ch.push(lin(0.2), 0);
        ch.push(lin(0.3), 1); // sent in the current round: not yet eligible
        let mut rng = StdRng::seed_from_u64(1);
        let got = ch.take_deliverable(1, DeliveryPolicy::Immediate, &mut rng);
        assert_eq!(got.len(), 2);
        assert_eq!(ch.len(), 1);
    }

    #[test]
    fn same_round_send_not_delivered() {
        let mut ch = Channel::new();
        ch.push(lin(0.1), 5);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(ch
            .take_deliverable(5, DeliveryPolicy::Immediate, &mut rng)
            .is_empty());
        assert_eq!(
            ch.take_deliverable(6, DeliveryPolicy::Immediate, &mut rng)
                .len(),
            1
        );
    }

    #[test]
    fn random_delay_respects_fairness_bound() {
        let policy = DeliveryPolicy::RandomDelay {
            p_deliver: 0.0001, // essentially never deliver voluntarily
            max_delay: 3,
        };
        let mut ch = Channel::new();
        ch.push(lin(0.1), 0);
        let mut rng = StdRng::seed_from_u64(99);
        let mut delivered_at = None;
        for now in 1..=10 {
            if !ch.take_deliverable(now, policy, &mut rng).is_empty() {
                delivered_at = Some(now);
                break;
            }
        }
        // "Delayed at most `max_delay` rounds": enqueued at round 0 means
        // forced delivery no later than round 3 (now − 0 ≥ 3).
        assert_eq!(delivered_at, Some(3));
    }

    #[test]
    fn take_deliverable_into_reuses_buffer_and_matches_owning_variant() {
        let policy = DeliveryPolicy::RandomDelay {
            p_deliver: 0.5,
            max_delay: 10,
        };
        let mut a = Channel::new();
        let mut b = Channel::new();
        for i in 1..=30 {
            a.push(lin(i as f64 / 100.0), i % 4);
            b.push(lin(i as f64 / 100.0), i % 4);
        }
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let mut buf = vec![lin(0.99)]; // stale content must be cleared
        a.take_deliverable_into(5, policy, &mut rng_a, &mut buf);
        let owned = b.take_deliverable(5, policy, &mut rng_b);
        assert_eq!(buf, owned);
        assert_eq!(a.as_slice(), b.as_slice(), "identical compaction");
    }

    #[test]
    fn immediate_fast_path_matches_general_compaction_path() {
        // Same eligible set, same seed: the swap fast path (all messages
        // eligible) and the general compaction path (one ineligible
        // straggler forces it) must produce the same delivery order.
        let mut fast = Channel::new();
        let mut slow = Channel::new();
        for i in 1..=12 {
            fast.push(lin(i as f64 / 100.0), 0);
            slow.push(lin(i as f64 / 100.0), 0);
        }
        slow.push(lin(0.99), 5); // enqueued "now": ineligible, general path
        let mut rng_f = StdRng::seed_from_u64(3);
        let mut rng_s = StdRng::seed_from_u64(3);
        let mut out_f = vec![lin(0.5)]; // stale content must be cleared
        let mut out_s = Vec::new();
        fast.take_deliverable_into(5, DeliveryPolicy::Immediate, &mut rng_f, &mut out_f);
        slow.take_deliverable_into(5, DeliveryPolicy::Immediate, &mut rng_s, &mut out_s);
        assert_eq!(out_f, out_s);
        assert!(fast.is_empty());
        assert_eq!(slow.len(), 1, "the straggler stays queued");
    }

    #[test]
    fn tagged_take_matches_untagged_order() {
        // Same seed, same channel content: the tagged variant must
        // deliver the same messages in the same order and consume the
        // same RNG stream (checked via a post-take draw) as the untagged
        // one — on the Immediate fast path, the Immediate general path
        // (straggler) and under RandomDelay.
        use rand::RngExt as _;
        let scenarios: [(DeliveryPolicy, Option<u64>); 3] = [
            (DeliveryPolicy::Immediate, None),
            (DeliveryPolicy::Immediate, Some(5)), // straggler: general path
            (
                DeliveryPolicy::RandomDelay {
                    p_deliver: 0.5,
                    max_delay: 10,
                },
                None,
            ),
        ];
        for (policy, straggler) in scenarios {
            let mut plain = Channel::new();
            let mut tagged = Channel::new();
            for i in 1..=25 {
                plain.push(lin(i as f64 / 100.0), i % 4);
                tagged.push(lin(i as f64 / 100.0), i % 4);
            }
            if let Some(r) = straggler {
                plain.push(lin(0.99), r);
                tagged.push(lin(0.99), r);
            }
            let mut rng_p = StdRng::seed_from_u64(7);
            let mut rng_t = StdRng::seed_from_u64(7);
            let mut out_p = Vec::new();
            let mut out_t = vec![(lin(0.5), 9)]; // stale content must clear
            plain.take_deliverable_into(5, policy, &mut rng_p, &mut out_p);
            tagged.take_deliverable_tagged(5, policy, &mut rng_t, &mut out_t);
            let untag: Vec<Message> = out_t.iter().map(|&(m, _)| m).collect();
            assert_eq!(untag, out_p, "{policy:?} delivery order diverged");
            assert!(
                out_t.iter().all(|&(_, e)| e < 5),
                "only eligible messages delivered"
            );
            assert_eq!(plain.as_slice(), tagged.as_slice(), "same compaction");
            assert_eq!(
                rng_p.random_range(0u64..1_000_000),
                rng_t.random_range(0u64..1_000_000),
                "{policy:?} RNG streams diverged after take"
            );
        }
    }

    #[test]
    fn causal_take_matches_tagged_order() {
        // Same seed, same content: the causal take must deliver the same
        // (message, enqueue-round) stream and consume the same RNG as
        // the tagged take, with tags riding along — across the Immediate
        // fast path, the general path, and RandomDelay.
        use crate::obs::causal::{CauseId, CauseTag};
        let scenarios: [(DeliveryPolicy, Option<u64>); 3] = [
            (DeliveryPolicy::Immediate, None),
            (DeliveryPolicy::Immediate, Some(5)), // straggler: general path
            (
                DeliveryPolicy::RandomDelay {
                    p_deliver: 0.5,
                    max_delay: 10,
                },
                None,
            ),
        ];
        for (policy, straggler) in scenarios {
            let mut tagged = Channel::new();
            let mut causal = Channel::new();
            for i in 1..=25u64 {
                tagged.push(lin(i as f64 / 100.0), i % 4);
                // Mixed provenance: odd pushes tagged, even untagged
                // (implicitly ROOT after padding).
                if i % 2 == 1 {
                    let tag = CauseTag {
                        parent: CauseId {
                            round: i % 4,
                            slot: 0,
                            seq: i,
                        },
                        depth: 1,
                    };
                    causal.push_caused(lin(i as f64 / 100.0), i % 4, tag);
                } else {
                    causal.push(lin(i as f64 / 100.0), i % 4);
                }
            }
            if let Some(r) = straggler {
                tagged.push(lin(0.99), r);
                causal.push(lin(0.99), r);
            }
            let mut rng_t = StdRng::seed_from_u64(7);
            let mut rng_c = StdRng::seed_from_u64(7);
            let mut out_t = Vec::new();
            let mut out_c = vec![(lin(0.5), 9, CauseTag::ROOT)]; // stale
            tagged.take_deliverable_tagged(5, policy, &mut rng_t, &mut out_t);
            causal.take_deliverable_causal(5, policy, &mut rng_c, &mut out_c);
            let untag: Vec<(Message, u64)> = out_c.iter().map(|&(m, e, _)| (m, e)).collect();
            assert_eq!(untag, out_t, "{policy:?} delivery stream diverged");
            assert_eq!(tagged.as_slice(), causal.as_slice(), "same compaction");
            // Tags followed their messages through the shuffle: the
            // i-th push was tagged with parent seq = i iff i is odd.
            for i in 1..=25u64 {
                let Some(&(_, _, tag)) =
                    out_c.iter().find(|&&(m, _, _)| m == lin(i as f64 / 100.0))
                else {
                    continue; // not delivered in this scenario
                };
                if i % 2 == 1 {
                    assert_eq!(tag.parent.seq, i, "tag stuck to its message");
                } else {
                    assert!(tag.is_root(), "untagged push is an implicit root");
                }
            }
            assert_eq!(
                rng_t.random_range(0u64..1_000_000),
                rng_c.random_range(0u64..1_000_000),
                "{policy:?} RNG streams diverged after take"
            );
        }
    }

    #[test]
    fn nontagged_take_invalidates_stale_causes() {
        use crate::obs::causal::{CauseId, CauseTag};
        let tag = CauseTag {
            parent: CauseId {
                round: 0,
                slot: 3,
                seq: 9,
            },
            depth: 2,
        };
        let mut ch = Channel::new();
        ch.push_caused(lin(0.1), 0, tag);
        ch.push(lin(0.2), 5); // straggler keeps the channel non-empty
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = Vec::new();
        ch.take_deliverable_into(5, DeliveryPolicy::Immediate, &mut rng, &mut out);
        assert_eq!(out.len(), 1);
        // The straggler's tag lane was invalidated: a later causal take
        // sees it as a root, not as the departed message's tag.
        let mut causal_out = Vec::new();
        ch.take_deliverable_causal(6, DeliveryPolicy::Immediate, &mut rng, &mut causal_out);
        assert_eq!(causal_out.len(), 1);
        assert!(causal_out[0].2.is_root());
    }

    #[test]
    fn clear_empties_but_keeps_capacity() {
        let mut ch = Channel::new();
        for i in 1..=8 {
            ch.push(lin(i as f64 / 100.0), 0);
        }
        ch.clear();
        assert!(ch.is_empty());
        ch.push(lin(0.42), 3);
        assert_eq!(ch.as_slice(), &[lin(0.42)]);
    }

    #[test]
    fn random_delay_delivers_probabilistically() {
        let policy = DeliveryPolicy::RandomDelay {
            p_deliver: 0.5,
            max_delay: 100,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let mut delivered_round_1 = 0;
        const TRIALS: usize = 2000;
        for _ in 0..TRIALS {
            let mut ch = Channel::new();
            ch.push(lin(0.1), 0);
            if !ch.take_deliverable(1, policy, &mut rng).is_empty() {
                delivered_round_1 += 1;
            }
        }
        let frac = delivered_round_1 as f64 / TRIALS as f64;
        assert!((0.45..0.55).contains(&frac), "p=0.5 delivery frac {frac}");
    }

    #[test]
    fn shuffle_changes_order_but_not_content() {
        let mut ch = Channel::new();
        for i in 1..=20 {
            ch.push(lin(i as f64 / 100.0), 0);
        }
        let mut rng = StdRng::seed_from_u64(2);
        let got = ch.take_deliverable(1, DeliveryPolicy::Immediate, &mut rng);
        assert_eq!(got.len(), 20);
        let sorted_in: Vec<_> = (1..=20).map(|i| lin(i as f64 / 100.0)).collect();
        assert_ne!(got, sorted_in, "delivery order should be shuffled");
        let mut got_sorted = got.clone();
        got_sorted.sort_by_key(|m| match m {
            Message::Lin(id) => id.bits(),
            _ => 0,
        });
        assert_eq!(got_sorted, sorted_in);
    }

    #[test]
    fn policy_validation() {
        assert!(DeliveryPolicy::Immediate.validate().is_ok());
        assert!(DeliveryPolicy::RandomDelay {
            p_deliver: 0.5,
            max_delay: 10
        }
        .validate()
        .is_ok());
        assert!(DeliveryPolicy::RandomDelay {
            p_deliver: 0.0,
            max_delay: 10
        }
        .validate()
        .is_err());
        assert!(DeliveryPolicy::RandomDelay {
            p_deliver: 1.5,
            max_delay: 10
        }
        .validate()
        .is_err());
    }
}
