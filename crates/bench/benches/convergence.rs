//! Bench for experiment E1: convergence to the sorted ring from each
//! adversarial initial-state family (one benchmark per family, n = 64).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use swn_core::config::ProtocolConfig;
use swn_core::id::evenly_spaced_ids;
use swn_sim::convergence::run_to_ring;
use swn_sim::init::{generate, InitialTopology};

fn bench_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_convergence");
    group.sample_size(10);
    let n = 64;
    let ids = evenly_spaced_ids(n);
    for family in [
        InitialTopology::RandomSparse { extra: 3 },
        InitialTopology::Star,
        InitialTopology::Clique,
        InitialTopology::RandomChain,
        InitialTopology::TwoBlobs,
        InitialTopology::CorruptedRing { corruptions: 8 },
    ] {
        group.bench_with_input(
            BenchmarkId::new("to_sorted_ring", family.label()),
            &family,
            |b, &family| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut net =
                        generate(family, &ids, ProtocolConfig::default(), seed).into_network(seed);
                    let rep = run_to_ring(&mut net, 200_000);
                    assert!(rep.stabilized());
                    black_box(rep.rounds_to_ring)
                });
            },
        );
    }
    group.finish();
}

fn bench_round_cost(c: &mut Criterion) {
    // The simulator's per-round cost on a stable network (E9's census
    // inner loop).
    let mut group = c.benchmark_group("e9_round_cost");
    group.sample_size(20);
    for n in [256usize, 1024] {
        group.bench_with_input(BenchmarkId::new("stable_round", n), &n, |b, &n| {
            let ids = evenly_spaced_ids(n);
            let mut net = swn_sim::Network::new(
                swn_core::invariants::make_sorted_ring(&ids, ProtocolConfig::default()),
                7,
            );
            net.run(50);
            b.iter(|| black_box(net.step().total_sent()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_convergence, bench_round_cost);
criterion_main!(benches);
