//! **E4 — Probing reaches its destination in O(ln^(2+ε) d) hops and never
//! creates edges in the stable state** (Theorem 4.3, Lemma 4.23).
//!
//! Lemma 4.23 is a statement about the *stable state* (stationary
//! harmonic links), so the fixture is the harmonic-seeded network of
//! [`crate::testbed::harmonic_network`], kept running so tokens continue
//! to walk between sampling epochs. Probe paths are replayed
//! deterministically on snapshots (see [`crate::probe_walk`]), bucketed
//! by the distance d between the prober and its long-range endpoint.
//!
//! Distance is measured along the **id line**, not the ring: probes walk
//! monotonically by identifier (Algorithms 5/6 never cross the seam), so
//! a long-range link that wrapped around the seam during its random walk
//! is a genuinely long probe on the line even if the ring distance is
//! short. Shape to verify: mean hops per bucket grows like ln^(2+ε) d,
//! not like d; zero repairs.

use crate::probe_walk::{replay_lrl_probe, ProbeOutcome};
use crate::table::{f2, mean, Table};
use crate::testbed::harmonic_network;
use swn_core::config::ProtocolConfig;
use swn_sim::parallel::run_trials;

/// Parameters for E4.
#[derive(Clone, Debug)]
pub struct Params {
    /// Network size.
    pub n: usize,
    /// Shakedown rounds before sampling (the fixture is harmonic-seeded,
    /// so this only lets reslrl traffic settle — it is not a mixing
    /// warmup).
    pub warmup: u64,
    /// Snapshots sampled (probe populations accumulate across them).
    pub epochs: usize,
    /// Rounds between snapshots.
    pub epoch_gap: u64,
    /// Protocol ε.
    pub epsilon: f64,
}

impl Params {
    /// Full-scale run.
    pub fn full() -> Self {
        Params {
            n: 2048,
            warmup: 200,
            epochs: 120,
            epoch_gap: 25,
            epsilon: 0.1,
        }
    }

    /// Reduced scale.
    pub fn quick() -> Self {
        Params {
            n: 256,
            warmup: 100,
            epochs: 40,
            epoch_gap: 15,
            epsilon: 0.1,
        }
    }
}

/// Raw measurement: per-bucket (lo, hi, mean hops, samples) plus the
/// repair/divergence counters.
#[derive(Clone, Debug, Default)]
pub struct ProbeMeasurement {
    /// (bucket_lo, bucket_hi_exclusive, mean_hops, samples).
    pub buckets: Vec<(usize, usize, f64, usize)>,
    /// Probes that would have created an edge (must be 0 when stable).
    pub repairs: u64,
    /// Probes that walked into a cycle (must be 0).
    pub diverged: u64,
}

/// Runs the probe replay sweep.
pub fn measure(p: &Params, seed: u64) -> ProbeMeasurement {
    let cfg = ProtocolConfig::with_epsilon(p.epsilon);
    let mut net = harmonic_network(p.n, cfg, seed);
    net.run(p.warmup); // links are pre-seeded, so this is a shakedown only
                       // hops-by-distance samples.
    let mut samples: Vec<(usize, u32)> = Vec::new();
    let mut m = ProbeMeasurement::default();
    for _ in 0..p.epochs {
        net.run(p.epoch_gap);
        let s = net.snapshot();
        let order = s.sorted_indices();
        let mut rank_of = vec![0usize; s.len()];
        for (rank, &idx) in order.iter().enumerate() {
            rank_of[idx] = rank;
        }
        // Probe replays are independent deterministic walks on the
        // frozen snapshot, so fan them out and fold in index order —
        // results do not depend on the worker count.
        let outcomes = run_trials(s.len(), |idx| replay_lrl_probe(&s, idx));
        for (idx, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Some(ProbeOutcome::Arrived { hops }) => {
                    let node = &s.nodes()[idx];
                    let tidx = s.index_of(node.lrl()).expect("arrived ⇒ target exists");
                    // Line (rank) distance: the metric the probe walks.
                    let d = rank_of[idx].abs_diff(rank_of[tidx]);
                    if d > 0 {
                        samples.push((d, hops));
                    }
                }
                Some(ProbeOutcome::Repaired { .. }) => m.repairs += 1,
                Some(ProbeOutcome::Diverged) => m.diverged += 1,
                None => {}
            }
        }
    }
    // Logarithmic distance buckets: [1,2), [2,4), ... up to the line span.
    let mut lo = 1usize;
    while lo < p.n {
        let hi = (lo * 2).min(p.n);
        let hops: Vec<f64> = samples
            .iter()
            .filter(|(d, _)| *d >= lo && *d < hi)
            .map(|(_, h)| *h as f64)
            .collect();
        if !hops.is_empty() {
            m.buckets.push((lo, hi, mean(&hops), hops.len()));
        }
        lo *= 2;
    }
    m
}

/// Runs E4 and renders the table.
pub fn run(p: &Params) -> Table {
    let m = measure(p, 4242);
    let mut t = Table::new(
        format!("E4  Probing hops vs distance (n = {})", p.n),
        "stable-state probes arrive in O(ln^(2+eps) d) hops and never add edges (Thm 4.3 / Lemma 4.23)",
        &["d in", "mean hops", "samples", "ln^2.1 d", "d (linear ref)"],
    );
    for &(lo, hi, hops, count) in &m.buckets {
        let mid = ((lo * (hi - 1)) as f64).sqrt().max(1.0);
        t.push_row(vec![
            format!("[{lo},{hi})"),
            f2(hops),
            count.to_string(),
            f2(mid.ln().max(0.0).powf(2.1).max(1.0)),
            f2(mid),
        ]);
    }
    t.push_row(vec![
        "repairs".to_string(),
        m.repairs.to_string(),
        "-".to_string(),
        "-".to_string(),
        "must be 0".to_string(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_probes_never_repair_and_grow_sublinearly() {
        let p = Params::quick();
        let m = measure(&p, 7);
        assert_eq!(m.repairs, 0, "stable state must not repair");
        assert_eq!(m.diverged, 0);
        assert!(m.buckets.len() >= 4, "need several distance buckets");
        // Sublinearity: hops must be clearly below the bucket's distance
        // midpoint (a pure ring walk would need exactly mid hops;
        // shortcuts must cut that down). The check targets the largest
        // bucket of *non-wrapped* probes — wrapped links (line distance
        // > n/2) traverse regions where few same-direction shortcuts
        // exist, so they only get the plain "less than a ring walk" bound.
        let &(lo, hi, hops, _) = m
            .buckets
            .iter()
            .rfind(|&&(_, hi, _, _)| hi <= p.n / 2 + 1)
            .expect("non-wrap buckets exist");
        let mid = ((lo * (hi - 1)) as f64).sqrt();
        assert!(
            hops < mid * 0.72,
            "largest non-wrap bucket [{lo},{hi}): {hops} hops not sublinear vs {mid}"
        );
        for &(lo, hi, hops, _) in &m.buckets {
            let mid = ((lo * (hi - 1)) as f64).sqrt();
            assert!(
                hops <= mid.max(1.0) * 1.05,
                "bucket [{lo},{hi}): {hops} hops exceeds a ring walk ({mid})"
            );
        }
        // Short distances take few hops.
        let &(_, _, h0, _) = m.buckets.first().expect("non-empty");
        assert!(h0 <= 2.0, "distance-1/2 probes should be ~1 hop, got {h0}");
    }

    #[test]
    fn hop_growth_is_mild_across_buckets() {
        let p = Params::quick();
        let m = measure(&p, 11);
        // Doubling the distance should add a roughly constant number of
        // hops (polylog), not double them once shortcuts exist. Compare
        // last bucket vs the 8x-smaller one.
        if m.buckets.len() >= 4 {
            let last = m.buckets[m.buckets.len() - 1];
            let earlier = m.buckets[m.buckets.len() - 4];
            let dist_ratio = (last.0 as f64) / (earlier.0 as f64);
            let hop_ratio = last.2 / earlier.2.max(1.0);
            assert!(
                hop_ratio < dist_ratio,
                "hops grew as fast as distance: {hop_ratio} vs {dist_ratio}"
            );
        }
    }

    #[test]
    fn table_includes_repair_row() {
        let mut p = Params::quick();
        p.n = 64;
        p.warmup = 500;
        p.epochs = 10;
        let t = run(&p);
        assert!(t.render().contains("repairs"));
    }
}
