//! The Watts–Strogatz rewiring model (Nature 1998).
//!
//! Start from a ring lattice with `k` neighbours per node; visit each
//! node's `k/2` rightward lattice edges and, with probability `p`, rewire
//! the far endpoint to a uniformly random node (avoiding self-loops and
//! duplicates). `p = 0` is the regular lattice, `p = 1` essentially a
//! random graph; the small-world regime — high clustering *and* short
//! paths — appears for small positive `p`. Experiment E8 reproduces the
//! famous C(p)/L(p) figure.

use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use swn_topology::Graph;

/// Generates WS(n, k, p). Edges are undirected (stored both ways).
///
/// # Panics
/// Panics unless `k` is even, `2 ≤ k < n`, and `p ∈ [0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, p: f64, seed: u64) -> Graph {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "k must be even and ≥ 2, got {k}"
    );
    assert!(k < n, "k = {k} must be smaller than n = {n}");
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    let mut rng = StdRng::seed_from_u64(seed);

    // Adjacency as sets for O(1)-ish dup checks during rewiring.
    let mut adj: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); n];
    let connect = |adj: &mut Vec<std::collections::BTreeSet<usize>>, u: usize, v: usize| {
        adj[u].insert(v);
        adj[v].insert(u);
    };
    for i in 0..n {
        for j in 1..=(k / 2) {
            connect(&mut adj, i, (i + j) % n);
        }
    }
    // Rewire pass, in the original's lattice-edge order.
    for j in 1..=(k / 2) {
        for i in 0..n {
            let old = (i + j) % n;
            if !adj[i].contains(&old) {
                continue; // already rewired away by an earlier step
            }
            if rng.random_bool(p) {
                // Draw a fresh endpoint; skip if the node is saturated.
                if adj[i].len() >= n - 1 {
                    continue;
                }
                let mut t = rng.random_range(0..n);
                while t == i || adj[i].contains(&t) {
                    t = rng.random_range(0..n);
                }
                adj[i].remove(&old);
                adj[old].remove(&i);
                connect(&mut adj, i, t);
            }
        }
    }

    let mut g = Graph::new(n);
    for (u, vs) in adj.iter().enumerate() {
        for &v in vs {
            g.add_edge(u, v);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use swn_topology::clustering::average_clustering;
    use swn_topology::connectivity::is_weakly_connected;
    use swn_topology::paths::path_stats_sampled;

    #[test]
    fn p_zero_is_the_lattice() {
        let ws = watts_strogatz(30, 4, 0.0, 1);
        let lat = crate::ring_lattice::ring_lattice(30, 4);
        // Same edge sets (both stored bidirectionally).
        let mut a: Vec<_> = ws.edges().collect();
        let mut b: Vec<_> = lat.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn edge_count_preserved_by_rewiring() {
        for p in [0.0, 0.1, 0.5, 1.0] {
            let g = watts_strogatz(100, 6, p, 42);
            assert_eq!(g.m(), 100 * 6, "p={p}: rewiring must conserve edges");
        }
    }

    #[test]
    fn small_world_regime_high_c_low_l() {
        let n = 400;
        let k = 10;
        let lattice = watts_strogatz(n, k, 0.0, 7);
        let sw = watts_strogatz(n, k, 0.05, 7);
        let c0 = average_clustering(&lattice);
        let l0 = path_stats_sampled(&lattice, 60, 1).avg;
        let c = average_clustering(&sw);
        let l = path_stats_sampled(&sw, 60, 1).avg;
        assert!(c / c0 > 0.6, "clustering should stay high: {}", c / c0);
        assert!(l / l0 < 0.55, "path length should collapse: {}", l / l0);
    }

    #[test]
    fn full_rewiring_destroys_clustering() {
        let n = 400;
        let k = 10;
        let c0 = average_clustering(&watts_strogatz(n, k, 0.0, 3));
        let c1 = average_clustering(&watts_strogatz(n, k, 1.0, 3));
        assert!(c1 < 0.2 * c0, "C(1) = {c1} should be ≪ C(0) = {c0}");
    }

    #[test]
    fn usually_connected_at_moderate_p() {
        // WS is not connected with certainty, but at k=10 disconnection is
        // vanishingly rare.
        for seed in 0..5 {
            assert!(is_weakly_connected(&watts_strogatz(200, 10, 0.3, seed)));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(watts_strogatz(64, 4, 0.2, 5), watts_strogatz(64, 4, 0.2, 5));
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn invalid_p_rejected() {
        let _ = watts_strogatz(20, 4, 1.5, 1);
    }
}
