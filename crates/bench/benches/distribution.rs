//! Benches for experiments E2 (move-and-forget / harmonic fit) and E8
//! (Watts–Strogatz generation and metrics).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use swn_baselines::chaintreau::MoveForgetRing;
use swn_baselines::watts_strogatz::watts_strogatz;
use swn_topology::clustering::average_clustering;
use swn_topology::distribution::{harmonic_cdf, ks_to_harmonic, sample_harmonic};
use swn_topology::paths::path_stats_sampled;

fn bench_move_forget(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_distribution");
    for n in [512usize, 4096] {
        group.bench_with_input(
            BenchmarkId::new("move_forget_100_rounds", n),
            &n,
            |b, &n| {
                let mut mf = MoveForgetRing::new(n, 0.1, 9);
                b.iter(|| {
                    mf.run(100);
                    black_box(mf.forgets())
                });
            },
        );
    }
    group.bench_function("ks_to_harmonic_50k_samples", |b| {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        let lengths: Vec<usize> = (0..50_000)
            .map(|_| sample_harmonic(2048, &mut rng))
            .collect();
        b.iter(|| black_box(ks_to_harmonic(&lengths, 2048)));
    });
    group.bench_function("harmonic_cdf_8192", |b| {
        b.iter(|| black_box(harmonic_cdf(8192)));
    });
    group.finish();
}

fn bench_watts_strogatz(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_watts_strogatz");
    group.sample_size(20);
    group.bench_function("generate_n1000_k10", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(watts_strogatz(1000, 10, 0.1, seed))
        });
    });
    let g = watts_strogatz(1000, 10, 0.1, 5);
    group.bench_function("clustering_n1000", |b| {
        b.iter(|| black_box(average_clustering(&g)));
    });
    group.bench_function("path_length_sampled_n1000", |b| {
        b.iter(|| black_box(path_stats_sampled(&g, 40, 1).avg));
    });
    group.finish();
}

criterion_group!(benches, bench_move_forget, bench_watts_strogatz);
criterion_main!(benches);
