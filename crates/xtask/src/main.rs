//! `cargo xtask <command>` — repo automation.
//!
//! ```text
//! cargo xtask lint [path ...]
//! ```
//!
//! `lint` runs the protocol-conformance rules of [`xtask::lint_source`]
//! over the workspace (default) or over explicit files/directories
//! (e.g. `cargo xtask lint crates/xtask/fixtures` to watch it fail).
//! Exits 1 when any rule fires.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use xtask::{lint_repo, lint_source, Violation};

fn usage() -> ! {
    eprintln!("usage: cargo xtask lint [path ...]");
    std::process::exit(2);
}

/// Workspace root: `cargo xtask` runs with the workspace as cwd (the
/// alias lives in `.cargo/config.toml` there), so prefer cwd when it
/// holds a workspace manifest, falling back to two levels above this
/// crate for direct `cargo run -p xtask` invocations from elsewhere.
fn workspace_root() -> PathBuf {
    if let Ok(cwd) = std::env::current_dir() {
        if cwd.join("Cargo.toml").is_file() && cwd.join("crates").is_dir() {
            return cwd;
        }
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels under the workspace root")
        .to_path_buf()
}

fn lint_explicit(paths: &[String]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut stack: Vec<PathBuf> = paths.iter().map(PathBuf::from).collect();
    while let Some(p) = stack.pop() {
        if p.is_dir() {
            if let Ok(entries) = std::fs::read_dir(&p) {
                stack.extend(entries.flatten().map(|e| e.path()));
            }
        } else if p.extension().is_some_and(|e| e == "rs") {
            match std::fs::read_to_string(&p) {
                Ok(src) => out.extend(lint_source(&p.to_string_lossy(), &src)),
                Err(e) => {
                    eprintln!("error: cannot read {}: {e}", p.display());
                    std::process::exit(2);
                }
            }
        } else {
            eprintln!("error: {} is not a .rs file or directory", p.display());
            std::process::exit(2);
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let violations = if args.len() > 1 {
                lint_explicit(&args[1..])
            } else {
                lint_repo(&workspace_root())
            };
            if violations.is_empty() {
                println!("xtask lint: clean");
                return;
            }
            for v in &violations {
                println!("{v}");
            }
            eprintln!("xtask lint: {} violation(s)", violations.len());
            std::process::exit(1);
        }
        _ => usage(),
    }
}
