//! The flight recorder: a bounded ring of recent observation records
//! that survives long soaks and dumps itself on anomalies.
//!
//! Long fault soaks cannot afford an unbounded in-memory trace (the
//! pre-PR-9 `MemorySink` grew without limit) and rarely need one: when
//! something goes wrong, the *recent* history is what explains it. A
//! [`FlightBuffer`] keeps the last `capacity` records and counts what
//! it evicted; a [`FlightRecorder`] sink feeds one and — when the
//! watchdog's verdict is `disconnected` or `budget_exhausted`, or when
//! [`FlightRecorder::dump_now`] is called from a tripped debug
//! invariant — writes the buffered records out as JSONL for a
//! post-mortem (`experiments report <dump>` renders it).

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use super::{Event, Record, Sink};

/// A fixed-capacity ring buffer of [`Record`]s: pushing beyond capacity
/// evicts the oldest record and bumps `dropped_records`.
#[derive(Debug)]
pub struct FlightBuffer {
    buf: VecDeque<Record>,
    capacity: usize,
    dropped: u64,
}

impl FlightBuffer {
    /// An empty buffer holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        FlightBuffer {
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&mut self, rec: Record) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(rec);
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many records the ring has evicted so far.
    pub fn dropped_records(&self) -> u64 {
        self.dropped
    }

    /// Iterates the buffered records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.buf.iter()
    }

    /// The buffered records as a contiguous vec, oldest first.
    pub fn snapshot(&self) -> Vec<Record> {
        self.buf.iter().cloned().collect()
    }

    /// The oldest buffered record.
    pub fn first(&self) -> Option<&Record> {
        self.buf.front()
    }

    /// The newest buffered record.
    pub fn last(&self) -> Option<&Record> {
        self.buf.back()
    }

    /// Serializes the buffered records as JSONL, oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in &self.buf {
            out.push_str(&serde_json::to_string(rec).expect("record serialization cannot fail"));
            out.push('\n');
        }
        out
    }
}

impl<'a> IntoIterator for &'a FlightBuffer {
    type Item = &'a Record;
    type IntoIter = std::collections::vec_deque::Iter<'a, Record>;

    fn into_iter(self) -> Self::IntoIter {
        self.buf.iter()
    }
}

/// True for the watchdog outcomes that warrant a post-mortem: permanent
/// disconnection and budget exhaustion. A clean `recovered` is not an
/// anomaly.
fn is_anomaly(ev: &Event) -> bool {
    matches!(
        ev,
        Event::Verdict { outcome, .. } if outcome == "disconnected" || outcome == "budget_exhausted"
    )
}

/// A [`Sink`] over a shared [`FlightBuffer`] that auto-dumps the buffer
/// as JSONL when an anomalous verdict flows through it.
///
/// The buffer handle is shared (`Arc<Mutex<_>>`) so the dump — and any
/// test assertion — stays reachable after the sink is consumed by
/// `Network::attach_sink`.
pub struct FlightRecorder {
    buf: Arc<Mutex<FlightBuffer>>,
    dump_path: Option<PathBuf>,
    dumps: u64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("dump_path", &self.dump_path)
            .field("dumps", &self.dumps)
            .finish_non_exhaustive()
    }
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` records, plus the shared
    /// buffer handle.
    pub fn new(capacity: usize) -> (Self, Arc<Mutex<FlightBuffer>>) {
        let buf = Arc::new(Mutex::new(FlightBuffer::new(capacity)));
        (
            FlightRecorder {
                buf: Arc::clone(&buf),
                dump_path: None,
                dumps: 0,
            },
            buf,
        )
    }

    /// Arms the auto-dump: anomalous verdicts write the buffer to
    /// `path` as JSONL (truncating; the *last* anomaly wins).
    #[must_use]
    pub fn with_dump_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.dump_path = Some(path.into());
        self
    }

    /// How many times the recorder has dumped.
    pub fn dumps(&self) -> u64 {
        self.dumps
    }

    /// Writes the buffered records to `path` as JSONL — the manual
    /// trigger for tripped debug invariants.
    pub fn dump_to(&self, path: &Path) -> std::io::Result<()> {
        let jsonl = self.buf.lock().expect("flight buffer poisoned").to_jsonl();
        std::fs::write(path, jsonl)
    }

    /// Dumps to the armed path (no-op without one). Returns whether a
    /// dump was written.
    pub fn dump_now(&mut self) -> bool {
        let Some(path) = self.dump_path.clone() else {
            return false;
        };
        match self.dump_to(&path) {
            Ok(()) => {
                self.dumps += 1;
                true
            }
            Err(e) => {
                debug_assert!(false, "flight-recorder dump failed: {e}");
                false
            }
        }
    }
}

impl Sink for FlightRecorder {
    fn record(&mut self, rec: &Record) {
        self.buf
            .lock()
            .expect("flight buffer poisoned")
            .push(rec.clone());
        if is_anomaly(&rec.event) {
            self.dump_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::parse_record;

    fn rec(round: u64) -> Record {
        Record::new(Event::Transition {
            round,
            phase: "lcc".to_string(),
        })
    }

    #[test]
    fn ring_wraps_and_counts_evictions() {
        let mut b = FlightBuffer::new(3);
        for r in 0..5 {
            b.push(rec(r));
        }
        assert_eq!(b.len(), 3);
        assert_eq!(b.capacity(), 3);
        assert_eq!(b.dropped_records(), 2);
        let rounds: Vec<u64> = b
            .iter()
            .map(|r| match &r.event {
                Event::Transition { round, .. } => *round,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(rounds, vec![2, 3, 4], "oldest evicted, order kept");
        assert_eq!(b.first(), Some(&rec(2)));
        assert_eq!(b.last(), Some(&rec(4)));
        assert_eq!(b.snapshot().len(), 3);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut b = FlightBuffer::new(0);
        b.push(rec(1));
        b.push(rec(2));
        assert_eq!(b.len(), 1);
        assert_eq!(b.dropped_records(), 1);
    }

    #[test]
    fn jsonl_dump_parses_line_by_line() {
        let mut b = FlightBuffer::new(8);
        b.push(rec(1));
        b.push(rec(2));
        let jsonl = b.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            parse_record(line).expect("every dumped line parses");
        }
    }

    #[test]
    fn anomalous_verdict_triggers_the_dump() {
        let dir = std::env::temp_dir().join("swn_flight_test_dump");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("postmortem.jsonl");
        let _ = std::fs::remove_file(&path);
        let (rec_sink, _buf) = FlightRecorder::new(16);
        let mut sink = rec_sink.with_dump_path(&path);
        sink.record(&rec(1));
        sink.record(&Record::new(Event::Verdict {
            round: 5,
            outcome: "recovered".to_string(),
            detail: "rounds=4".to_string(),
        }));
        assert_eq!(sink.dumps(), 0, "clean recovery is not an anomaly");
        assert!(!path.exists());
        sink.record(&Record::new(Event::Verdict {
            round: 9,
            outcome: "disconnected".to_string(),
            detail: "sole carrier".to_string(),
        }));
        assert_eq!(sink.dumps(), 1);
        let dumped = std::fs::read_to_string(&path).expect("dump written");
        assert_eq!(dumped.lines().count(), 3, "whole buffer dumped");
        assert!(dumped.contains("sole carrier"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn budget_exhaustion_also_dumps_and_unarmed_recorder_does_not() {
        let (mut sink, buf) = FlightRecorder::new(4);
        sink.record(&Record::new(Event::Verdict {
            round: 2,
            outcome: "budget_exhausted".to_string(),
            detail: "budget=10".to_string(),
        }));
        assert_eq!(sink.dumps(), 0, "no dump path armed: buffer only");
        assert!(!sink.dump_now(), "manual trigger without a path is a no-op");
        assert_eq!(buf.lock().expect("buffer").len(), 1);
        let dir = std::env::temp_dir().join("swn_flight_test_budget");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("postmortem.jsonl");
        let mut armed = FlightRecorder::new(4).0.with_dump_path(&path);
        armed.record(&Record::new(Event::Verdict {
            round: 2,
            outcome: "budget_exhausted".to_string(),
            detail: "budget=10".to_string(),
        }));
        assert_eq!(armed.dumps(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
