//! The live metrics plane: sharded lock-free counters, gauges and log2
//! histograms with merge-on-read snapshots and Prometheus-style text
//! exposition.
//!
//! The observability layer ([`crate::obs`]) is *post-hoc*: events flow
//! to a sink and get analyzed after the run. A serving runtime (ROADMAP
//! E11) and long fault soaks need the opposite — cheap *live* readings
//! that any thread can bump without locks and any scraper can snapshot
//! mid-run. This module provides that plane:
//!
//! * [`Counter`] — monotone, sharded per thread ([`SHARDS`] lanes of
//!   relaxed atomics) so concurrent `run_trials` workers never contend
//!   on a cache line; reads merge the lanes.
//! * [`Gauge`] — a single last-write-wins cell (point-in-time values
//!   like the active-set size).
//! * [`AtomicHistogram`] — the same log2 bucket layout as
//!   [`obs::Histogram`](Histogram), sharded, with a merge-on-read
//!   [`AtomicHistogram::snapshot`] that returns a plain [`Histogram`]
//!   for quantile math.
//! * [`Registry`] — named get-or-register storage plus
//!   [`Registry::render_prometheus`] text exposition. A process-wide
//!   [`global`] registry is provided; the engine publishes into it via
//!   [`NetMetrics`] (see `Network::attach_metrics`).
//!
//! Writers are wait-free (one relaxed `fetch_add`); registration and
//! reads take a `Mutex` over a plain `Vec` — registration is rare and
//! scrapes are off the hot path, and the deterministic-crate lint bans
//! randomized-iteration maps anyway. Metrics are *observational*: they
//! consume no RNG and never feed back into the computation, so
//! publishing them cannot perturb a seeded run.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::obs::{Histogram, HIST_BUCKETS};

/// Number of per-thread lanes in sharded metrics. A power of two so the
/// thread-to-lane map is a mask; 16 lanes keep up to 16 concurrent
/// writers (the practical `run_trials` worker count) on distinct
/// cache lines with high probability.
pub const SHARDS: usize = 16;

/// Monotonically assigns each thread a lane on first metric touch.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's lane: threads round-robin over the lanes, so any
    /// 16 concurrent writers land on distinct lanes.
    static SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
}

fn shard() -> usize {
    SHARD.with(|s| *s)
}

/// A monotone counter sharded over [`SHARDS`] relaxed atomics: writers
/// bump their thread's lane wait-free, readers merge the lanes.
#[derive(Debug, Default)]
pub struct Counter {
    lanes: [AtomicU64; SHARDS],
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter {
            lanes: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.lanes[shard()].fetch_add(n, Ordering::Relaxed);
    }

    /// The merged total (wrapping on overflow, like the lanes).
    pub fn get(&self) -> u64 {
        self.lanes
            .iter()
            .fold(0u64, |acc, l| acc.wrapping_add(l.load(Ordering::Relaxed)))
    }
}

/// A last-write-wins point-in-time value (single atomic cell).
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Gauge {
            v: AtomicU64::new(0),
        }
    }

    /// Stores `v`.
    pub fn set(&self, v: u64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// The last stored value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A lock-free log2 histogram with the exact bucket layout of
/// [`Histogram`]: [`SHARDS`] lanes of [`HIST_BUCKETS`] relaxed bucket
/// atomics plus sharded sums and a `fetch_max` maximum. Reads merge the
/// lanes into a plain [`Histogram`] ([`AtomicHistogram::snapshot`]) so
/// all quantile/mean math lives in one place.
#[derive(Debug)]
pub struct AtomicHistogram {
    /// `buckets[lane * HIST_BUCKETS + b]`.
    buckets: Vec<AtomicU64>,
    sums: [AtomicU64; SHARDS],
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: (0..SHARDS * HIST_BUCKETS)
                .map(|_| AtomicU64::new(0))
                .collect(),
            sums: std::array::from_fn(|_| AtomicU64::new(0)),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample (wait-free: two relaxed adds + one
    /// `fetch_max`).
    pub fn record(&self, v: u64) {
        let lane = shard();
        let b = Histogram::bucket_index(v);
        self.buckets[lane * HIST_BUCKETS + b].fetch_add(1, Ordering::Relaxed);
        self.sums[lane].fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Merges the lanes into a plain [`Histogram`]. Concurrent writers
    /// may land between the bucket and sum reads, so a snapshot taken
    /// mid-write can be off by in-flight samples — each lane's counts
    /// are monotone, so it never goes backwards.
    pub fn snapshot(&self) -> Histogram {
        let mut buckets = vec![0u64; HIST_BUCKETS];
        for lane in 0..SHARDS {
            for (b, acc) in buckets.iter_mut().enumerate() {
                *acc += self.buckets[lane * HIST_BUCKETS + b].load(Ordering::Relaxed);
            }
        }
        let sum = self
            .sums
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.load(Ordering::Relaxed)));
        Histogram::from_parts(buckets, sum, self.max.load(Ordering::Relaxed))
    }
}

/// One registered metric, by kind.
#[derive(Clone, Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<AtomicHistogram>),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    help: String,
    metric: Metric,
}

/// A named metric registry with get-or-register semantics and
/// Prometheus-style text exposition.
///
/// Registration takes a mutex over a plain vector (linear name scan):
/// callers register once and keep the returned `Arc`, so the lock never
/// sits on a hot path. Lookups by the same name return the *same*
/// metric — two networks publishing `swn_rounds_total` into one
/// registry aggregate.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.entries.lock().map(|e| e.len()).unwrap_or(0);
        f.debug_struct("Registry").field("metrics", &n).finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_register(&self, name: &str, help: &str, mk: impl FnOnce() -> Metric) -> Metric {
        debug_assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == ':'),
            "metric name {name:?} is not a valid prometheus identifier"
        );
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            return e.metric.clone();
        }
        let metric = mk();
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            metric: metric.clone(),
        });
        metric
    }

    /// The counter named `name`, registering it (with `help`) on first
    /// use.
    ///
    /// # Panics
    /// Panics when `name` is already registered as a different kind.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        match self.get_or_register(name, help, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.type_name()),
        }
    }

    /// The gauge named `name`, registering it on first use.
    ///
    /// # Panics
    /// Panics when `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        match self.get_or_register(name, help, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.type_name()),
        }
    }

    /// The histogram named `name`, registering it on first use.
    ///
    /// # Panics
    /// Panics when `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<AtomicHistogram> {
        match self.get_or_register(name, help, || {
            Metric::Histogram(Arc::new(AtomicHistogram::new()))
        }) {
            Metric::Histogram(h) => h,
            other => panic!(
                "metric {name:?} is a {}, not a histogram",
                other.type_name()
            ),
        }
    }

    /// Renders every registered metric in the Prometheus text format
    /// (`# HELP`/`# TYPE` headers; histograms as cumulative
    /// `_bucket{le="..."}` series plus `_sum`/`_count`), in registration
    /// order.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let entries = self.entries.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for e in entries.iter() {
            let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
            let _ = writeln!(out, "# TYPE {} {}", e.name, e.metric.type_name());
            match &e.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{} {}", e.name, c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{} {}", e.name, g.get());
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut cum = 0u64;
                    for (b, &c) in snap.buckets().iter().enumerate() {
                        cum += c;
                        if b + 1 == HIST_BUCKETS {
                            let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {cum}", e.name);
                        } else {
                            let (_, hi) = Histogram::bucket_bounds(b);
                            let _ = writeln!(out, "{}_bucket{{le=\"{hi}\"}} {cum}", e.name);
                        }
                    }
                    let _ = writeln!(out, "{}_sum {}", e.name, snap.sum());
                    let _ = writeln!(out, "{}_count {}", e.name, snap.count());
                }
            }
        }
        out
    }
}

/// The process-wide registry: what the engine ([`NetMetrics`]) and the
/// trial runner ([`crate::parallel::run_trials`]) publish into by
/// default.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// The engine's published metrics — one handle bundle the round loop
/// bumps at end of round when attached (`Network::attach_metrics`).
/// Handles resolve by *name*, so every network attached to the same
/// registry aggregates into the same series.
#[derive(Debug)]
pub struct NetMetrics {
    /// `swn_rounds_total`: rounds executed.
    pub rounds: Arc<Counter>,
    /// `swn_messages_sent_total`: messages sent.
    pub sent: Arc<Counter>,
    /// `swn_messages_delivered_total`: messages delivered.
    pub delivered: Arc<Counter>,
    /// `swn_active_set_size`: agenda size after the round (upper bound
    /// on next round's active nodes); live node count under full scan.
    pub active_set: Arc<Gauge>,
    /// `swn_quiescent_rounds_total`: rounds ending with an empty
    /// agenda (active-set mode only).
    pub quiescent_rounds: Arc<Counter>,
    /// `swn_sched_wakeups_total`: agenda insertions (deduplicated
    /// schedule calls) — how much waking the scheduler actually did.
    pub sched_wakeups: Arc<Counter>,
}

impl NetMetrics {
    /// Registers (or resolves) the engine series in `reg`.
    pub fn register(reg: &Registry) -> Self {
        NetMetrics {
            rounds: reg.counter("swn_rounds_total", "Simulation rounds executed"),
            sent: reg.counter("swn_messages_sent_total", "Protocol messages sent"),
            delivered: reg.counter(
                "swn_messages_delivered_total",
                "Protocol messages delivered",
            ),
            active_set: reg.gauge(
                "swn_active_set_size",
                "Scheduler agenda size after the last round",
            ),
            quiescent_rounds: reg.counter(
                "swn_quiescent_rounds_total",
                "Rounds that ended with an empty agenda",
            ),
            sched_wakeups: reg.counter(
                "swn_sched_wakeups_total",
                "Agenda insertions by the active-set scheduler",
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_merges_across_threads() {
        let c = Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        c.add(5);
        assert_eq!(c.get(), 8005);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0);
        g.set(17);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn atomic_histogram_snapshot_matches_plain_histogram() {
        let ah = Arc::new(AtomicHistogram::new());
        let mut plain = Histogram::new();
        let samples: Vec<u64> = (0..200).map(|i| i * i % 777).collect();
        for &v in &samples {
            plain.record(v);
        }
        std::thread::scope(|s| {
            for chunk in samples.chunks(50) {
                let ah = Arc::clone(&ah);
                s.spawn(move || {
                    for &v in chunk {
                        ah.record(v);
                    }
                });
            }
        });
        let snap = ah.snapshot();
        assert!(snap.is_well_formed());
        assert_eq!(snap.buckets(), plain.buckets());
        assert_eq!(snap.count(), plain.count());
        assert_eq!(snap.sum(), plain.sum());
        assert_eq!(snap.max(), plain.max());
        assert_eq!(snap.approx_quantile(0.99), plain.approx_quantile(0.99));
    }

    #[test]
    fn registry_get_or_register_returns_the_same_metric() {
        let reg = Registry::new();
        let a = reg.counter("swn_test_total", "a test counter");
        let b = reg.counter("swn_test_total", "ignored duplicate help");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same underlying counter");
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn registry_rejects_kind_mismatch() {
        let reg = Registry::new();
        let _ = reg.counter("swn_test_total", "a counter");
        let _ = reg.gauge("swn_test_total", "now a gauge?");
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let reg = Registry::new();
        reg.counter("swn_rounds_total", "Rounds executed").add(42);
        reg.gauge("swn_active_set_size", "Agenda size").set(7);
        let h = reg.histogram("swn_latency_rounds", "Delivery latency");
        for v in [0, 1, 1, 3, 900] {
            h.record(v);
        }
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP swn_rounds_total Rounds executed"));
        assert!(text.contains("# TYPE swn_rounds_total counter"));
        assert!(text.contains("swn_rounds_total 42"));
        assert!(text.contains("# TYPE swn_active_set_size gauge"));
        assert!(text.contains("swn_active_set_size 7"));
        assert!(text.contains("# TYPE swn_latency_rounds histogram"));
        // Cumulative buckets: le="0" sees the one zero sample, le="1"
        // the two ones on top, +Inf everything.
        assert!(text.contains("swn_latency_rounds_bucket{le=\"0\"} 1"));
        assert!(text.contains("swn_latency_rounds_bucket{le=\"1\"} 3"));
        assert!(text.contains("swn_latency_rounds_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("swn_latency_rounds_sum 905"));
        assert!(text.contains("swn_latency_rounds_count 5"));
        // Cumulative series never decreases.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket series must be cumulative: {line}");
            last = v;
        }
    }

    #[test]
    fn net_metrics_register_and_render() {
        let reg = Registry::new();
        let m = NetMetrics::register(&reg);
        m.rounds.inc();
        m.active_set.set(3);
        let text = reg.render_prometheus();
        assert!(text.contains("swn_rounds_total 1"));
        assert!(text.contains("swn_active_set_size 3"));
        // Re-registering resolves the same series.
        let m2 = NetMetrics::register(&reg);
        m2.rounds.inc();
        assert_eq!(m.rounds.get(), 2);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = global().counter("swn_global_smoke_total", "smoke");
        let b = global().counter("swn_global_smoke_total", "smoke");
        assert!(Arc::ptr_eq(&a, &b));
    }
}
