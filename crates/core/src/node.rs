//! Node state and the two actions of Algorithm 1.
//!
//! Each node runs exactly two guarded actions (Section III):
//!
//! * the **receive action**, enabled whenever a message sits in the node's
//!   channel — dispatched here to the handler for the message's type;
//! * the **regular action**, enabled in every state — it re-advertises the
//!   node's identity to its neighbours (`sendid`, Algorithm 9) and starts
//!   the probing procedure (Algorithm 10).
//!
//! Handlers never perform I/O: they emit sends/events into an
//! [`Outbox`](crate::outbox::Outbox), which the simulator or the threaded
//! runtime then delivers. This keeps the protocol logic deterministic,
//! single-threaded and directly unit-testable.

use crate::config::ProtocolConfig;
use crate::id::{Extended, NodeId};
use crate::message::Message;
use crate::outbox::{Outbox, ProtocolEvent};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The full per-node protocol state (Section III's internal variables).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// `p.id` — the node's identifier. Immutable.
    id: NodeId,
    /// `p.l` — left neighbour, `< id`, or `−∞` when none is known.
    pub(crate) l: Extended,
    /// `p.r` — right neighbour, `> id`, or `+∞` when none is known.
    pub(crate) r: Extended,
    /// `p.lrl` — current endpoint of the long-range link. `lrl == id`
    /// means the token sits at its origin (the freshly-forgotten state).
    pub(crate) lrl: NodeId,
    /// `p.ring` — ring-edge target; only meaningful while `l = −∞` or
    /// `r = +∞` (i.e. for the minimum/maximum candidates).
    pub(crate) ring: Option<NodeId>,
    /// `p.age` — regular-action executions since `lrl` was last reset.
    pub(crate) age: u64,
    /// Regular-action counter driving the probing cadence.
    tick: u64,
    /// Protocol parameters.
    cfg: ProtocolConfig,
}

impl Node {
    /// A fresh node: no neighbours, the long-range token at its origin.
    pub fn new(id: NodeId, cfg: ProtocolConfig) -> Self {
        Node {
            id,
            l: Extended::NegInf,
            r: Extended::PosInf,
            lrl: id,
            ring: None,
            age: 0,
            tick: 0,
            cfg,
        }
    }

    /// A node with adversarially chosen variable contents, for
    /// self-stabilization experiments. Ill-typed values (e.g. `l ≥ id`)
    /// are accepted here; the sanitation rule repairs them at the node's
    /// first action without losing connectivity.
    pub fn with_state(
        id: NodeId,
        l: Extended,
        r: Extended,
        lrl: NodeId,
        ring: Option<NodeId>,
        cfg: ProtocolConfig,
    ) -> Self {
        Node {
            id,
            l,
            r,
            lrl,
            ring,
            age: 0,
            tick: 0,
            cfg,
        }
    }

    /// The node's identifier.
    #[inline]
    pub fn id(&self) -> NodeId {
        self.id
    }
    /// The stored left neighbour.
    #[inline]
    pub fn left(&self) -> Extended {
        self.l
    }
    /// The stored right neighbour.
    #[inline]
    pub fn right(&self) -> Extended {
        self.r
    }
    /// The long-range link endpoint.
    #[inline]
    pub fn lrl(&self) -> NodeId {
        self.lrl
    }
    /// The ring-edge target, if set.
    #[inline]
    pub fn ring(&self) -> Option<NodeId> {
        self.ring
    }
    /// The long-range link's age.
    #[inline]
    pub fn age(&self) -> u64 {
        self.age
    }
    /// The protocol parameters this node runs with.
    #[inline]
    pub fn config(&self) -> &ProtocolConfig {
        &self.cfg
    }
    /// The regular-action counter driving the probing cadence. Behaviour
    /// depends only on its residue modulo
    /// [`probe_period`](crate::config::ProtocolConfig::probe_period);
    /// state-space tools key on that residue.
    #[inline]
    pub fn probe_tick(&self) -> u64 {
        self.tick
    }

    /// Staggers this node's probing cadence: with `probe_period = P`, the
    /// node probes on regular actions where `(phase + k) ≡ 0 (mod P)`.
    /// Real deployments stagger probes to spread load; the cadence
    /// ablation (A3) randomizes phases so fault-to-probe latency is
    /// uniform in `[0, P)` instead of always zero.
    pub fn with_probe_phase(mut self, phase: u64) -> Self {
        self.tick = phase;
        self
    }

    /// The finite identifiers currently stored by this node — its outgoing
    /// edges in the node connectivity graph CP (Definition 4.2).
    pub fn stored_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.l
            .fin()
            .into_iter()
            .chain(self.r.fin())
            .chain(Some(self.lrl))
            .chain(self.ring)
    }

    /// **Receive action** (Algorithm 1, message dispatch).
    pub fn on_message<R: Rng + ?Sized>(&mut self, m: Message, rng: &mut R, out: &mut Outbox) {
        self.sanitize(out);
        match m {
            Message::Lin(id) => self.linearize(id, out),
            Message::IncLrl(origin) => self.respond_lrl(origin, out),
            Message::ResLrl(id1, id2) => self.move_forget(id1, id2, rng, out),
            Message::ProbR(dest) => self.probing_r(dest, out),
            Message::ProbL(dest) => self.probing_l(dest, out),
            Message::Ring(id) => self.respond_ring(id, out),
            Message::ResRing(cand) => self.update_ring(cand),
        }
    }

    /// **Regular action** (Algorithm 1, `true → sendid(); probing()`).
    pub fn on_regular(&mut self, out: &mut Outbox) {
        self.sanitize(out);
        // p.age counts regular-action executions ("rounds") since the last
        // reset of p.lrl; the forget check itself happens in move-forget.
        self.age = self.age.saturating_add(1);
        self.send_id(out);
        if self.tick.is_multiple_of(self.cfg.probe_period) {
            self.probing(out);
        }
        self.tick = self.tick.wrapping_add(1);
    }

    /// Repairs ill-typed stored pointers without dropping connectivity:
    /// a left neighbour that is not smaller (or a right one that is not
    /// larger) is removed from its slot and re-injected into the
    /// linearization process, so the link survives in LCC. A ring edge
    /// stored by a node that has both neighbours is likewise converted
    /// into a `lin` self-delivery. This implements the paper's remark that
    /// corrupt internal variables are recovered "by detecting them like
    /// wrong left or right neighbors" (Section III).
    fn sanitize(&mut self, out: &mut Outbox) {
        // A swapped sentinel (l = +∞ / r = −∞) carries no link: normalize.
        if self.l.is_pos_inf() {
            self.l = Extended::NegInf;
        }
        if self.r.is_neg_inf() {
            self.r = Extended::PosInf;
        }
        if let Extended::Fin(lv) = self.l {
            if lv >= self.id {
                self.l = Extended::NegInf;
                if lv != self.id {
                    out.event(ProtocolEvent::PointerSalvaged { value: lv });
                    self.linearize(lv, out);
                }
            }
        }
        if let Extended::Fin(rv) = self.r {
            if rv <= self.id {
                self.r = Extended::PosInf;
                if rv != self.id {
                    out.event(ProtocolEvent::PointerSalvaged { value: rv });
                    self.linearize(rv, out);
                }
            }
        }
        if self.l.is_fin() && self.r.is_fin() {
            if let Some(x) = self.ring.take() {
                if x != self.id {
                    out.event(ProtocolEvent::PointerSalvaged { value: x });
                    self.linearize(x, out);
                }
            }
        }
    }

    /// `sendid()` — Algorithm 9: advertise our id to both neighbours (or
    /// along the ring edge where a neighbour is missing) and announce the
    /// long-range link to its endpoint.
    fn send_id(&mut self, out: &mut Outbox) {
        match self.l {
            Extended::Fin(lv) => out.send(lv, Message::Lin(self.id)),
            _ => {
                if let Some(target) = self.ring_target(out) {
                    out.send(target, Message::Ring(self.id));
                }
            }
        }
        match self.r {
            Extended::Fin(rv) => out.send(rv, Message::Lin(self.id)),
            _ => {
                if let Some(target) = self.ring_target(out) {
                    out.send(target, Message::Ring(self.id));
                }
            }
        }
        out.send(self.lrl, Message::IncLrl(self.id));
    }

    /// Validates (and if necessary re-bootstraps) the ring-edge target.
    ///
    /// For the minimum candidate (`l = −∞`) the ring edge must point to a
    /// *larger* node (ultimately the maximum); for the maximum candidate to
    /// a smaller one. An unset or wrong-sided `p.ring` is reset to the
    /// node's only known neighbour, which restarts the ring-edge
    /// improvement of Algorithms 7/8 (DESIGN.md deviation #3). Returns
    /// `None` for an isolated node.
    fn ring_target(&mut self, out: &mut Outbox) -> Option<NodeId> {
        let (min_side, fallback) = match (self.l, self.r) {
            (Extended::NegInf, Extended::PosInf) => return None, // isolated
            (Extended::NegInf, Extended::Fin(rv)) => (true, rv),
            (Extended::Fin(lv), Extended::PosInf) => (false, lv),
            // Both neighbours known: sanitize() already cleared the ring.
            _ => return None,
        };
        let valid = match self.ring {
            Some(x) if min_side => x > self.id,
            Some(x) => x < self.id,
            None => false,
        };
        if !valid {
            self.ring = Some(fallback);
            out.event(ProtocolEvent::RingReset { to: Some(fallback) });
        }
        self.ring
    }

    /// Departure detection: clears every variable that stores `dead`
    /// (a dangling left/right neighbour becomes `±∞`, a dangling
    /// long-range link returns to its origin, a dangling ring edge is
    /// unset). Returns true if anything changed.
    ///
    /// The transport calls this when a send to `dead` bounces — the
    /// simulator's model of the paper's remark that corrupt neighbour
    /// variables are recovered "by detecting them like wrong left or
    /// right neighbors".
    pub fn clear_dangling(&mut self, dead: NodeId) -> bool {
        let mut changed = false;
        if self.l == Extended::Fin(dead) {
            self.l = Extended::NegInf;
            changed = true;
        }
        if self.r == Extended::Fin(dead) {
            self.r = Extended::PosInf;
            changed = true;
        }
        if self.lrl == dead {
            self.lrl = self.id;
            self.age = 0;
            changed = true;
        }
        if self.ring == Some(dead) {
            self.ring = None;
            changed = true;
        }
        changed
    }

    /// Read-only variant of the ring validity check, used when *answering*
    /// messages (Algorithm 3) — answering must not mutate the ring edge.
    pub(crate) fn valid_ring(&self) -> Option<NodeId> {
        match (self.l, self.r, self.ring) {
            (Extended::NegInf, Extended::Fin(_), Some(x)) if x > self.id => Some(x),
            (Extended::Fin(_), Extended::PosInf, Some(x)) if x < self.id => Some(x),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn id(f: f64) -> NodeId {
        NodeId::from_fraction(f)
    }
    fn cfg() -> ProtocolConfig {
        ProtocolConfig::default()
    }

    #[test]
    fn fresh_node_has_token_at_origin() {
        let n = Node::new(id(0.5), cfg());
        assert_eq!(n.lrl(), id(0.5));
        assert_eq!(n.left(), Extended::NegInf);
        assert_eq!(n.right(), Extended::PosInf);
        assert_eq!(n.ring(), None);
        assert_eq!(n.age(), 0);
    }

    #[test]
    fn isolated_node_regular_action_only_self_announces() {
        let mut n = Node::new(id(0.5), cfg());
        let mut out = Outbox::new();
        n.on_regular(&mut out);
        // No neighbours, no valid ring target: only the inclrl to itself.
        let sends = out.sends();
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0], (id(0.5), Message::IncLrl(id(0.5))));
    }

    #[test]
    fn regular_action_advertises_to_both_neighbours() {
        let mut n = Node::with_state(
            id(0.5),
            Extended::Fin(id(0.3)),
            Extended::Fin(id(0.7)),
            id(0.5),
            None,
            cfg(),
        );
        let mut out = Outbox::new();
        n.on_regular(&mut out);
        let kinds: Vec<_> = out.sends().iter().map(|(_, m)| m.kind()).collect();
        assert!(kinds.contains(&MessageKind::Lin));
        assert_eq!(out.sends()[0], (id(0.3), Message::Lin(id(0.5))));
        assert_eq!(out.sends()[1], (id(0.7), Message::Lin(id(0.5))));
        assert_eq!(out.sends()[2], (id(0.5), Message::IncLrl(id(0.5))));
    }

    #[test]
    fn min_candidate_bootstraps_ring_to_right_neighbour() {
        let mut n = Node::with_state(
            id(0.1),
            Extended::NegInf,
            Extended::Fin(id(0.4)),
            id(0.1),
            None,
            cfg(),
        );
        let mut out = Outbox::new();
        n.on_regular(&mut out);
        assert_eq!(n.ring(), Some(id(0.4)));
        assert!(out
            .sends()
            .iter()
            .any(|&(d, m)| d == id(0.4) && m == Message::Ring(id(0.1))));
    }

    #[test]
    fn wrong_sided_ring_is_reset() {
        // A max candidate whose ring points right (invalid) gets it reset
        // to its left neighbour.
        let mut n = Node::with_state(
            id(0.8),
            Extended::Fin(id(0.6)),
            Extended::PosInf,
            id(0.8),
            Some(id(0.9)),
            cfg(),
        );
        let mut out = Outbox::new();
        n.on_regular(&mut out);
        assert_eq!(n.ring(), Some(id(0.6)));
        assert!(out
            .events()
            .iter()
            .any(|e| matches!(e, ProtocolEvent::RingReset { .. })));
    }

    #[test]
    fn sanitize_salvages_ill_typed_left_pointer() {
        // l > id is ill-typed; the value must move to the r side (via
        // linearize), not be dropped.
        let mut n = Node::with_state(
            id(0.4),
            Extended::Fin(id(0.9)),
            Extended::PosInf,
            id(0.4),
            None,
            cfg(),
        );
        let mut out = Outbox::new();
        n.on_regular(&mut out);
        assert_eq!(n.left(), Extended::NegInf);
        assert_eq!(n.right(), Extended::Fin(id(0.9)));
        assert!(out
            .events()
            .iter()
            .any(|e| matches!(e, ProtocolEvent::PointerSalvaged { .. })));
    }

    #[test]
    fn sanitize_clears_ring_of_interior_node() {
        let mut n = Node::with_state(
            id(0.5),
            Extended::Fin(id(0.3)),
            Extended::Fin(id(0.7)),
            id(0.5),
            Some(id(0.9)),
            cfg(),
        );
        let mut out = Outbox::new();
        n.on_regular(&mut out);
        assert_eq!(n.ring(), None);
        // The salvaged value re-enters linearization: 0.9 > 0.7 = r, so it
        // is forwarded to r as a lin message.
        assert!(out
            .sends()
            .iter()
            .any(|&(d, m)| d == id(0.7) && m == Message::Lin(id(0.9))));
    }

    #[test]
    fn age_increments_each_regular_action() {
        let mut n = Node::new(id(0.5), cfg());
        let mut out = Outbox::new();
        for expected in 1..=5 {
            n.on_regular(&mut out);
            assert_eq!(n.age(), expected);
        }
    }

    #[test]
    fn probe_period_gates_probing() {
        let mut cfg = cfg();
        cfg.probe_period = 3;
        // A max candidate whose lrl sits beyond its left neighbour probes
        // leftward — but only every third regular action.
        let make = || {
            Node::with_state(
                id(0.8),
                Extended::Fin(id(0.6)),
                Extended::Fin(id(0.9)),
                id(0.2),
                None,
                cfg,
            )
        };
        let mut n = make();
        let mut probes = 0;
        for _ in 0..9 {
            let mut out = Outbox::new();
            n.on_regular(&mut out);
            probes += out
                .sends()
                .iter()
                .filter(|(_, m)| matches!(m, Message::ProbL(_)))
                .count();
        }
        assert_eq!(probes, 3);
    }

    #[test]
    fn stored_ids_reflect_cp_edges() {
        let n = Node::with_state(
            id(0.5),
            Extended::Fin(id(0.3)),
            Extended::PosInf,
            id(0.9),
            Some(id(0.3)),
            cfg(),
        );
        let ids: Vec<_> = n.stored_ids().collect();
        assert_eq!(ids, vec![id(0.3), id(0.9), id(0.3)]);
    }

    #[test]
    fn self_message_is_harmless() {
        let mut n = Node::new(id(0.5), cfg());
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = Outbox::new();
        n.on_message(Message::Lin(id(0.5)), &mut rng, &mut out);
        assert!(out.sends().is_empty());
        assert_eq!(n.left(), Extended::NegInf);
        assert_eq!(n.right(), Extended::PosInf);
    }
}
