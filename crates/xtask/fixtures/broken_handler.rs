//! Deliberately non-conformant handler code. `cargo xtask lint` must
//! fail on this file (`cargo xtask lint crates/xtask/fixtures`); the
//! `seeded_fixture_fails` test pins each expected finding. Not compiled.

use swn_core::message::{Message, MessageKind};

pub struct Stats {
    // Violation: literal 7 where MessageKind::COUNT is meant.
    pub per_kind: [u64; 7],
}

pub fn dispatch(m: Message, q: &mut Vec<Message>) {
    match m {
        Message::Lin(id) => q.push(Message::Lin(id)),
        // Violation: wildcard arm swallows future message kinds.
        _ => {}
    }
}

pub fn lookup(x: Option<u32>) -> u32 {
    // Violation: a malformed peer message could panic the node.
    x.unwrap()
}

pub fn measure(events: &std::collections::HashMap<u64, u64>) -> std::time::Duration {
    // Violations: randomized-iteration map and a wall-clock read in a
    // deterministic crate.
    let t0 = std::time::Instant::now();
    for (_k, _v) in events {}
    t0.elapsed()
}

pub fn route(table: &std::collections::BTreeMap<u64, usize>, id: u64) -> Option<usize> {
    // Violation: ordered-map lookup on the simulator's hot path.
    table.get(&id).copied()
}

pub fn report(hops: usize) {
    // Violation: console output from library code.
    println!("routed in {hops} hops");
}
