//! Connected-component analysis.

use crate::graph::Graph;
use std::collections::VecDeque;

/// Labels each node with a weakly-connected-component id (directions
/// ignored) and returns `(labels, component_count)`.
pub fn weak_components(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.n();
    let und = g.undirected_view();
    let mut label = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if label[start] != u32::MAX {
            continue;
        }
        label[start] = count;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in und.neighbors(u) {
                if label[v as usize] == u32::MAX {
                    label[v as usize] = count;
                    queue.push_back(v as usize);
                }
            }
        }
        count += 1;
    }
    (label, count as usize)
}

/// True iff the graph is weakly connected (≤ 1 component among *all*
/// nodes; the empty graph counts as connected).
pub fn is_weakly_connected(g: &Graph) -> bool {
    let (_, c) = weak_components(g);
    c <= 1
}

/// Size of the largest weakly connected component, optionally ignoring a
/// removed-node mask (removed nodes count as absent, not as singletons).
pub fn largest_component(g: &Graph, removed: Option<&[bool]>) -> usize {
    let (labels, count) = weak_components(g);
    if count == 0 {
        return 0;
    }
    let mut sizes = vec![0usize; count];
    for (u, &l) in labels.iter().enumerate() {
        if removed.is_some_and(|r| r[u]) {
            continue;
        }
        sizes[l as usize] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

/// True iff every node can reach every other following edge directions
/// (Kosaraju-style double BFS from node 0; sufficient for a single-SCC
/// check).
pub fn is_strongly_connected(g: &Graph) -> bool {
    let n = g.n();
    if n <= 1 {
        return true;
    }
    let reach = |g: &Graph| -> usize {
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        seen[0] = true;
        queue.push_back(0usize);
        let mut cnt = 1;
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    cnt += 1;
                    queue.push_back(v as usize);
                }
            }
        }
        cnt
    };
    if reach(g) != n {
        return false;
    }
    // Transpose.
    let mut t = Graph::new(n);
    for (u, v) in g.edges() {
        t.add_edge(v, u);
    }
    reach(&t) == n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_component() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(is_weakly_connected(&g));
        let (labels, c) = weak_components(&g);
        assert_eq!(c, 1);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn two_components() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3), (3, 4)]);
        assert!(!is_weakly_connected(&g));
        let (_, c) = weak_components(&g);
        assert_eq!(c, 2);
        assert_eq!(largest_component(&g, None), 3);
    }

    #[test]
    fn direction_ignored_for_weak_connectivity() {
        let g = Graph::from_edges(3, &[(1, 0), (1, 2)]);
        assert!(is_weakly_connected(&g));
    }

    #[test]
    fn strong_connectivity_requires_cycles() {
        let chain = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(!is_strongly_connected(&chain));
        let cycle = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(is_strongly_connected(&cycle));
        let mutual = Graph::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]);
        assert!(is_strongly_connected(&mutual));
    }

    #[test]
    fn largest_component_with_mask() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let removed = vec![false, true, false, false, false, false];
        // With node 1 removed from counting, component {0,1,2} counts 2.
        assert_eq!(largest_component(&g, Some(&removed)), 2);
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = Graph::new(0);
        assert!(is_weakly_connected(&g));
        assert!(is_strongly_connected(&g));
        assert_eq!(largest_component(&g, None), 0);
    }
}
