//! Depth-first enumeration of schedules, with optional sleep-set
//! partial-order reduction.
//!
//! The search is an explicit DFS over [`State`]s. Each visited
//! configuration is memoized by its exact canonical key: the monitored
//! predicates are pure functions of the configuration, so once a state's
//! outgoing transitions have been checked there is nothing new to learn
//! from reaching it again by a different schedule.
//!
//! With [`Reduction::SleepSets`] the search additionally carries a
//! *sleep set* (Godefroid's algorithm): a set of transitions that are
//! enabled but provably redundant here, because an already-explored
//! sibling branch covers every behaviour that starts with them. Two
//! transitions are independent iff their **actors differ** — a delivery
//! mutates only the receiving node and appends to channels, a regular
//! action reads no channel, and no transition with a distinct actor can
//! disable another (budgets are per-node, message instances are consumed
//! only by their own delivery) — **and** neither *sends* the exact
//! `(destination, message)` pair the other *delivers*. The second clause
//! is forced by the channel-multiplicity bound: when a send of `m` to
//! node `C` coalesces against the copy a pending `Deliver(C, m)` is
//! about to consume, send-then-deliver leaves the channel empty while
//! deliver-then-send leaves one copy — the orders no longer commute.
//! (Under unbounded multisets the actor test alone would suffice.) A
//! sleeping transition's send-set is fixed when it first executes and
//! stays valid while it sleeps: only actor-disjoint transitions run in
//! between, and sends are a function of the actor's node state plus the
//! delivered message. Sleep sets prune *transitions*, never *states*:
//! every reachable configuration is still visited, which the
//! `sleep_sets_visit_every_state_of_plain_dfs` test cross-checks against
//! plain DFS.

use crate::state::{Key, PredVector, State, Transition, Violation};
use crate::stepper::{Policy, Stepper};
// lint: allow(determinism) — fingerprint-keyed tables; iteration order is never observed.
use std::collections::HashMap;
use swn_core::id::NodeId;
use swn_core::message::Message;

/// 128-bit FNV-1a fingerprint of a canonical state key. The visited and
/// predicate tables store fingerprints instead of full keys (hash
/// compaction): at ~40 words per key and millions of states the exact
/// keys dominate memory. A collision would silently merge two states;
/// at 128 bits the probability across 10^7 states is ~10^-25, far below
/// any hardware error rate, so the search is exhaustive for all
/// practical purposes.
pub fn fingerprint(key: &Key) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = OFFSET;
    for w in key {
        for byte in w.to_le_bytes() {
            h ^= u128::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// Which pruning the search applies on top of exact-state memoization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reduction {
    /// Plain DFS with memoization only.
    None,
    /// Sleep-set partial-order reduction over commuting transitions.
    SleepSets,
}

/// Search parameters.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Randomness policy handlers run under (see [`Policy`]).
    pub policy: Policy,
    /// Pruning strategy.
    pub reduction: Reduction,
    /// Abort (mark `truncated`) after visiting this many states.
    pub max_states: usize,
    /// Abort a branch (mark `truncated`) beyond this schedule length.
    pub max_depth: usize,
    /// Memoize by the canonical symmetry key ([`crate::symmetry`]) instead
    /// of the raw state key: id-rank renaming plus age saturation. Sound
    /// for both policies (see the symmetry module docs) and composes with
    /// the sleep sets and the hash compaction; it merges states that
    /// differ only in ages past the forget threshold or in node storage
    /// order.
    pub symmetry: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            policy: Policy::Zeros,
            reduction: Reduction::SleepSets,
            max_states: 2_000_000,
            // Also bounds recursion depth; small-scope schedules stay far
            // below this, it only guards against runaway fixtures.
            max_depth: 2_000,
            symmetry: false,
        }
    }
}

/// A monitor violation with the schedule that reaches it.
#[derive(Clone, Debug)]
pub struct FoundViolation {
    /// What went wrong on the trace's final transition.
    pub violation: Violation,
    /// Transition sequence from the initial state; the last entry is the
    /// violating transition.
    pub trace: Vec<Transition>,
    /// Predicates before the final transition.
    pub pred_before: PredVector,
    /// Predicates after the final transition.
    pub pred_after: PredVector,
}

/// Aggregate outcome of one exhaustive search.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Distinct configurations visited.
    pub distinct_states: usize,
    /// Transitions executed (counts re-exploration under sleep sets).
    pub transitions_executed: usize,
    /// Distinct quiescent configurations (no message in flight, all
    /// budgets spent) reached.
    pub quiescent_states: usize,
    /// Longest schedule explored.
    pub max_depth_reached: usize,
    /// Sends coalesced by the channel-multiplicity bound (see
    /// [`State::initial_bounded`]). Non-zero means exhaustiveness is
    /// relative to that bound.
    pub coalesced_sends: usize,
    /// True when a cap stopped the search before exhaustion.
    pub truncated: bool,
    /// First violation found, if any (the search stops on it).
    pub violation: Option<FoundViolation>,
}

impl ExploreReport {
    /// True when the search exhausted the space and found no violation.
    pub fn clean_and_exhaustive(&self) -> bool {
        !self.truncated && self.violation.is_none()
    }
}

/// A transition in a sleep set, carrying the raw send-set its execution
/// produced (valid for as long as it sleeps — see the module docs).
#[derive(Clone, Debug)]
struct SleepEntry {
    t: Transition,
    sends: Vec<(NodeId, Message)>,
}

/// True when `t` (with raw send-set `t_sends`) and the sleeping `u` are
/// independent: distinct actors, and neither sends what the other
/// delivers.
fn independent(s: &State, t: &Transition, t_sends: &[(NodeId, Message)], u: &SleepEntry) -> bool {
    if t.actor() == u.t.actor() {
        return false;
    }
    let delivers = |tr: &Transition, sends: &[(NodeId, Message)]| {
        if let Transition::Deliver { dest, msg } = tr {
            sends.contains(&(s.nodes[*dest].id(), *msg))
        } else {
            false
        }
    };
    !delivers(&u.t, t_sends) && !delivers(t, &u.sends)
}

/// The search driver. Create one per (stepper, config) pair and call
/// [`run`](Explorer::run).
pub struct Explorer<'a> {
    stepper: &'a dyn Stepper,
    cfg: ExploreConfig,
    /// fingerprint -> sleep sets (transition lists) this state was
    /// explored under. An entry that is a subset of the current sleep set
    /// means a strictly larger set of transitions was already explored
    /// from here.
    visited: HashMap<u128, Vec<Vec<Transition>>>, // lint: allow(determinism) — keyed lookup only.
    /// Predicate vectors are pure functions of the configuration; cache
    /// them by fingerprint so converging schedules evaluate each state
    /// once.
    pred_cache: HashMap<u128, PredVector>, // lint: allow(determinism) — keyed lookup only.
    transitions_executed: usize,
    coalesced_sends: usize,
    quiescent_states: usize,
    max_depth_reached: usize,
    truncated: bool,
}

impl<'a> Explorer<'a> {
    /// A fresh explorer over `stepper` with parameters `cfg`.
    pub fn new(stepper: &'a dyn Stepper, cfg: ExploreConfig) -> Self {
        Explorer {
            stepper,
            cfg,
            visited: HashMap::new(), // lint: allow(determinism) — keyed lookup only.
            pred_cache: HashMap::new(), // lint: allow(determinism) — keyed lookup only.
            transitions_executed: 0,
            coalesced_sends: 0,
            quiescent_states: 0,
            max_depth_reached: 0,
            truncated: false,
        }
    }

    /// Fingerprint under the configured key scheme (raw or canonical).
    fn fp_of(&self, s: &State) -> u128 {
        if self.cfg.symmetry {
            fingerprint(&crate::symmetry::canonical_key(s, true))
        } else {
            fingerprint(&s.key())
        }
    }

    /// Exhaustively explores every schedule from `initial`.
    pub fn run(mut self, initial: &State) -> ExploreReport {
        let fp0 = self.fp_of(initial);
        let pred0 = self.eval_cached(fp0, initial);
        let mut path = Vec::new();
        let violation = self.dfs(initial, fp0, pred0, &[], &mut path, 0);
        ExploreReport {
            distinct_states: self.visited.len(),
            transitions_executed: self.transitions_executed,
            quiescent_states: self.quiescent_states,
            max_depth_reached: self.max_depth_reached,
            coalesced_sends: self.coalesced_sends,
            truncated: self.truncated,
            violation,
        }
    }

    /// Cached predicate evaluation (see `pred_cache`).
    fn eval_cached(&mut self, fp: u128, s: &State) -> PredVector {
        if let Some(p) = self.pred_cache.get(&fp) {
            return *p;
        }
        let p = s.eval();
        self.pred_cache.insert(fp, p);
        p
    }

    /// Returns true when this (state, sleep) pair needs no exploration,
    /// recording it otherwise. Send-sets are functions of (state,
    /// transition), so comparing the transition lists alone is exact.
    fn already_covered(&mut self, fp: u128, sleep: &[SleepEntry]) -> bool {
        match self.cfg.reduction {
            Reduction::None => {
                // Sleep sets are always empty: first visit wins.
                if self.visited.contains_key(&fp) {
                    return true;
                }
                self.visited.insert(fp, vec![Vec::new()]);
                false
            }
            Reduction::SleepSets => {
                let entries = self.visited.entry(fp).or_default();
                // A recorded visit with sleep' ⊆ sleep explored a
                // superset of the transitions we would explore now.
                if entries
                    .iter()
                    .any(|prev| prev.iter().all(|t| sleep.iter().any(|e| e.t == *t)))
                {
                    return true;
                }
                entries.push(sleep.iter().map(|e| e.t.clone()).collect());
                false
            }
        }
    }

    fn dfs(
        &mut self,
        s: &State,
        fp: u128,
        pred: PredVector,
        sleep: &[SleepEntry],
        path: &mut Vec<Transition>,
        depth: usize,
    ) -> Option<FoundViolation> {
        if self.visited.len() >= self.cfg.max_states || depth > self.cfg.max_depth {
            self.truncated = true;
            return None;
        }
        let first_visit = !self.visited.contains_key(&fp);
        if self.already_covered(fp, sleep) {
            return None;
        }
        self.max_depth_reached = self.max_depth_reached.max(depth);
        if s.is_quiescent() {
            if first_visit {
                self.quiescent_states += 1;
            }
            return None;
        }
        let enabled = s.enabled();
        let mut executed: Vec<SleepEntry> = Vec::new();
        for t in &enabled {
            if sleep.iter().any(|e| e.t == *t) {
                continue;
            }
            let applied = s
                .apply(self.stepper, self.cfg.policy, t)
                .expect("enabled transitions apply");
            let next = applied.next;
            self.transitions_executed += 1;
            self.coalesced_sends += applied.coalesced_sends as usize;
            path.push(t.clone());
            let next_fp = self.fp_of(&next);
            let pred_next = self.eval_cached(next_fp, &next);
            let found = self
                .check_transition(pred, pred_next, &applied.violations, path)
                .or_else(|| {
                    let child_sleep = match self.cfg.reduction {
                        Reduction::None => Vec::new(),
                        // Keep every sleeping or already-explored
                        // transition that is independent of t.
                        Reduction::SleepSets => sleep
                            .iter()
                            .chain(executed.iter())
                            .filter(|u| independent(s, t, &applied.sends, u))
                            .cloned()
                            .collect(),
                    };
                    self.dfs(&next, next_fp, pred_next, &child_sleep, path, depth + 1)
                });
            if found.is_some() {
                return found;
            }
            path.pop();
            executed.push(SleepEntry {
                t: t.clone(),
                sends: applied.sends,
            });
        }
        None
    }

    /// Monitors evaluated on one executed transition: per-activation
    /// violations from the outbox, then predicate monotonicity.
    fn check_transition(
        &self,
        pred: PredVector,
        pred_next: PredVector,
        violations: &[Violation],
        path: &[Transition],
    ) -> Option<FoundViolation> {
        let make = |violation: Violation| FoundViolation {
            violation,
            trace: path.to_vec(),
            pred_before: pred,
            pred_after: pred_next,
        };
        if let Some(v) = violations.first() {
            return Some(make(v.clone()));
        }
        for (name, before, after) in pred.diff(pred_next) {
            if before && !after {
                return Some(make(Violation::MonotonicityBroken { predicate: name }));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::State;
    use crate::stepper::{DropLinStepper, RealStepper, SelfEchoStepper};
    use swn_core::config::ProtocolConfig;
    use swn_core::id::evenly_spaced_ids;
    use swn_core::message::Message;
    use swn_core::node::Node;

    fn pair_with_lin(budget: u32) -> State {
        let ids = evenly_spaced_ids(2);
        let nodes: Vec<Node> = ids
            .iter()
            .map(|&id| Node::new(id, ProtocolConfig::default()))
            .collect();
        State::initial(nodes, &[(ids[0], Message::Lin(ids[1]))], budget)
    }

    #[test]
    fn real_protocol_clean_on_tiny_pair() {
        let s = pair_with_lin(2);
        let report = Explorer::new(&RealStepper, ExploreConfig::default()).run(&s);
        assert!(report.clean_and_exhaustive(), "{:?}", report.violation);
        assert!(report.distinct_states > 1);
        assert!(report.quiescent_states >= 1);
    }

    #[test]
    fn drop_lin_breaks_connectivity_monotonicity() {
        let s = pair_with_lin(0);
        let report = Explorer::new(&DropLinStepper, ExploreConfig::default()).run(&s);
        let v = report.violation.expect("dropping lin must be caught");
        assert_eq!(
            v.violation,
            Violation::MonotonicityBroken {
                predicate: "weakly_connected(Cc)"
            }
        );
        assert!(v.pred_before.connected && !v.pred_after.connected);
        assert_eq!(v.trace.len(), 1, "one delivery suffices");
    }

    #[test]
    fn self_echo_flagged_as_self_send() {
        let s = pair_with_lin(0);
        let report = Explorer::new(&SelfEchoStepper, ExploreConfig::default()).run(&s);
        let v = report.violation.expect("echo must be caught");
        assert!(
            matches!(v.violation, Violation::SelfSend { .. }),
            "{:?}",
            v.violation
        );
    }

    #[test]
    fn state_cap_marks_truncated() {
        let s = pair_with_lin(3);
        let cfg = ExploreConfig {
            max_states: 5,
            ..ExploreConfig::default()
        };
        let report = Explorer::new(&RealStepper, cfg).run(&s);
        assert!(report.truncated);
        assert!(report.distinct_states <= 5);
    }

    #[test]
    fn reductions_agree_on_seeded_line_with_coalescing() {
        // n = 2 seeded line at budget 2: ~41k states with the channel
        // bound actively coalescing sends — the configuration where a
        // naive actors-only independence relation diverges from plain
        // DFS (a coalesced send does not commute with a pending delivery
        // of the same message).
        for policy in Policy::ALL {
            let s = crate::families::Family::Line.initial_state(2, 2, 1);
            let none = Explorer::new(
                &RealStepper,
                ExploreConfig {
                    policy,
                    reduction: Reduction::None,
                    ..ExploreConfig::default()
                },
            )
            .run(&s);
            let sleep = Explorer::new(
                &RealStepper,
                ExploreConfig {
                    policy,
                    ..ExploreConfig::default()
                },
            )
            .run(&s);
            assert!(none.coalesced_sends > 0, "fixture must exercise the bound");
            assert_eq!(none.distinct_states, sleep.distinct_states);
            assert_eq!(none.quiescent_states, sleep.quiescent_states);
            assert_eq!(none.violation.is_none(), sleep.violation.is_none());
            assert!(!none.truncated && !sleep.truncated);
        }
    }

    #[test]
    fn sleep_sets_visit_every_state_of_plain_dfs() {
        let s = pair_with_lin(2);
        let none = Explorer::new(
            &RealStepper,
            ExploreConfig {
                reduction: Reduction::None,
                ..ExploreConfig::default()
            },
        )
        .run(&s);
        let sleep = Explorer::new(&RealStepper, ExploreConfig::default()).run(&s);
        // Sleep sets prune redundant interleavings, not states: both
        // searches cover the identical reachable set and agree on the
        // verdict. (Transition counts are incomparable: plain DFS prunes
        // every revisit, sleep sets re-explore under incomparable sleep
        // sets but skip sleeping siblings.)
        assert_eq!(none.distinct_states, sleep.distinct_states);
        assert_eq!(none.quiescent_states, sleep.quiescent_states);
        assert_eq!(none.violation.is_none(), sleep.violation.is_none());
        assert!(!none.truncated && !sleep.truncated);
    }
}
