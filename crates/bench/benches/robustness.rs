//! Bench for experiment E7: failure/attack sweeps over the compared
//! systems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use swn_harness::e7_robustness::{build_graph, Params, System};
use swn_topology::robustness::{removal_mask, sweep, FailureMode};

fn bench_sweeps(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_robustness");
    group.sample_size(10);
    let p = Params::quick();
    for sys in System::ALL {
        let g = build_graph(sys, &p, 21);
        group.bench_with_input(BenchmarkId::new("random_sweep", sys.label()), &g, |b, g| {
            b.iter(|| black_box(sweep(g, &p.fractions, FailureMode::Random, p.pairs, 7)));
        });
    }
    group.finish();
}

fn bench_masks(c: &mut Criterion) {
    let p = Params::quick();
    let g = build_graph(System::Chord, &p, 21);
    c.bench_function("e7_robustness/targeted_mask", |b| {
        b.iter(|| black_box(removal_mask(&g, 0.3, FailureMode::TargetedHighestDegree, 3)));
    });
}

criterion_group!(benches, bench_sweeps, bench_masks);
criterion_main!(benches);
