//! `--trace-out` support: run one *representative traced scenario* per
//! experiment id with a [`JsonlSink`] attached and stream the
//! observation records to a file, ready for the `report` subcommand
//! (see [`crate::report`]).
//!
//! The experiment tables aggregate hundreds of trials; tracing all of
//! them would bury the signal. Instead each id maps to the single
//! scenario its table is *about*: convergence ids trace one
//! adversarial-start run to the ring (phase transitions included),
//! stable-state ids trace an observed window on a warmed network, and
//! the churn ids trace a join/leave recovery span.

use swn_core::config::ProtocolConfig;
use swn_core::id::{evenly_spaced_ids, NodeId};
use swn_sim::init::{generate, InitialTopology};
use swn_sim::obs::JsonlSink;
use swn_sim::{churn, convergence::run_to_ring};

use crate::testbed::stabilized_network;

/// Scale knobs for a traced scenario.
#[derive(Clone, Debug)]
pub struct TraceCfg {
    /// Network size.
    pub n: usize,
    /// Sampling interval for `Round`/`PhaseTimes` records.
    pub sample_every: u64,
    /// Warmup rounds before stable-state / churn scenarios (unobserved).
    pub warmup: u64,
    /// Observed window for stable-state scenarios.
    pub window: u64,
    /// Round budget for convergence / recovery scenarios.
    pub budget: u64,
    /// Seed.
    pub seed: u64,
}

impl TraceCfg {
    /// The preset matching the experiments' `--quick` flag.
    pub fn preset(quick: bool) -> Self {
        if quick {
            TraceCfg {
                n: 64,
                sample_every: 8,
                warmup: 400,
                window: 200,
                budget: 20_000,
                seed: 42,
            }
        } else {
            TraceCfg {
                n: 256,
                sample_every: 32,
                warmup: 2_000,
                window: 600,
                budget: 50_000,
                seed: 42,
            }
        }
    }
}

/// Runs the traced scenario for `id` at the `quick`/full preset scale,
/// streaming JSONL records to `path`.
pub fn write_trace(id: &str, quick: bool, path: &std::path::Path) -> std::io::Result<()> {
    write_trace_cfg(id, &TraceCfg::preset(quick), path)
}

/// [`write_trace`] with explicit scale knobs (the testable core).
pub fn write_trace_cfg(id: &str, cfg: &TraceCfg, path: &std::path::Path) -> std::io::Result<()> {
    let sink = Box::new(JsonlSink::create(path)?);
    let pcfg = ProtocolConfig::default();
    match id {
        // Convergence-flavored ids: one adversarial start driven to the
        // sorted ring, with `lcc`/`list`/`ring` transitions on the
        // timeline.
        "e1" | "a1" | "e8" => {
            let ids = evenly_spaced_ids(cfg.n);
            let mut net = generate(
                InitialTopology::RandomSparse { extra: 2 },
                &ids,
                pcfg,
                cfg.seed,
            )
            .into_network(cfg.seed);
            net.attach_sink(sink, cfg.sample_every);
            let _ = run_to_ring(&mut net, cfg.budget);
            net.detach_sink();
        }
        // Join recovery: a newcomer in an interior gap, with the `join`
        // span bracketing its integration.
        "e5" => {
            let mut net = stabilized_network(cfg.n, pcfg, cfg.seed, cfg.warmup);
            net.attach_sink(sink, cfg.sample_every);
            let ids = net.ids();
            let new_id = NodeId::from_bits(ids[3].bits() / 2 + ids[4].bits() / 2);
            let _ = churn::join(&mut net, new_id, ids[0], cfg.budget);
            net.detach_sink();
        }
        // Leave recovery (e7 additionally removes a second victim — a
        // small storm with two spans).
        "e6" | "e7" => {
            let mut net = stabilized_network(cfg.n, pcfg, cfg.seed, cfg.warmup);
            net.attach_sink(sink, cfg.sample_every);
            let victim = net.ids()[cfg.n / 2];
            let _ = churn::leave(&mut net, victim, cfg.budget);
            if id == "e7" {
                let victim = net.ids()[cfg.n / 4];
                let _ = churn::leave(&mut net, victim, cfg.budget);
            }
            net.detach_sink();
        }
        // Fault injection: a crash shock plus a sustained loss window on
        // the warmed network, watched to re-stabilization — the trace
        // carries the `Fault` events (crashes, restarts, the loss window
        // opening), the `recovery` span and the watchdog's `Verdict`.
        "e10" => {
            let mut net = stabilized_network(cfg.n, pcfg, cfg.seed, cfg.warmup);
            net.attach_sink(sink, cfg.sample_every);
            let fault_round = net.round() + 1;
            let ids = net.ids();
            let mut plan = swn_sim::faults::FaultPlan::new(cfg.seed ^ 0xfa17)
                .with_drop(fault_round, fault_round + cfg.budget, 0.05)
                .with_perturbation(fault_round, (cfg.n / 10).max(2));
            for k in 1..=3usize {
                plan = plan.with_crash(fault_round, ids[k * ids.len() / 4], 10);
            }
            net.attach_faults(plan);
            // Land the fault before watching: the watchdog short-circuits
            // on an already-sorted ring.
            net.step();
            let _ = swn_sim::faults::watch_recovery(&mut net, cfg.budget);
            net.detach_faults();
            net.detach_sink();
        }
        // Chaos: an adversarial behavior window (selective-forward
        // refusal) plus a durable crash on the warmed network, watched
        // to re-stabilization — the trace carries the behavior's drops,
        // the snapshot restore and the watchdog's `Verdict`.
        "e12" => {
            let mut net = stabilized_network(cfg.n, pcfg, cfg.seed, cfg.warmup);
            net.attach_sink(sink, cfg.sample_every);
            let fault_round = net.round() + 1;
            let ids = net.ids();
            let plan = swn_sim::faults::FaultPlan::new(cfg.seed ^ 0xe12a)
                .with_behavior(
                    fault_round,
                    fault_round + 12,
                    ids[ids.len() / 3],
                    swn_sim::faults::Misbehavior::SelectiveForward {
                        kinds: vec![swn_core::message::MessageKind::Lin],
                        p: 1.0,
                    },
                )
                .with_durable_crash(fault_round, ids[ids.len() / 2], 8, fault_round);
            net.attach_faults(plan);
            net.step();
            let _ = swn_sim::faults::watch_recovery(&mut net, cfg.budget);
            net.detach_faults();
            net.detach_sink();
        }
        // Stable-state ids (distribution, routing, probing, overhead,
        // ablations, extension): an observed window on a warmed network —
        // the fixture their measurements run on.
        _ => {
            let mut net = stabilized_network(cfg.n, pcfg, cfg.seed, cfg.warmup);
            net.attach_sink(sink, cfg.sample_every);
            net.run(cfg.window);
            net.detach_sink();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::render_report;

    fn tiny() -> TraceCfg {
        TraceCfg {
            n: 16,
            sample_every: 4,
            warmup: 40,
            window: 40,
            budget: 5_000,
            seed: 7,
        }
    }

    fn trace_and_report(id: &str) -> String {
        let path = std::env::temp_dir().join(format!("swn_runlog_test_{id}.jsonl"));
        write_trace_cfg(id, &tiny(), &path).expect("trace written");
        let text = std::fs::read_to_string(&path).expect("readable");
        let report = render_report(&text).expect("report renders");
        let _ = std::fs::remove_file(&path);
        report
    }

    #[test]
    fn convergence_trace_reports_the_full_timeline() {
        let report = trace_and_report("e1");
        assert!(report.contains("ring@"), "ring milestone: {report}");
        assert!(report.contains("phase-time breakdown"), "{report}");
        assert!(report.contains("latency (rounds"), "{report}");
        assert!(report.contains("lrl length"), "{report}");
    }

    #[test]
    fn churn_traces_report_recovery_spans() {
        let join = trace_and_report("e5");
        assert!(join.contains("span join"), "{join}");
        let leave = trace_and_report("e6");
        assert!(leave.contains("span leave"), "{leave}");
    }

    #[test]
    fn fault_trace_reports_injections_and_verdict() {
        let report = trace_and_report("e10");
        assert!(report.contains("fault crash@"), "{report}");
        assert!(report.contains("fault restart@"), "{report}");
        assert!(report.contains("fault perturb@"), "{report}");
        assert!(report.contains("fault drop_window@"), "{report}");
        assert!(report.contains("span recovery"), "{report}");
        assert!(report.contains("verdict recovered@"), "{report}");
    }

    #[test]
    fn stable_window_trace_reports_message_mix() {
        let report = trace_and_report("e9");
        assert!(report.contains("message-kind mix"), "{report}");
        assert!(report.contains("totals: "), "{report}");
    }
}
