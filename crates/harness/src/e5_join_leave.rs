//! **E5/E6 — Join and leave recovery in O(ln^(2+ε) n) steps**
//! (Theorem 4.24).
//!
//! E5 (join): a new node with one arbitrary contact is integrated; we
//! count the distinct nodes that forward its identifier in `lin`
//! messages (its integration path — the paper's "steps") and the rounds
//! until the sorted ring holds again.
//!
//! E6 (leave): an interior node vanishes; we count rounds to recovery and
//! the *excess* messages over the steady-state baseline rate (total
//! messages minus rate×rounds), since the protocol's regular-action
//! chatter continues regardless.
//!
//! Theorem 4.24 is a stable-state statement, so both experiments run on
//! the harmonic-seeded stationary fixture
//! ([`crate::testbed::harmonic_network`]). Shape to verify: both metrics
//! grow polylogarithmically in n (fit exponent of ln^e n stays small),
//! not linearly.

use crate::table::{f2, mean, polylog_exponent, Table};
use crate::testbed::harmonic_network;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use swn_core::config::ProtocolConfig;
use swn_core::id::NodeId;
use swn_sim::churn::{join, leave_random};
use swn_sim::parallel::run_trials;

/// Parameters for E5/E6.
#[derive(Clone, Debug)]
pub struct Params {
    /// Sizes to sweep.
    pub sizes: Vec<usize>,
    /// Trials per size.
    pub trials: usize,
    /// Round budget per recovery.
    pub max_rounds: u64,
    /// Protocol ε.
    pub epsilon: f64,
}

impl Params {
    /// Full-scale run.
    pub fn full() -> Self {
        Params {
            sizes: vec![128, 256, 512, 1024, 2048],
            trials: 20,
            max_rounds: 500_000,
            epsilon: 0.1,
        }
    }

    /// Reduced scale.
    pub fn quick() -> Self {
        Params {
            sizes: vec![64, 128, 256],
            trials: 6,
            max_rounds: 100_000,
            epsilon: 0.1,
        }
    }
}

/// Aggregated recovery metrics at one size.
#[derive(Clone, Debug)]
pub struct ChurnPoint {
    /// Network size.
    pub n: usize,
    /// Mean recovery rounds over trials.
    pub mean_rounds: f64,
    /// Worst recovery rounds over trials.
    pub max_rounds: f64,
    /// Join: mean tracked (integration-path) messages. Leave: mean excess
    /// messages over the steady-state rate.
    pub mean_steps: f64,
    /// Every trial re-established the sorted ring.
    pub all_recovered: bool,
}

/// Measures joins at every size.
pub fn measure_joins(p: &Params) -> Vec<ChurnPoint> {
    p.sizes
        .iter()
        .map(|&n| {
            let reports = run_trials(p.trials, |t| {
                let seed = t as u64 * 31 + n as u64;
                let cfg = ProtocolConfig::with_epsilon(p.epsilon);
                let mut net = harmonic_network(n, cfg, seed);
                let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
                let ids = net.ids();
                let contact = ids[rng.random_range(0..ids.len())];
                // Fresh id in a random inter-node gap.
                let slot = rng.random_range(0..ids.len() - 1);
                let lo = ids[slot].bits();
                let hi = ids[slot + 1].bits();
                let new_id = NodeId::from_bits(lo + (hi - lo) / 2);
                join(&mut net, new_id, contact, p.max_rounds)
            });
            ChurnPoint {
                n,
                mean_rounds: mean(
                    &reports
                        .iter()
                        .filter_map(|r| r.rounds.map(|x| x as f64))
                        .collect::<Vec<_>>(),
                ),
                max_rounds: reports
                    .iter()
                    .filter_map(|r| r.rounds.map(|x| x as f64))
                    .fold(0.0, f64::max),
                mean_steps: mean(
                    &reports
                        .iter()
                        .map(|r| r.path_nodes as f64)
                        .collect::<Vec<_>>(),
                ),
                all_recovered: reports
                    .iter()
                    .all(swn_sim::churn::RecoveryReport::recovered),
            }
        })
        .collect()
}

/// Measures leaves at every size.
pub fn measure_leaves(p: &Params) -> Vec<ChurnPoint> {
    p.sizes
        .iter()
        .map(|&n| {
            let reports = run_trials(p.trials, |t| {
                let seed = t as u64 * 37 + n as u64;
                let cfg = ProtocolConfig::with_epsilon(p.epsilon);
                let mut net = harmonic_network(n, cfg, seed);
                // Steady-state message rate from a pre-leave window.
                let window = 20u64;
                net.run(window);
                let rate = net
                    .trace()
                    .sent_in_last(usize::try_from(window).expect("window fits usize"))
                    as f64
                    / window as f64;
                let (_, rep) = leave_random(&mut net, seed ^ 0xdead, p.max_rounds);
                let rounds = rep.rounds.unwrap_or(p.max_rounds) as f64;
                let excess = (rep.messages as f64 - rate * rounds).max(0.0);
                (rep.rounds, rounds, excess)
            });
            ChurnPoint {
                n,
                mean_rounds: mean(
                    &reports
                        .iter()
                        .filter(|(r, _, _)| r.is_some())
                        .map(|(_, rounds, _)| *rounds)
                        .collect::<Vec<_>>(),
                ),
                max_rounds: reports
                    .iter()
                    .filter(|(r, _, _)| r.is_some())
                    .map(|(_, rounds, _)| *rounds)
                    .fold(0.0, f64::max),
                mean_steps: mean(&reports.iter().map(|(_, _, e)| *e).collect::<Vec<_>>()),
                all_recovered: reports.iter().all(|(r, _, _)| r.is_some()),
            }
        })
        .collect()
}

fn render(title: &str, claim: &str, steps_label: &str, points: &[ChurnPoint]) -> Table {
    let mut t = Table::new(
        title,
        claim,
        &[
            "n",
            "ok",
            "rounds mean",
            "rounds max",
            steps_label,
            "ln^2.1 n",
        ],
    );
    for pt in points {
        t.push_row(vec![
            pt.n.to_string(),
            if pt.all_recovered { "yes" } else { "NO" }.to_string(),
            f2(pt.mean_rounds),
            f2(pt.max_rounds),
            f2(pt.mean_steps),
            f2((pt.n as f64).ln().powf(2.1)),
        ]);
    }
    // Fit on recovery rounds: the steps column is informative per size but
    // accumulates across the re-send waves of the regular action, so the
    // clean scaling signal is the round count.
    let pts: Vec<(f64, f64)> = points
        .iter()
        .map(|pt| (pt.n as f64, pt.mean_rounds.max(1.0)))
        .collect();
    if let Some(e) = polylog_exponent(&pts) {
        t.push_row(vec![
            "fit".to_string(),
            "-".to_string(),
            f2(e),
            "-".to_string(),
            "-".to_string(),
            "rounds ~ ln^e n".to_string(),
        ]);
    }
    t
}

/// Runs E5 (join) and renders the table.
pub fn run_join(p: &Params) -> Table {
    render(
        "E5  Join integration cost vs n",
        "a node joining at an arbitrary contact integrates in O(ln^(2+eps) n) steps (Thm 4.24)",
        "path nodes",
        &measure_joins(p),
    )
}

/// Runs E6 (leave) and renders the table.
pub fn run_leave(p: &Params) -> Table {
    render(
        "E6  Leave recovery cost vs n",
        "the ring heals after an interior departure in O(ln^(2+eps) n) steps (Thm 4.24)",
        "excess msgs",
        &measure_leaves(p),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joins_recover_at_all_quick_sizes() {
        let pts = measure_joins(&Params::quick());
        for pt in &pts {
            assert!(pt.all_recovered, "n={} join failed", pt.n);
            assert!(pt.mean_steps > 0.0, "tracking must see the new id");
        }
    }

    #[test]
    fn join_path_shorter_than_contact_distance_and_shortcut_helps() {
        // At small n the asymptotic polylog has not separated from the
        // ln-factor constants yet (Kleinberg's bound carries a 1/ln n
        // halving rate), so the robust small-scale shape checks are:
        // (a) the integration path is well below the worst-case line
        //     distance (n), and
        // (b) disabling the lrl shortcut (ablation A1's plain
        //     linearization) makes the path longer.
        let n = 256;
        // The per-join path length is heavy-tailed; 8 trials can invert
        // the shortcut comparison by luck of the contact draw. 48 trials
        // separate the means cleanly.
        let trials = 48;
        let run_with = |shortcut: bool| -> f64 {
            let reports = run_trials(trials, |t| {
                let seed = t as u64 * 131 + 5;
                let cfg = ProtocolConfig {
                    epsilon: 0.1,
                    lrl_shortcut: shortcut,
                    probe_period: 1,
                };
                let mut net = harmonic_network(n, cfg, seed);
                let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
                let ids = net.ids();
                let contact = ids[rng.random_range(0..ids.len())];
                let slot = rng.random_range(0..ids.len() - 1);
                let new_id = NodeId::from_bits(
                    ids[slot].bits() + (ids[slot + 1].bits() - ids[slot].bits()) / 2,
                );
                let rep = join(&mut net, new_id, contact, 100_000);
                assert!(rep.recovered());
                rep.path_nodes as f64
            });
            mean(&reports)
        };
        let with = run_with(true);
        let without = run_with(false);
        assert!(
            with < n as f64 / 2.0,
            "path {with} not sublinear in n = {n}"
        );
        assert!(
            with < without,
            "shortcuts must shorten the integration path: {with} vs {without}"
        );
    }

    #[test]
    fn leaves_recover_at_all_quick_sizes() {
        let pts = measure_leaves(&Params::quick());
        for pt in &pts {
            assert!(pt.all_recovered, "n={} leave failed", pt.n);
        }
    }

    #[test]
    fn tables_render() {
        let mut p = Params::quick();
        p.sizes = vec![64];
        p.trials = 2;
        assert!(run_join(&p).render().contains("E5"));
        assert!(run_leave(&p).render().contains("E6"));
    }
}
