//! The simulated network: node table, channels and the round loop.
//!
//! A **round** delivers every eligible message (per the delivery policy)
//! and runs every node's regular action once, in a random node order.
//! Messages sent during a round become eligible in the next one, so
//! receipt strictly follows transmission and one round of the simulator
//! corresponds to one unit of the paper's asynchronous time (every enabled
//! action executes — weak fairness; every old message is offered for
//! delivery — fair receipt).
//!
//! Under [`ScheduleMode::ActiveSet`] the round activates only the nodes
//! the scheduler put on the agenda (pending mail, an unverified local
//! state, a churn/fault touch) instead of every live node — see
//! [`crate::sched`] for the settlement certificate and the quiescence
//! invariant. The default [`ScheduleMode::FullScan`] is the paper's
//! schedule and stays byte-identical to the pre-scheduler engine.
//!
//! The whole run is deterministic in the seed: the same seed, initial
//! state and policy replay the exact same computation.

use crate::channel::{Channel, DeliveryPolicy};
use crate::faults::{sybil_ids, Fate, FaultInjector, FaultPlan};
use crate::metrics::NetMetrics;
use crate::obs::causal::{CascadeReport, CauseTag};
use crate::obs::{Event, ObsState, Sink};
use crate::sched::{SchedState, ScheduleMode};
use crate::slots::SlotIndex;
use crate::trace::{RoundStats, Trace};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use swn_core::id::{Extended, NodeId};
use swn_core::message::Message;
use swn_core::node::Node;
use swn_core::outbox::Outbox;
use swn_core::views::{NetView, Snapshot};

/// A simulated asynchronous message-passing network.
#[derive(Debug)]
pub struct Network {
    nodes: Vec<Option<Node>>,
    channels: Vec<Channel>,
    index: SlotIndex,
    free: Vec<usize>,
    policy: DeliveryPolicy,
    rng: StdRng,
    round: u64,
    trace: Trace,
    outbox: Outbox,
    tracked: Option<NodeId>,
    tracked_forwarders: std::collections::BTreeSet<NodeId>,
    // Per-round scratch buffers, reused across `step` calls so the round
    // loop allocates nothing in steady state. Taken with `mem::take`
    // while in use and put back afterwards.
    order_buf: Vec<usize>,
    inbox_buf: Vec<Message>,
    // Observability: present iff a sink is attached (`attach_sink`).
    // `step` dispatches on presence to a separate monomorphization of the
    // round loop, so the unobserved network pays one pointer of space and
    // one well-predicted branch per round — nothing in the loop body.
    obs: Option<Box<ObsState>>,
    // Fault injection: present iff a plan is attached (`attach_faults`).
    // Same dispatch scheme as `obs` — a second const-generic arm keeps
    // the fault-free round loop byte-identical.
    faults: Option<Box<FaultInjector>>,
    // Active-set scheduler: present iff `ScheduleMode::ActiveSet` is
    // selected (`set_schedule_mode`). Third const-generic arm, same
    // zero-cost dispatch scheme as `obs` and `faults`.
    sched: Option<Box<SchedState>>,
    // Live metrics: present iff attached (`attach_metrics`). Unlike the
    // const-generic observers this is a plain runtime branch, taken
    // once per round after the loop body — invisible next to the
    // round's O(n) work on every engine arm.
    metrics: Option<Box<NetMetrics>>,
    seed: u64,
}

impl Network {
    /// Builds a network over the given nodes with the default
    /// ([`DeliveryPolicy::Immediate`]) policy.
    pub fn new(nodes: Vec<Node>, seed: u64) -> Self {
        Self::with_policy(nodes, seed, DeliveryPolicy::Immediate)
    }

    /// Builds a network with an explicit delivery policy.
    ///
    /// # Panics
    /// Panics on duplicate node ids or invalid policy/config parameters.
    pub fn with_policy(nodes: Vec<Node>, seed: u64, policy: DeliveryPolicy) -> Self {
        policy.validate().expect("invalid delivery policy");
        let mut pairs = Vec::with_capacity(nodes.len());
        for (i, n) in nodes.iter().enumerate() {
            n.config().validate().expect("invalid protocol config");
            pairs.push((n.id(), i));
        }
        // Bulk build: one sort instead of n splices, so million-node
        // constructions stay O(n log n) (linear for sorted generators).
        let index = match SlotIndex::from_pairs(pairs) {
            Ok(idx) => idx,
            Err(dup) => panic!("duplicate node id {dup:?}"),
        };
        let channels = vec![Channel::new(); nodes.len()];
        Network {
            nodes: nodes.into_iter().map(Some).collect(),
            channels,
            index,
            free: Vec::new(),
            policy,
            rng: StdRng::seed_from_u64(seed),
            round: 0,
            trace: Trace::new(),
            outbox: Outbox::new(),
            tracked: None,
            tracked_forwarders: Default::default(),
            order_buf: Vec::new(),
            inbox_buf: Vec::new(),
            obs: None,
            faults: None,
            sched: None,
            metrics: None,
            seed,
        }
    }

    /// The seed this network was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Attaches an observation sink: subsequent rounds run the
    /// instrumented loop, recording latency/depth/forget-age/lrl-length
    /// histograms online and emitting a `Round` + `PhaseTimes` record
    /// every `sample_every` rounds (clamped to ≥ 1). Emits a `RunMeta`
    /// record immediately. Replaces (and drops) any previous sink.
    ///
    /// Observers read, never mutate, and consume no RNG: attaching a sink
    /// changes nothing about the computation — state and trace stay
    /// bit-for-bit identical (pinned by the golden-trace suite).
    pub fn attach_sink(&mut self, sink: Box<dyn Sink>, sample_every: u64) {
        let mut state = Box::new(ObsState::new(sink, sample_every));
        state.emit(Event::RunMeta {
            n: self.index.len(),
            seed: self.seed,
            policy: format!("{:?}", self.policy),
            sample_every: state.sample_every,
            round: self.round,
        });
        self.obs = Some(state);
    }

    /// Detaches the sink, emitting a final `Summary` record (run totals
    /// plus the four histograms) and flushing. Returns the sink, or
    /// `None` when nothing was attached.
    pub fn detach_sink(&mut self) -> Option<Box<dyn Sink>> {
        let mut state = self.obs.take()?;
        let summary = state.summary(self.round, self.trace.total_sent());
        state.emit(summary);
        state.sink.flush();
        Some(state.sink)
    }

    /// True when an observation sink is attached.
    pub fn has_sink(&self) -> bool {
        self.obs.is_some()
    }

    /// Attaches a fault plan: subsequent rounds run the fault-injecting
    /// monomorphization of the round loop, which applies the plan's
    /// crashes/restarts/perturbations at round start and consults the
    /// injector for every send's fate. Replaces any previous injector.
    ///
    /// The injector draws from its **own** RNG stream (seeded from
    /// `plan.seed`), and only inside active windows — attaching an
    /// empty plan replays the fault-free computation bit-for-bit.
    ///
    /// # Panics
    /// Panics when [`FaultPlan::validate`] rejects the plan.
    pub fn attach_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(Box::new(FaultInjector::new(plan)));
    }

    /// Attaches a pre-built injector — e.g. one rebuilt from a persisted
    /// checkpoint ([`FaultInjector::from_state`]) — replacing any
    /// previous one. The injector resumes mid-plan: its RNG cursor, down
    /// map and drop log continue from wherever the checkpoint left off.
    pub fn attach_injector(&mut self, inj: FaultInjector) {
        self.faults = Some(Box::new(inj));
    }

    /// Sets the round counter (persist restore only: a restored network
    /// must resume at the checkpointed round or every plan window would
    /// shift).
    pub(crate) fn set_round(&mut self, round: u64) {
        self.round = round;
    }

    /// Detaches the fault injector (subsequent rounds are fault-free),
    /// returning it so callers can inspect the drop log. `None` when
    /// nothing was attached.
    pub fn detach_faults(&mut self) -> Option<Box<FaultInjector>> {
        self.faults.take()
    }

    /// True when a fault injector is attached.
    pub fn has_faults(&self) -> bool {
        self.faults.is_some()
    }

    /// The attached fault injector, if any — the watchdog reads its
    /// drop log for root-cause analysis.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.faults.as_deref()
    }

    /// Attaches a live-metrics handle bundle ([`NetMetrics::register`]):
    /// every subsequent round publishes round/send/delivery totals and —
    /// under [`ScheduleMode::ActiveSet`] — the agenda size,
    /// quiescent-round count and scheduler wakeups into the bundle's
    /// registry series. Metrics are observational: publishing consumes
    /// no RNG and cannot perturb the computation. Replaces any previous
    /// bundle.
    pub fn attach_metrics(&mut self, metrics: NetMetrics) {
        self.metrics = Some(Box::new(metrics));
    }

    /// Detaches the live-metrics bundle (subsequent rounds publish
    /// nothing), returning it. `None` when nothing was attached.
    pub fn detach_metrics(&mut self) -> Option<NetMetrics> {
        self.metrics.take().map(|b| *b)
    }

    /// True when a live-metrics bundle is attached.
    pub fn has_metrics(&self) -> bool {
        self.metrics.is_some()
    }

    /// Opens a causal cascade window at the current round: subsequent
    /// deliveries accumulate into a fresh window account (depth
    /// histogram, width profile, per-kind fan-out — see
    /// [`CascadeReport`]). No-op without an attached sink: causal ids
    /// only exist on the instrumented path.
    pub fn cascade_begin(&mut self) {
        let round = self.round;
        if let Some(o) = self.obs.as_mut() {
            o.causal.begin_window(round);
        }
    }

    /// Closes the current cascade window, returning its report and
    /// opening a fresh one. `None` without an attached sink.
    pub fn cascade_take(&mut self) -> Option<CascadeReport> {
        let round = self.round;
        let o = self.obs.as_mut()?;
        Some(o.causal.take_window(round))
    }

    /// Selects the round schedule. [`ScheduleMode::FullScan`] (the
    /// default) runs every live node every round; switching to it drops
    /// any scheduler state. [`ScheduleMode::ActiveSet`] starts the
    /// active-set engine with every live node on the agenda, unsettled —
    /// the scheduler earns its certificates from scratch, so switching
    /// is always safe, at the cost of one full round of verification.
    ///
    /// The two modes are *semantically* equivalent (both converge to the
    /// same sorted ring — pinned by `tests/active_set_prop.rs`) but not
    /// bit-for-bit: the active set changes which nodes act, hence the
    /// RNG schedule, and settled nodes pause their lrl walk, ages and
    /// probe ticks (see [`crate::sched`]).
    pub fn set_schedule_mode(&mut self, mode: ScheduleMode) {
        match mode {
            ScheduleMode::FullScan => {
                self.sched = None;
            }
            ScheduleMode::ActiveSet => {
                let mut st = Box::new(SchedState::new(self.nodes.len()));
                for &slot in self.index.sorted_slots() {
                    st.schedule(slot);
                }
                self.sched = Some(st);
            }
        }
    }

    /// The active schedule mode.
    pub fn schedule_mode(&self) -> ScheduleMode {
        if self.sched.is_some() {
            ScheduleMode::ActiveSet
        } else {
            ScheduleMode::FullScan
        }
    }

    /// Nodes scheduled to act in the next round: an upper bound under
    /// [`ScheduleMode::ActiveSet`] (agenda entries whose slot has died
    /// are filtered at round start), every live node under
    /// [`ScheduleMode::FullScan`].
    pub fn active_count(&self) -> usize {
        match self.sched.as_ref() {
            Some(s) => s.active_len(),
            None => self.index.len(),
        }
    }

    /// True when the next round is provably a no-op on node and channel
    /// state: active-set mode with an empty agenda. Always false under
    /// [`ScheduleMode::FullScan`].
    pub fn is_quiescent(&self) -> bool {
        self.sched.as_ref().is_some_and(|s| s.active_len() == 0)
    }

    /// Emits an event to the attached sink, if any (no-op otherwise).
    /// Used by the convergence and churn drivers for timeline events
    /// (phase transitions, recovery spans).
    pub fn emit(&mut self, event: Event) {
        if let Some(o) = self.obs.as_mut() {
            o.emit(event);
        }
    }

    /// Starts counting messages that carry `id` in their payload (see
    /// [`RoundStats::tracked_sent`]) and recording the distinct nodes that
    /// forward it in `lin` messages — the "number of steps" metric of
    /// Theorem 4.24: how far a joining node's identifier travels until it
    /// reaches its sorted position. Pass `None` to stop tracking (the
    /// forwarder set is reset on every call).
    pub fn track_id(&mut self, id: Option<NodeId>) {
        self.tracked = id;
        self.tracked_forwarders.clear();
    }

    /// Distinct nodes (other than the tracked node itself) that forwarded
    /// the tracked identifier in a `lin` message since tracking started —
    /// the length of the integration path.
    pub fn tracked_forwarder_count(&self) -> usize {
        self.tracked_forwarders.len()
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The metrics trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Takes the metrics trace accumulated so far, leaving an empty one
    /// behind. Every round appends a [`RoundStats`] row (~230 bytes), so
    /// long-lived large-n runs — a million-node soak, a quiescent
    /// network idling for millions of rounds — drain the trace
    /// periodically instead of letting it grow without bound. Taking the
    /// trace changes nothing about the computation: state, RNG stream
    /// and future rounds are unaffected.
    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    /// The live node with the given id.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.index.get(id).and_then(|i| self.nodes[i].as_ref())
    }

    /// All live node ids in ascending order.
    pub fn ids(&self) -> Vec<NodeId> {
        self.index.ids().collect()
    }

    /// Preloads a message into a node's channel (for adversarial initial
    /// states with in-flight garbage). No-op if the destination is absent.
    pub fn preload(&mut self, dest: NodeId, msg: Message) {
        if let Some(i) = self.index.get(dest) {
            // Enqueue as "already in flight" so it is deliverable in the
            // very next round.
            self.channels[i].push(msg, self.round.saturating_sub(1));
            if let Some(sched) = self.sched.as_mut() {
                sched.schedule(i);
            }
        }
    }

    /// Executes one round; returns its stats (also appended to the trace).
    pub fn step(&mut self) -> RoundStats {
        // Dispatch to one of eight monomorphizations: with no sink, no
        // fault plan and no scheduler attached the all-false copy runs,
        // in which every observer/injector/scheduler branch below is
        // constant-folded away — it compiles to exactly the
        // pre-observability round loop (guarded by the stepengine bench's
        // instrumented-vs-noop pair).
        match (
            self.obs.is_some(),
            self.faults.is_some(),
            self.sched.is_some(),
        ) {
            (false, false, false) => self.step_impl::<false, false, false>(false),
            (true, false, false) => self.step_impl::<true, false, false>(false),
            (false, true, false) => self.step_impl::<false, true, false>(false),
            (true, true, false) => self.step_impl::<true, true, false>(false),
            (false, false, true) => self.step_impl::<false, false, true>(false),
            (true, false, true) => self.step_impl::<true, false, true>(false),
            (false, true, true) => self.step_impl::<false, true, true>(false),
            (true, true, true) => self.step_impl::<true, true, true>(false),
        }
    }

    /// The reference round with per-message outbox flushing — the
    /// pre-batching engine, kept as the oracle for the flush-equivalence
    /// proptest (see the `tests` module and DESIGN.md §8).
    #[cfg(test)]
    fn step_reference(&mut self) -> RoundStats {
        self.step_impl::<false, false, false>(true)
    }

    fn step_impl<const OBS: bool, const FAULTS: bool, const ACTIVE: bool>(
        &mut self,
        flush_per_message: bool,
    ) -> RoundStats {
        self.round += 1;
        let now = self.round;
        let mut stats = RoundStats::default();

        if FAULTS {
            self.apply_round_faults(now, &mut stats);
        }

        // Phase timers run only on sampled rounds of an observed network;
        // with OBS = false `sample` is constant false and every `timed`
        // call folds to a plain call.
        let sample = OBS
            && self
                .obs
                .as_ref()
                .is_some_and(|o| now.is_multiple_of(o.sample_every));
        // Accumulators in phase order: shuffle, channel, deliver, flush,
        // stats.
        let mut ph = [0u64; 5];

        let mut order = std::mem::take(&mut self.order_buf);
        timed(sample, &mut ph[0], || {
            order.clear();
            if ACTIVE {
                // Drain the agenda, drop slots that died since they were
                // scheduled, and canonicalize to ascending id order so
                // the shuffle below is a pure function of the RNG stream
                // and the *set* of active nodes — never of the order in
                // which scheduling happened to discover them. An empty
                // agenda (quiescence) draws nothing from the RNG.
                let sched = self.sched.as_mut().expect("ACTIVE implies scheduler");
                sched.begin_round(&mut order);
                order.retain(|&s| self.nodes[s].is_some());
                order.sort_unstable_by_key(|&s| self.nodes[s].as_ref().expect("retained").id());
                order.shuffle(&mut self.rng);
            } else {
                // Full scan: every live slot, memcpy'd off the index's
                // incrementally maintained sorted lane.
                order.extend_from_slice(self.index.sorted_slots());
                order.shuffle(&mut self.rng);
            }
        });

        let mut inbox = std::mem::take(&mut self.inbox_buf);
        for &i in &order {
            if self.nodes[i].is_none() {
                continue; // removed earlier in this round by churn callers
            }
            if FAULTS {
                // Crashed nodes sit out entirely: no deliveries, no
                // regular action (sends *to* them die in `flush_outbox`).
                let nid = self.nodes[i].as_ref().expect("checked above").id();
                if self.faults.as_ref().is_some_and(|f| f.is_down(nid)) {
                    continue;
                }
            }
            // The settlement machinery diffs the whole turn (deliveries
            // *and* regular action) against this tuple — reciprocity is
            // mutual, so the far end of every certificate this turn can
            // break is a target in the before- or after-tuple.
            let turn_before = if ACTIVE {
                let n = self.nodes[i].as_ref().expect("checked above");
                Some((n.left(), n.right(), n.ring()))
            } else {
                None
            };
            // Receive actions: all eligible messages, shuffled. The
            // outbox is flushed once per action *batch*, not per message.
            // Flushing consumes no RNG and channel pushes keep their
            // relative order, so every RNG draw and the per-message
            // delivery order match per-message flushing exactly — except
            // that a send to a *departed* destination now clears the
            // sender's dangling pointers after the whole batch ran
            // instead of between handlers. That reordering only exists
            // in churn rounds and is itself a valid atomic-action
            // schedule; `flush_equivalence` in the tests below pins both
            // halves of this claim against the per-message reference.
            if OBS {
                // Both instrumented takes keep the delivery order and
                // RNG stream identical to the detached one (see
                // `take_deliverable_tagged` / `take_deliverable_causal`)
                // and surface each message's enqueue round for the
                // latency histograms; the channel-depth high-water mark
                // is read before draining either way. Only an open
                // cascade window pays for provenance: the causal take
                // drags the `causes` lane along and feeds every delivery
                // to the DAG accounting, while the steady-state path
                // sticks to the cheap (message, enqueued) pairs.
                let obs = self.obs.as_mut().expect("OBS implies observer state");
                let depth = u64::try_from(self.channels[i].len()).unwrap_or(u64::MAX);
                obs.depth_round_max = obs.depth_round_max.max(depth);
                if obs.causal.active {
                    let mut tagged = std::mem::take(&mut obs.tagged);
                    timed(sample, &mut ph[1], || {
                        self.channels[i].take_deliverable_causal(
                            now,
                            self.policy,
                            &mut self.rng,
                            &mut tagged,
                        );
                    });
                    inbox.clear();
                    let obs = self.obs.as_mut().expect("OBS implies observer state");
                    let slot = u32::try_from(i).unwrap_or(u32::MAX);
                    for &(m, enqueued, tag) in &tagged {
                        let lat = now.saturating_sub(enqueued);
                        obs.latency.record(lat);
                        obs.latency_by_kind[m.kind().index()].record(lat);
                        obs.causal.on_delivery(now, slot, tag, m.kind());
                        inbox.push(m);
                    }
                    tagged.clear();
                    obs.tagged = tagged;
                } else {
                    let mut pairs = std::mem::take(&mut obs.pairs);
                    timed(sample, &mut ph[1], || {
                        self.channels[i].take_deliverable_tagged(
                            now,
                            self.policy,
                            &mut self.rng,
                            &mut pairs,
                        );
                    });
                    inbox.clear();
                    let obs = self.obs.as_mut().expect("OBS implies observer state");
                    for &(m, enqueued) in &pairs {
                        let lat = now.saturating_sub(enqueued);
                        obs.latency.record(lat);
                        obs.latency_by_kind[m.kind().index()].record(lat);
                        inbox.push(m);
                    }
                    pairs.clear();
                    obs.pairs = pairs;
                }
            } else {
                self.channels[i].take_deliverable_into(now, self.policy, &mut self.rng, &mut inbox);
            }
            if !inbox.is_empty() {
                stats.links_changed = true;
            }
            timed(sample, &mut ph[2], || {
                for &m in &inbox {
                    stats.count_delivered(m.kind());
                    let node = self.nodes[i].as_mut().expect("checked above");
                    node.on_message(m, &mut self.rng, &mut self.outbox);
                    if OBS && !flush_per_message {
                        // Cumulative send-count boundary: outbox sends
                        // up to here were emitted by the messages
                        // handled so far; `flush_outbox` resolves send
                        // index → handled message from these markers.
                        // Only worth keeping while a window collects.
                        let obs = self.obs.as_mut().expect("OBS implies observer state");
                        if obs.causal.active {
                            obs.causal.bounds.push(self.outbox.sends().len());
                        }
                    }
                    if flush_per_message {
                        self.flush_outbox::<OBS, FAULTS, ACTIVE>(i, now, &mut stats);
                    }
                }
            });
            timed(sample, &mut ph[3], || {
                self.flush_outbox::<OBS, FAULTS, ACTIVE>(i, now, &mut stats);
            });
            // Regular action — skipped for settled nodes under ActiveSet:
            // the verified certificate says it could only re-send
            // fixpoint no-ops, and the lrl walk pauses by design (see
            // `crate::sched`). The handler can silently rewrite link
            // state (sanitation normalizes without emitting events), so
            // compare the link tuple around the call for the dirty flag.
            let run_regular = !ACTIVE
                || !self
                    .sched
                    .as_ref()
                    .expect("ACTIVE implies scheduler")
                    .is_settled(i);
            if run_regular {
                let node = self.nodes[i].as_ref().expect("checked above");
                let links_before = (node.left(), node.right(), node.lrl(), node.ring());
                timed(sample, &mut ph[2], || {
                    let node = self.nodes[i].as_mut().expect("checked above");
                    node.on_regular(&mut self.outbox);
                });
                let node = self.nodes[i].as_ref().expect("checked above");
                if (node.left(), node.right(), node.lrl(), node.ring()) != links_before {
                    stats.links_changed = true;
                }
                timed(sample, &mut ph[3], || {
                    self.flush_outbox::<OBS, FAULTS, ACTIVE>(i, now, &mut stats);
                });
            }
            if ACTIVE {
                self.finish_turn(i, turn_before.expect("set above"));
            }
        }
        inbox.clear();
        self.inbox_buf = inbox;
        self.order_buf = order;

        let t_stats = if sample {
            // lint: allow(determinism) — phase-timer sampling; feeds observability only.
            Some(std::time::Instant::now())
        } else {
            None
        };
        self.trace.push(stats);
        if OBS {
            self.observe_round_end(now, sample, &stats);
        }
        // Live metrics: one well-predicted runtime branch per round (not
        // a const-generic arm), so `attach_metrics` composes with every
        // engine monomorphization and costs nothing detached.
        if self.metrics.is_some() {
            self.publish_round_metrics(&stats);
        }
        if let Some(t0) = t_stats {
            ph[4] = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.emit(Event::PhaseTimes {
                round: now,
                shuffle_ns: ph[0],
                channel_ns: ph[1],
                deliver_ns: ph[2],
                flush_ns: ph[3],
                stats_ns: ph[4],
            });
        }
        stats
    }

    /// End-of-round publish into the attached live-metrics bundle:
    /// totals from the round's stats, and the scheduler's agenda gauge
    /// plus wakeup/quiescence counters when active-set mode is on
    /// (under full scan the agenda gauge reads the live node count).
    fn publish_round_metrics(&mut self, stats: &RoundStats) {
        let Network {
            metrics,
            sched,
            index,
            ..
        } = self;
        let Some(m) = metrics.as_deref() else { return };
        m.rounds.inc();
        m.sent.add(stats.total_sent());
        m.delivered.add(stats.total_delivered());
        match sched.as_deref_mut() {
            Some(s) => {
                let active = u64::try_from(s.active_len()).unwrap_or(u64::MAX);
                m.active_set.set(active);
                m.sched_wakeups.add(s.take_wakeups());
                if active == 0 {
                    m.quiescent_rounds.inc();
                }
            }
            None => {
                m.active_set
                    .set(u64::try_from(index.len()).unwrap_or(u64::MAX));
            }
        }
    }

    /// End-of-round observer bookkeeping (instrumented path only): the
    /// depth high-water histogram every round, and on sampled rounds the
    /// lrl-length scan plus the `Round` record. Reads state the loop
    /// already computed; touches no RNG.
    fn observe_round_end(&mut self, now: u64, sample: bool, stats: &RoundStats) {
        let Some(obs) = self.obs.as_mut() else { return };
        let depth_max = obs.depth_round_max;
        obs.depth.record(depth_max);
        obs.depth_round_max = 0;
        if !sample {
            return;
        }
        // lrl ring length: the circular rank distance from each node to
        // its token endpoint, 0 when the token sits at its origin. The
        // scan walks the index's sorted lane (ascending id order, always
        // current) and rank-resolves endpoints by binary search.
        let mut scratch = std::mem::take(&mut obs.lrl_scratch);
        scratch.clear();
        for &slot in self.index.sorted_slots() {
            if let Some(n) = &self.nodes[slot] {
                scratch.push((n.id(), n.lrl()));
            }
        }
        let n_live = scratch.len();
        let obs = self.obs.as_mut().expect("present above");
        for (rank_a, &(_, lrl)) in scratch.iter().enumerate() {
            if let Ok(rank_b) = scratch.binary_search_by_key(&lrl, |&(id, _)| id) {
                let d = rank_a.abs_diff(rank_b);
                obs.lrl_len
                    .record(u64::try_from(d.min(n_live - d)).unwrap_or(u64::MAX));
            }
        }
        scratch.clear();
        obs.lrl_scratch = scratch;
        obs.emit(Event::Round {
            round: now,
            sent: stats.sent.to_vec(),
            delivered: stats.total_delivered(),
            dropped: stats.dropped(),
            bounced: stats.bounced,
            depth_max,
        });
    }

    /// Runs rounds until `pred` holds on a borrowed view of the state or
    /// `max_rounds` is hit. Returns the number of the first satisfying
    /// round (counting from the call), or `None` on timeout. The
    /// predicate is evaluated before the first step, so an
    /// already-satisfying state returns `Some(0)`.
    pub fn run_until<F>(&mut self, max_rounds: u64, mut pred: F) -> Option<u64>
    where
        F: FnMut(&NetView<'_>) -> bool,
    {
        if pred(&self.view()) {
            return Some(0);
        }
        for k in 1..=max_rounds {
            self.step();
            if pred(&self.view()) {
                return Some(k);
            }
        }
        None
    }

    /// Runs exactly `rounds` rounds.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// A frozen copy of the global state (nodes + channel contents).
    pub fn snapshot(&self) -> Snapshot {
        let mut nodes = Vec::with_capacity(self.index.len());
        let mut channels = Vec::with_capacity(self.index.len());
        for i in self.index.slots_by_id() {
            if let Some(n) = &self.nodes[i] {
                nodes.push(n.clone());
                channels.push(self.channels[i].messages().copied().collect());
            }
        }
        Snapshot::new(nodes, channels)
    }

    /// A borrowed view of the global state: `&Node`s in ascending id
    /// order plus each node's channel as a `&[Message]` slice. This is
    /// the zero-copy input to `classify_view`, `is_sorted_ring_view` and
    /// the convergence predicates — only two pointer vecs are allocated,
    /// never the state itself.
    pub fn view(&self) -> NetView<'_> {
        let mut nodes = Vec::with_capacity(self.index.len());
        let mut channels = Vec::with_capacity(self.index.len());
        for i in self.index.slots_by_id() {
            if let Some(n) = &self.nodes[i] {
                nodes.push(n);
                channels.push(self.channels[i].as_slice());
            }
        }
        NetView::new(nodes, channels)
    }

    /// Adds a node (churn: join). Returns false if the id already exists.
    ///
    /// # Panics
    /// Panics when the node carries an invalid [`ProtocolConfig`] — the
    /// same check [`Network::with_policy`] performs on the initial nodes,
    /// so churn joins cannot smuggle in configs the constructor rejects.
    ///
    /// [`ProtocolConfig`]: swn_core::config::ProtocolConfig
    pub fn insert_node(&mut self, node: Node) -> bool {
        node.config().validate().expect("invalid protocol config");
        let id = node.id();
        if self.index.contains(id) {
            return false;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.nodes[s] = Some(node);
                self.channels[s].clear();
                s
            }
            None => {
                self.nodes.push(Some(node));
                self.channels.push(Channel::new());
                self.nodes.len() - 1
            }
        };
        self.index.insert(id, slot);
        if self.sched.is_some() {
            self.on_insert_sched(id, slot);
        }
        true
    }

    /// Removes a node (churn: leave/crash). Its channel content vanishes
    /// with it; links pointing at it dangle until their owners detect the
    /// departure. Returns the removed node.
    ///
    /// Tracking state is kept consistent: if the departed node is the
    /// tracked id, tracking stops (its integration path is moot); if it
    /// was recorded as a forwarder, it is forgotten so the Theorem-4.24
    /// step count only ever counts live nodes.
    pub fn remove_node(&mut self, id: NodeId) -> Option<Node> {
        let slot = self.index.remove(id)?;
        if self.tracked == Some(id) {
            self.track_id(None);
        }
        self.tracked_forwarders.remove(&id);
        self.free.push(slot);
        self.channels[slot].clear();
        let node = self.nodes[slot].take();
        if self.sched.is_some() {
            self.on_remove_sched(id, slot);
        }
        node
    }

    /// Sends `msg` to `dest` as an external input (e.g. a joining node's
    /// first announcement).
    pub fn send_external(&mut self, dest: NodeId, msg: Message) -> bool {
        if let Some(i) = self.index.get(dest) {
            self.channels[i].push(msg, self.round);
            if let Some(sched) = self.sched.as_mut() {
                sched.schedule(i);
            }
            true
        } else {
            false
        }
    }

    fn flush_outbox<const OBS: bool, const FAULTS: bool, const ACTIVE: bool>(
        &mut self,
        sender: usize,
        now: u64,
        stats: &mut RoundStats,
    ) {
        // Destructure to split the borrows: the send list stays borrowed
        // from the outbox while routing mutates channels/nodes — no
        // buffer swap, no copy of the sends.
        let Network {
            nodes,
            channels,
            index,
            outbox,
            tracked,
            tracked_forwarders,
            obs,
            faults,
            sched,
            ..
        } = self;
        let sender_id = if FAULTS {
            nodes[sender].as_ref().map(Node::id)
        } else {
            None
        };
        for ev in outbox.drain_events() {
            stats.count_event(&ev);
            if OBS {
                if let swn_core::outbox::ProtocolEvent::LrlForgotten { age } = ev {
                    if let Some(o) = obs.as_mut() {
                        o.forget_age.record(age);
                    }
                }
            }
        }
        // Causal attribution (OBS with an open cascade window only):
        // send `k` of this flush belongs to the handled message whose
        // cumulative-send boundary covers it
        // (`CausalState::tag_for_send`); flushes with no boundaries
        // (regular actions, external inputs) tag everything as cascade
        // roots. Attribution is pure bookkeeping — no RNG, no effect on
        // routing — and outside a window sends take the untagged push,
        // leaving the `causes` lane untouched.
        let causal_active = OBS && obs.as_ref().is_some_and(|o| o.causal.active);
        let mut cause_cursor = 0usize;
        for (k, &(dest, sent_msg)) in outbox.sends().iter().enumerate() {
            let mut msg = sent_msg;
            stats.count_sent(msg.kind());
            if let Some(t) = *tracked {
                if msg.carried_ids().any(|x| x == t) {
                    stats.tracked_sent += 1;
                }
                if msg == Message::Lin(t) {
                    if let Some(n) = nodes[sender].as_ref() {
                        if n.id() != t {
                            tracked_forwarders.insert(n.id());
                        }
                    }
                }
            }
            let mut duplicate = false;
            if FAULTS {
                // The injector decides each send's fate with its own RNG
                // stream (consumed only inside active windows), so the
                // protocol RNG draws are untouched by any plan. A lying
                // sender forges the payload *before* the fate decision,
                // so the drop log and delivery path both see what was
                // actually put on the wire (the destroyed original is
                // logged inside `rewrite`).
                if let (Some(inj), Some(src)) = (faults.as_deref_mut(), sender_id) {
                    let forged = inj.rewrite(now, src, dest, msg);
                    if forged != msg {
                        stats.forged_fault += 1;
                        msg = forged;
                    }
                    match inj.fate(now, src, dest, msg) {
                        Fate::Deliver => {}
                        Fate::Drop => {
                            stats.dropped_fault += 1;
                            continue;
                        }
                        Fate::Duplicate => {
                            stats.duplicated_fault += 1;
                            duplicate = true;
                        }
                    }
                }
            }
            let tag = if causal_active {
                match obs.as_mut() {
                    Some(o) => o.causal.tag_for_send(k, &mut cause_cursor),
                    None => CauseTag::ROOT,
                }
            } else {
                CauseTag::ROOT
            };
            match index.get(dest) {
                Some(j) => {
                    if causal_active {
                        channels[j].push_caused(msg, now, tag);
                        if FAULTS && duplicate {
                            channels[j].push_caused(msg, now, tag);
                        }
                    } else {
                        channels[j].push(msg, now);
                        if FAULTS && duplicate {
                            channels[j].push(msg, now);
                        }
                    }
                    if ACTIVE {
                        // Mail wakes its recipient: settled or not, the
                        // destination must run its receive action next
                        // round.
                        if let Some(s) = sched.as_mut() {
                            s.schedule(j);
                        }
                    }
                }
                None => {
                    // The destination left the network. The sender detects
                    // the departure and clears its dangling pointers. A
                    // `lin` payload naming a *live* node is the potential
                    // sole carrier of that link (linearize moves
                    // identifiers), so it is *bounced* — handed back to
                    // the sender for reprocessing; every other payload is
                    // still stored at its responder and may be dropped
                    // safely. Only the latter counts as a drop.
                    stats.links_changed = true;
                    let mut bounced = false;
                    if let Some(node) = nodes[sender].as_mut() {
                        node.clear_dangling(dest);
                        if let Message::Lin(x) = msg {
                            if x != dest && index.contains(x) {
                                // The bounce keeps its provenance: the
                                // reprocessed copy is the same causal
                                // node, not a fresh root.
                                if causal_active {
                                    channels[sender].push_caused(msg, now, tag);
                                } else {
                                    channels[sender].push(msg, now);
                                }
                                bounced = true;
                            }
                        }
                        if ACTIVE {
                            // The bounce (and the dangling-pointer clear,
                            // caught by the caller's turn diff) keeps the
                            // sender active until reprocessed.
                            if let Some(s) = sched.as_mut() {
                                s.schedule(sender);
                            }
                        }
                    }
                    if bounced {
                        stats.bounced += 1;
                    } else {
                        stats.dropped_churn += 1;
                    }
                }
            }
        }
        if OBS {
            // The batch's attribution scratch is spent; the next flush
            // (the regular action's) starts clean, so its sends are
            // roots.
            if let Some(o) = obs.as_mut() {
                o.causal.end_batch();
            }
        }
        outbox.clear();
    }

    /// Applies the attached plan's round-start faults for round `now`:
    /// restarts first (downtime over ⇒ the node rejoins the loop, blank
    /// or from its durable checkpoint), then durable-crash state
    /// captures, then crashes (state reset + channel loss + downtime),
    /// then sybil-cluster joins, then neighbour-state perturbations,
    /// then adversarial-window wakeups. Only called from the `FAULTS`
    /// monomorphizations, at most once per round, so it stays out of the
    /// hot path entirely.
    fn apply_round_faults(&mut self, now: u64, stats: &mut RoundStats) {
        // Take the injector out to split its borrow from the node table;
        // a `Box` move, no allocation.
        let Some(mut inj) = self.faults.take() else {
            return;
        };
        for id in inj.take_restarts(now) {
            stats.links_changed = true;
            let restored = inj.take_saved(id);
            let durable = restored.is_some();
            if let Some(slot) = self.index.get(id) {
                if let Some(saved) = restored {
                    // Durable restart: the checkpointed state is adopted
                    // verbatim — a stale but *valid* protocol view whose
                    // pointers re-validate instead of rebuilding from
                    // scratch. Neighbours whose settlement certificates
                    // assumed the blank crash state must be re-verified
                    // against the resurrected pointers.
                    let targets = [saved.left().fin(), saved.right().fin(), saved.ring()];
                    self.nodes[slot] = Some(saved);
                    if self.sched.is_some() {
                        for t in targets.into_iter().flatten() {
                            self.recheck_settled(t);
                        }
                    }
                }
                if let Some(sched) = self.sched.as_mut() {
                    // The node rejoins the loop this round: unsettled
                    // (blank or stale state either way needs
                    // re-validation) and scheduled.
                    sched.set_settled(slot, false);
                    sched.schedule(slot);
                }
            }
            self.emit(Event::Fault {
                round: now,
                kind: "restart".to_string(),
                detail: if durable {
                    format!("{id:?} back up from its durable checkpoint")
                } else {
                    format!("{id:?} back up with blank state")
                },
            });
        }
        for (kind, detail) in inj.windows_opening_at(now) {
            self.emit(Event::Fault {
                round: now,
                kind: kind.to_string(),
                detail,
            });
        }
        // Durable-crash checkpoints: capture the start-of-round state of
        // every node whose durable crash snapshots at this round, before
        // any crash below can blank it (`snapshot_round == round`
        // captures the immediately-pre-crash state). A node already down
        // has no live state to capture — its restart degrades to
        // amnesia, as documented on `Restart::Durable`.
        for id in inj.snapshots_due_at(now) {
            if inj.is_down(id) {
                continue;
            }
            if let Some(slot) = self.index.get(id) {
                if let Some(node) = self.nodes[slot].as_ref() {
                    inj.save_node(node.clone());
                }
            }
        }
        for c in inj.crashes_at(now) {
            let Some(slot) = self.index.get(c.node) else {
                continue; // departed before its crash was due
            };
            // Channel loss: in-flight mail addressed to the victim dies
            // with it. Logged for the watchdog's culprit analysis (with
            // the victim as both endpoints — the true senders are gone
            // from the queue's bookkeeping).
            let mut lost = 0u64;
            for &m in self.channels[slot].messages() {
                inj.note_drop(now, c.node, c.node, m);
                lost += 1;
            }
            let victim = self.nodes[slot].as_ref().expect("indexed slot is live");
            let cfg = *victim.config();
            // The settled neighbours' certificates reference the victim's
            // pre-crash pointers (reciprocity, ring pairing); capture the
            // targets before blanking so they can be re-verified.
            let old_targets = [victim.left().fin(), victim.right().fin(), victim.ring()];
            self.nodes[slot] = Some(Node::new(c.node, cfg));
            self.channels[slot].clear();
            inj.mark_down(c.node, now.saturating_add(c.down_for));
            stats.dropped_fault += lost;
            stats.links_changed = true;
            if self.sched.is_some() {
                self.sched
                    .as_mut()
                    .expect("checked above")
                    .set_settled(slot, false);
                for t in old_targets.into_iter().flatten() {
                    self.recheck_settled(t);
                }
            }
            self.emit(Event::Fault {
                round: now,
                kind: "crash".to_string(),
                detail: format!(
                    "{:?} down for {} rounds, {lost} queued messages lost",
                    c.node, c.down_for
                ),
            });
        }
        for (contact, center, k) in inj.sybils_at(now) {
            // The cluster joins through its contact: each sybil adopts
            // the contact as its one-sided neighbour (the regular join
            // bootstrap) and announces itself with a `lin`, exactly like
            // an honest joiner — the attack is the ε-interval id
            // placement, not the join mechanics.
            let Some(contact_slot) = self.index.get(contact) else {
                continue; // contact departed before the window opened
            };
            if inj.is_down(contact) {
                self.emit(Event::Fault {
                    round: now,
                    kind: "sybil_cluster".to_string(),
                    detail: format!("contact {contact:?} is down, cluster skipped"),
                });
                continue;
            }
            let cfg = *self.nodes[contact_slot]
                .as_ref()
                .expect("indexed slot is live")
                .config();
            let mut joined = 0usize;
            for sid in sybil_ids(center, k) {
                if self.index.contains(sid) {
                    continue; // id collision: that spot is already taken
                }
                let (l, r) = if contact < sid {
                    (Extended::Fin(contact), Extended::PosInf)
                } else {
                    (Extended::NegInf, Extended::Fin(contact))
                };
                let inserted = self.insert_node(Node::with_state(sid, l, r, sid, None, cfg));
                debug_assert!(inserted, "collision checked above");
                self.send_external(contact, Message::Lin(sid));
                joined += 1;
            }
            if joined > 0 {
                stats.links_changed = true;
            }
            self.emit(Event::Fault {
                round: now,
                kind: "sybil_cluster".to_string(),
                detail: format!("{joined} sybils joined via {contact:?} right of {center:?}"),
            });
        }
        for p in inj.perturbations_at(now) {
            let live: Vec<NodeId> = self.index.ids().filter(|id| !inj.is_down(*id)).collect();
            if live.len() < 2 {
                continue;
            }
            let victims = inj.pick_distinct(p.k, &live);
            let hit = victims.len();
            for v in victims {
                let slot = self.index.get(v).expect("picked from live ids");
                let node = self.nodes[slot].as_ref().expect("live slot");
                let cfg = *node.config();
                // Keep `l`: the stored left-pointer chain keeps the
                // knowledge graph weakly connected, so the damage is
                // recoverable by Theorem 4.3 (see faults.rs docs).
                let l = node.left();
                // The rewritten pointers' old reciprocal holders need
                // their certificates re-verified (`l` is kept, so its
                // target's certificate still holds).
                let old_targets = [node.right().fin(), node.ring()];
                // Log every overwritten pointer value as a state
                // erasure: on an unconverged start the old target can be
                // the knowledge graph's only edge into its component, so
                // a perturbation can sever connectivity with no message
                // ever dropped — the watchdog attributes it from these
                // records exactly like a sole-carrier drop.
                for t in [node.right().fin(), Some(node.lrl()), node.ring()]
                    .into_iter()
                    .flatten()
                {
                    if t != v {
                        inj.note_drop(now, v, v, Message::Lin(t));
                        stats.erased_fault += 1;
                    }
                }
                let r = Extended::Fin(inj.pick_one(&live));
                let lrl = inj.pick_one(&live);
                let ring = Some(inj.pick_one(&live));
                self.nodes[slot] = Some(Node::with_state(v, l, r, lrl, ring, cfg));
                stats.links_changed = true;
                if let Some(sched) = self.sched.as_mut() {
                    sched.set_settled(slot, false);
                    sched.schedule(slot);
                    for t in old_targets.into_iter().flatten() {
                        self.recheck_settled(t);
                    }
                }
            }
            self.emit(Event::Fault {
                round: now,
                kind: "perturb".to_string(),
                detail: format!("{hit} nodes' r/lrl/ring randomized"),
            });
        }
        // Misbehaving nodes act every round of their window (see
        // `FaultInjector::behavior_nodes_active_at`); scramble forgeries
        // draw from a pool refreshed after all of this round's
        // structural changes, so lies only ever name live nodes and the
        // knowledge closure cannot be violated by an invented id.
        if let Some(sched) = self.sched.as_mut() {
            for id in inj.behavior_nodes_active_at(now) {
                if inj.is_down(id) {
                    continue;
                }
                if let Some(slot) = self.index.get(id) {
                    sched.set_settled(slot, false);
                    sched.schedule(slot);
                }
            }
        }
        if inj.needs_lie_pool(now) {
            let pool: Vec<NodeId> = self.index.ids().filter(|id| !inj.is_down(*id)).collect();
            inj.set_lie_pool(pool);
        }
        self.faults = Some(inj);
    }

    /// End-of-turn settlement bookkeeping (ActiveSet only): diff the
    /// turn's `(l, r, ring)` tuple to re-verify the certificates this
    /// turn can have invalidated, verify the node's own certificate, and
    /// reschedule it while it is unsettled or holds queued mail.
    ///
    /// The diff is complete for *other* nodes' certificates because
    /// reciprocity is mutual: a certificate of `q` references `p`'s
    /// state only when `p` is a list/ring target of `q` and vice versa,
    /// so whichever edge this turn broke or created has its far end in
    /// the before- or after-tuple.
    fn finish_turn(&mut self, i: usize, before: (Extended, Extended, Option<NodeId>)) {
        let Some(n) = self.nodes[i].as_ref() else {
            return;
        };
        let after = (n.left(), n.right(), n.ring());
        if after != before {
            let targets = [
                before.0.fin(),
                before.1.fin(),
                before.2,
                after.0.fin(),
                after.1.fin(),
                after.2,
            ];
            for t in targets.into_iter().flatten() {
                self.recheck_settled(t);
            }
        }
        let ok = self.node_settled(i);
        let mail = !self.channels[i].is_empty();
        let sched = self.sched.as_mut().expect("ACTIVE implies scheduler");
        sched.set_settled(i, ok);
        if !ok || mail {
            sched.schedule(i);
        }
    }

    /// Re-verifies a *settled* node's certificate after someone else's
    /// state changed; unsettles and schedules it when the certificate no
    /// longer holds. No-op for unsettled or absent ids (unsettled nodes
    /// re-verify at the end of their own next turn).
    fn recheck_settled(&mut self, id: NodeId) {
        let Some(sched) = self.sched.as_ref() else {
            return;
        };
        let Some(slot) = self.index.get(id) else {
            return;
        };
        if !sched.is_settled(slot) {
            return;
        }
        if !self.node_settled(slot) {
            let sched = self.sched.as_mut().expect("present above");
            sched.set_settled(slot, false);
            sched.schedule(slot);
        }
    }

    /// The settlement certificate (see `crate::sched`): true exactly
    /// when the node's regular action is a verified fixpoint no-op —
    /// every finite list pointer properly sided and reciprocated by a
    /// live neighbour, `±∞` sides only at the global extremes with the
    /// cross-ring edges mutually paired, no leftover interior ring edge,
    /// and a live (or self) lrl endpoint.
    fn node_settled(&self, slot: usize) -> bool {
        let Some(n) = self.nodes[slot].as_ref() else {
            return false;
        };
        let id = n.id();
        // A dangling token endpoint would make the next inc_lrl bounce
        // and rewrite state.
        if n.lrl() != id && !self.index.contains(n.lrl()) {
            return false;
        }
        let min = self.index.min_id().expect("slot is live");
        let max = self.index.max_id().expect("slot is live");
        let seam_l = match n.left() {
            Extended::NegInf => {
                if id != min {
                    return false;
                }
                true
            }
            Extended::Fin(a) => {
                if a >= id {
                    return false;
                }
                let Some(an) = self.index.get(a).and_then(|s| self.nodes[s].as_ref()) else {
                    return false;
                };
                if an.right() != Extended::Fin(id) {
                    return false;
                }
                false
            }
            Extended::PosInf => return false,
        };
        let seam_r = match n.right() {
            Extended::PosInf => {
                if id != max {
                    return false;
                }
                true
            }
            Extended::Fin(b) => {
                if b <= id {
                    return false;
                }
                let Some(bn) = self.index.get(b).and_then(|s| self.nodes[s].as_ref()) else {
                    return false;
                };
                if bn.left() != Extended::Fin(id) {
                    return false;
                }
                false
            }
            Extended::NegInf => return false,
        };
        match (seam_l, seam_r) {
            // The sole node: nothing to link; its ring edge (self or
            // absent after sanitation) is inert.
            (true, true) => true,
            // Interior node: a leftover ring edge would be sanitized
            // away on its next action — a state change.
            (false, false) => n.ring().is_none(),
            // Seam nodes must hold the *global* opposite extreme as a
            // mutually paired ring edge — deliberately stronger than the
            // protocol's per-node ring validity (any correctly sided
            // value), because only the global pairing is a fixpoint of
            // ring-edge improvement.
            (true, false) => self.ring_paired(n, max),
            (false, true) => self.ring_paired(n, min),
        }
    }

    /// True when `n` and the opposite extreme `partner` hold each
    /// other's ids as ring edges — the converged ring closure.
    fn ring_paired(&self, n: &Node, partner: NodeId) -> bool {
        if partner == n.id() || n.ring() != Some(partner) {
            return false;
        }
        self.index
            .get(partner)
            .and_then(|s| self.nodes[s].as_ref())
            .is_some_and(|p| p.ring() == Some(n.id()))
    }

    /// Scheduler bookkeeping for a join: the newcomer starts unsettled
    /// and scheduled, and the certificates the join can invalidate
    /// *without any mail arriving* are re-verified — the sorted
    /// neighbours and both global extremes, because seam certificates
    /// reference the min/max identity and the cross-ring pairing (a new
    /// global extreme must dethrone the settled old one eagerly, or it
    /// would freeze as falsely settled).
    fn on_insert_sched(&mut self, id: NodeId, slot: usize) {
        {
            let sched = self.sched.as_mut().expect("caller checked");
            sched.ensure_slot(slot);
            sched.set_settled(slot, false);
            sched.schedule(slot);
        }
        let rank = self.index.rank_of(id).expect("just inserted");
        let lane = self.index.sorted_ids();
        let candidates = [
            (rank > 0).then(|| lane[rank - 1]),
            lane.get(rank + 1).copied(),
            self.index.min_id(),
            self.index.max_id(),
        ];
        for c in candidates.into_iter().flatten() {
            if c != id {
                self.recheck_settled(c);
            }
        }
    }

    /// Scheduler bookkeeping for a leave: every node that stores the
    /// departed id (list pointer, lrl endpoint or ring edge) has a dead
    /// certificate and must act again to detect the departure (bounce →
    /// `clear_dangling`). An O(n) scan — churn-rate cost, not per-round
    /// cost, and the same order the full-scan engine pays every round.
    fn on_remove_sched(&mut self, id: NodeId, slot: usize) {
        {
            let sched = self.sched.as_mut().expect("caller checked");
            sched.ensure_slot(slot);
            // The freed slot's flag is reset; a stale agenda entry for it
            // is filtered at round start (or covers the slot's next
            // occupant, which must run anyway).
            sched.set_settled(slot, false);
        }
        let mut stale: Vec<usize> = Vec::new();
        for &s in self.index.sorted_slots() {
            if let Some(n) = self.nodes[s].as_ref() {
                if n.stored_ids().any(|x| x == id) {
                    stale.push(s);
                }
            }
        }
        let sched = self.sched.as_mut().expect("caller checked");
        for s in stale {
            sched.set_settled(s, false);
            sched.schedule(s);
        }
    }
}

/// Runs `f`, adding its wall-clock duration (nanoseconds, saturating) to
/// `acc` when `on` — the sampled phase timer of `step_impl`. With `on`
/// constant false (the `OBS = false` monomorphization) this inlines to a
/// plain call.
#[inline]
fn timed<T>(on: bool, acc: &mut u64, f: impl FnOnce() -> T) -> T {
    if on {
        // lint: allow(determinism) — phase-timer sampling; feeds observability only.
        let t0 = std::time::Instant::now();
        let r = f();
        *acc = acc.saturating_add(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        r
    } else {
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{generate, InitialTopology};
    use proptest::prelude::*;
    use swn_core::config::ProtocolConfig;
    use swn_core::id::evenly_spaced_ids;
    use swn_core::invariants::{
        classify_view, is_sorted_ring, is_sorted_ring_view, make_sorted_ring, Phase,
    };

    fn id(f: f64) -> NodeId {
        NodeId::from_fraction(f)
    }

    fn stable_net(n: usize, seed: u64) -> Network {
        let ids = evenly_spaced_ids(n);
        Network::new(make_sorted_ring(&ids, ProtocolConfig::default()), seed)
    }

    #[test]
    fn stable_ring_stays_stable() {
        let mut net = stable_net(16, 1);
        assert!(is_sorted_ring(&net.snapshot()));
        net.run(50);
        assert!(is_sorted_ring(&net.snapshot()), "stability violated");
        assert_eq!(net.trace().total_probe_repairs(), 0);
        assert_eq!(net.trace().total_dropped(), 0);
    }

    #[test]
    fn two_isolated_nodes_with_a_hint_linearize() {
        let cfg = ProtocolConfig::default();
        let a = Node::new(id(0.2), cfg);
        let b = Node::new(id(0.8), cfg);
        let mut net = Network::new(vec![a, b], 7);
        // One temporary link: a learns about b.
        net.preload(id(0.2), Message::Lin(id(0.8)));
        let done = net.run_until(50, |v| classify_view(v) == Phase::SortedRing);
        assert!(done.is_some(), "2-node network failed to stabilize");
        let s = net.snapshot();
        let na = s.nodes()[s.index_of(id(0.2)).unwrap()].clone();
        let nb = s.nodes()[s.index_of(id(0.8)).unwrap()].clone();
        assert_eq!(na.right().fin(), Some(id(0.8)));
        assert_eq!(nb.left().fin(), Some(id(0.2)));
        assert_eq!(na.ring(), Some(id(0.8)));
        assert_eq!(nb.ring(), Some(id(0.2)));
    }

    #[test]
    fn determinism_same_seed_same_computation() {
        let run = |seed: u64| {
            let mut net = stable_net(12, seed);
            net.run(30);
            let s = net.snapshot();
            let lrls: Vec<_> = s.nodes().iter().map(swn_core::node::Node::lrl).collect();
            (net.trace().total_sent(), lrls)
        };
        assert_eq!(run(42), run(42));
        // Different seed: lrl random walks diverge with overwhelming
        // probability on 12 nodes over 30 rounds.
        assert_ne!(run(42).1, run(43).1);
    }

    #[test]
    fn run_until_detects_immediately_satisfied_predicate() {
        let mut net = stable_net(4, 1);
        assert_eq!(net.run_until(10, is_sorted_ring_view), Some(0));
    }

    #[test]
    fn view_matches_snapshot() {
        let mut net = stable_net(8, 2);
        net.run(3);
        let s = net.snapshot();
        let v = net.view();
        assert_eq!(v.len(), s.len());
        for (rank, node) in v.nodes().iter().enumerate() {
            let si = s.sorted_indices()[rank];
            assert_eq!(node.id(), s.nodes()[si].id());
            assert_eq!(v.channel(rank), &s.channels()[si][..]);
        }
        assert_eq!(classify_view(&v), swn_core::invariants::classify(&s));
    }

    #[test]
    fn run_until_times_out() {
        let mut net = stable_net(4, 1);
        assert_eq!(net.run_until(5, |_| false), None);
        assert_eq!(net.round(), 5);
    }

    #[test]
    fn insert_and_remove_nodes() {
        let mut net = stable_net(4, 1);
        assert_eq!(net.len(), 4);
        let newcomer = Node::new(id(0.33), ProtocolConfig::default());
        assert!(net.insert_node(newcomer));
        assert!(!net.insert_node(Node::new(id(0.33), ProtocolConfig::default())));
        assert_eq!(net.len(), 5);
        assert!(net.remove_node(id(0.33)).is_some());
        assert!(net.remove_node(id(0.33)).is_none());
        assert_eq!(net.len(), 4);
        // Slot is recycled.
        assert!(net.insert_node(Node::new(id(0.44), ProtocolConfig::default())));
        assert_eq!(net.len(), 5);
    }

    #[test]
    fn messages_to_departed_nodes_bounce_back_to_their_sender() {
        let mut net = stable_net(8, 3);
        let victims = net.ids();
        let victim = victims[3];
        net.remove_node(victim);
        net.run(3);
        // The interior victim's neighbours keep sending `lin` messages
        // naming themselves (live), so those bounce — they are not drops.
        assert!(net.trace().total_bounced() > 0, "lin to departed bounces");
    }

    #[test]
    fn bounces_and_true_drops_are_counted_separately() {
        let mut net = stable_net(8, 3);
        let max = *net.ids().last().unwrap();
        net.remove_node(max);
        net.run(3);
        // The min node's `ring` message to the departed max is a true
        // drop (its payload is stored at the responder); the max's left
        // neighbour's `lin` naming itself bounces.
        assert!(
            net.trace().total_dropped() > 0,
            "ring messages to the departed max are dropped"
        );
        assert!(
            net.trace().total_bounced() > 0,
            "lin messages to the departed max bounce"
        );
    }

    #[test]
    fn message_counting_matches_kinds() {
        let mut net = stable_net(8, 3);
        net.run(5);
        let t = net.trace();
        // Every round every interior node sends 2 lin, extremes 1 lin +
        // 1 ring, everyone 1 inclrl.
        assert!(t.total_sent_of(swn_core::message::MessageKind::IncLrl) >= 8 * 5);
        assert!(t.total_sent_of(swn_core::message::MessageKind::Lin) > 0);
        assert!(t.total_sent_of(swn_core::message::MessageKind::Ring) > 0);
    }

    #[test]
    fn random_delay_policy_still_stabilizes_small_net() {
        let cfg = ProtocolConfig::default();
        let a = Node::new(id(0.2), cfg);
        let b = Node::new(id(0.5), cfg);
        let c = Node::new(id(0.8), cfg);
        let mut net = Network::with_policy(
            vec![a, b, c],
            11,
            DeliveryPolicy::RandomDelay {
                p_deliver: 0.3,
                max_delay: 5,
            },
        );
        net.preload(id(0.2), Message::Lin(id(0.5)));
        net.preload(id(0.5), Message::Lin(id(0.8)));
        let done = net.run_until(300, |v| classify_view(v) == Phase::SortedRing);
        assert!(done.is_some(), "failed to stabilize under random delay");
    }

    #[test]
    #[should_panic(expected = "duplicate node id")]
    fn duplicate_ids_rejected() {
        let cfg = ProtocolConfig::default();
        let _ = Network::new(vec![Node::new(id(0.5), cfg), Node::new(id(0.5), cfg)], 1);
    }

    #[test]
    #[should_panic(expected = "invalid protocol config")]
    fn insert_node_rejects_invalid_config() {
        let mut net = stable_net(4, 1);
        let bad = ProtocolConfig {
            probe_period: 0,
            ..ProtocolConfig::default()
        };
        let _ = net.insert_node(Node::new(id(0.33), bad));
    }

    #[test]
    fn remove_node_clears_stale_tracking_state() {
        // A tracked id travels through forwarders; when a forwarder
        // departs it must leave the forwarder set, and when the tracked
        // node itself departs tracking must stop entirely.
        let mut net = stable_net(8, 5);
        let ids = net.ids();
        let joiner = id(0.0001); // sorts before every existing node
        assert!(net.insert_node(Node::new(joiner, ProtocolConfig::default())));
        net.track_id(Some(joiner));
        net.send_external(ids[7], Message::Lin(joiner));
        net.run(6);
        let before = net.tracked_forwarder_count();
        assert!(before > 0, "the joiner's id should have been forwarded");
        // Remove every original node: recorded forwarders must drop out
        // of the count rather than keep counting departed nodes.
        for fid in ids {
            net.remove_node(fid);
        }
        assert_eq!(
            net.tracked_forwarder_count(),
            0,
            "departed forwarders must not linger in the step count"
        );
    }

    #[test]
    fn removing_the_tracked_node_stops_tracking() {
        let mut net = stable_net(8, 5);
        let ids = net.ids();
        let joiner = id(0.0001);
        assert!(net.insert_node(Node::new(joiner, ProtocolConfig::default())));
        net.track_id(Some(joiner));
        net.send_external(ids[7], Message::Lin(joiner));
        net.run(2);
        // The tracked node departs while its id is still circulating in
        // `lin` messages; a stale `tracked` would keep counting them.
        net.remove_node(joiner);
        let rounds_before = net.trace().len();
        net.run(4);
        assert_eq!(net.tracked_forwarder_count(), 0);
        let tracked_after: u64 = net.trace().rounds()[rounds_before..]
            .iter()
            .map(|r| r.tracked_sent)
            .sum();
        assert_eq!(tracked_after, 0, "tracking must stop with the node");
    }

    /// Everything the engine computes, as one comparable string: every
    /// node's variables (ascending id order), its channel contents in
    /// queue order, and the full per-round trace.
    fn fingerprint(net: &Network) -> String {
        use std::fmt::Write as _;
        let v = net.view();
        let mut s = String::new();
        for (rank, n) in v.nodes().iter().enumerate() {
            let _ = write!(
                s,
                "{:?} l={:?} r={:?} lrl={:?} ring={:?} age={} pt={} ch={:?};",
                n.id(),
                n.left(),
                n.right(),
                n.lrl(),
                n.ring(),
                n.age(),
                n.probe_tick(),
                v.channel(rank),
            );
        }
        let _ = write!(s, "trace={:?}", net.trace().rounds());
        s
    }

    // The flush-equivalence property behind the batched outbox flush
    // (see `step_impl` and DESIGN.md §8). Two halves:
    //
    // 1. Without churn, batched flushing is *bit-for-bit* identical to
    //    the per-message reference: same RNG draws, same delivery order,
    //    same per-round stats, same final state.
    // 2. Under churn the two engines may schedule departure detection
    //    differently (batched detection runs after the whole receive
    //    batch), but both remain valid executions: each reconverges to
    //    the unique sorted ring over the surviving ids.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn flush_equivalence_bit_for_bit_without_churn(
            n in 4usize..14,
            seed in 0u64..500,
            rounds in 1u64..30,
        ) {
            let ids = evenly_spaced_ids(n);
            let fresh = || {
                generate(
                    InitialTopology::RandomSparse { extra: 2 },
                    &ids,
                    ProtocolConfig::default(),
                    seed,
                )
                .into_network(seed)
            };
            let mut batched = fresh();
            let mut reference = fresh();
            for _ in 0..rounds {
                let a = batched.step();
                let b = reference.step_reference();
                prop_assert_eq!(a, b, "per-round stats diverged");
            }
            prop_assert_eq!(fingerprint(&batched), fingerprint(&reference));
        }

        #[test]
        fn flush_equivalence_semantic_under_churn(
            n in 6usize..14,
            seed in 0u64..500,
            warmup in 1u64..12,
            victim_rank in 1usize..5,
        ) {
            let ids = evenly_spaced_ids(n);
            let fresh = || Network::new(make_sorted_ring(&ids, ProtocolConfig::default()), seed);
            let mut batched = fresh();
            let mut reference = fresh();
            for _ in 0..warmup {
                batched.step();
                reference.step_reference();
            }
            let victim = batched.ids()[victim_rank];
            prop_assert!(batched.remove_node(victim).is_some());
            prop_assert!(reference.remove_node(victim).is_some());
            let mut ring_batched = false;
            let mut ring_reference = false;
            for _ in 0..3000 {
                if is_sorted_ring_view(&batched.view()) {
                    ring_batched = true;
                    break;
                }
                batched.step();
            }
            for _ in 0..3000 {
                if is_sorted_ring_view(&reference.view()) {
                    ring_reference = true;
                    break;
                }
                reference.step_reference();
            }
            prop_assert!(ring_batched, "batched engine failed to re-stabilize");
            prop_assert!(ring_reference, "reference engine failed to re-stabilize");
            // The sorted ring over a fixed id set is unique in its
            // list pointers (and the predicate already pins the ring
            // edges at the extremes; interior `ring` values are
            // unconstrained leftovers), so both engines agree on every
            // structural pointer.
            let structure = |net: &Network| -> Vec<_> {
                net.view()
                    .nodes()
                    .iter()
                    .map(|p| (p.id(), p.left(), p.right()))
                    .collect()
            };
            prop_assert_eq!(structure(&batched), structure(&reference));
        }
    }

    #[test]
    fn attached_sink_never_perturbs_the_computation() {
        // The determinism contract of the observability layer: a network
        // observed at the maximal sampling rate computes bit-for-bit the
        // same states, trace and RNG stream as an unobserved one.
        let run = |observe: bool| {
            let ids = evenly_spaced_ids(12);
            let mut net = generate(
                InitialTopology::RandomSparse { extra: 2 },
                &ids,
                ProtocolConfig::default(),
                9,
            )
            .into_network(9);
            if observe {
                let (sink, _records) = crate::obs::MemorySink::new();
                net.attach_sink(Box::new(sink), 1);
            }
            net.run(40);
            // Churn keeps the general (non-fast-path) channel code and
            // the bounce/drop routing in play.
            let victim = net.ids()[5];
            net.remove_node(victim);
            net.run(40);
            fingerprint(&net)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn empty_fault_plan_never_perturbs_the_computation() {
        // The determinism contract of the fault layer: an attached but
        // empty plan consumes no injector RNG and touches no state, so
        // the computation (including churn rounds) is bit-for-bit the
        // fault-free one.
        let run = |attach: bool| {
            let ids = evenly_spaced_ids(12);
            let mut net = generate(
                InitialTopology::RandomSparse { extra: 2 },
                &ids,
                ProtocolConfig::default(),
                9,
            )
            .into_network(9);
            if attach {
                net.attach_faults(crate::faults::FaultPlan::new(123));
            }
            net.run(40);
            let victim = net.ids()[5];
            net.remove_node(victim);
            net.run(40);
            fingerprint(&net)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn fault_injector_attach_detach_roundtrip() {
        let mut net = stable_net(6, 2);
        assert!(!net.has_faults());
        assert!(net.detach_faults().is_none());
        net.attach_faults(crate::faults::FaultPlan::new(1).with_drop(1, 3, 1.0));
        assert!(net.has_faults());
        net.run(4);
        assert!(net.trace().total_dropped_fault() > 0);
        let inj = net.detach_faults().expect("was attached");
        assert!(!inj.drops().is_empty());
        assert!(!net.has_faults());
        // Detached again, rounds are fault-free.
        let before = net.trace().total_dropped_fault();
        net.run(4);
        assert_eq!(net.trace().total_dropped_fault(), before);
    }

    #[test]
    fn duplication_window_enqueues_extra_copies() {
        let mut net = stable_net(8, 5);
        net.attach_faults(crate::faults::FaultPlan::new(4).with_duplicate(1, 6, 1.0));
        net.run(10);
        let t = net.trace();
        let dup = t.total_duplicated_fault();
        assert!(dup > 0, "a p=1 window must duplicate every send");
        // Immediate policy on a stable ring: every copy sent in round r
        // is delivered in r+1, so over the run delivered = sent + dup
        // minus the last round's still-in-flight mail.
        let in_flight = t.rounds().last().expect("ran").total_sent();
        assert_eq!(t.total_delivered(), t.total_sent() + dup - in_flight);
        // Duplicates never disturb a stable ring (delivery is idempotent
        // on sorted state).
        assert!(is_sorted_ring(&net.snapshot()));
    }

    #[test]
    fn sink_receives_meta_rounds_phases_and_summary() {
        use crate::obs::{Event, MemorySink};
        let mut net = stable_net(8, 4);
        let (sink, records) = MemorySink::new();
        net.attach_sink(Box::new(sink), 4);
        assert!(net.has_sink());
        net.run(12);
        assert!(net.detach_sink().is_some());
        assert!(!net.has_sink());
        assert!(net.detach_sink().is_none(), "second detach is a no-op");
        let recs = records.lock().unwrap();
        assert!(
            recs.iter().all(|r| r.v == crate::obs::SCHEMA_VERSION),
            "every record is schema-tagged"
        );
        let meta = recs.first().expect("records present");
        assert!(
            matches!(meta.event, Event::RunMeta { n: 8, seed: 4, .. }),
            "first record is RunMeta: {meta:?}"
        );
        // sample_every = 4 over rounds 1..=12 → rounds 4, 8, 12 sampled.
        let rounds: Vec<u64> = recs
            .iter()
            .filter_map(|r| match &r.event {
                Event::Round { round, .. } => Some(*round),
                _ => None,
            })
            .collect();
        assert_eq!(rounds, vec![4, 8, 12]);
        let timed: Vec<u64> = recs
            .iter()
            .filter_map(|r| match &r.event {
                Event::PhaseTimes { round, .. } => Some(*round),
                _ => None,
            })
            .collect();
        assert_eq!(timed, vec![4, 8, 12]);
        match &recs.last().expect("records present").event {
            Event::Summary {
                rounds,
                total_sent,
                latency,
                depth,
                lrl_len,
                ..
            } => {
                assert_eq!(*rounds, 12);
                assert_eq!(*total_sent, net.trace().total_sent());
                // Immediate policy: every message delivered in the next
                // round, latency exactly 1; depth high-waters observed
                // every round; lrl lengths sampled on sampled rounds.
                assert_eq!(latency.count(), net.trace().total_delivered());
                assert_eq!(latency.max(), 1);
                assert_eq!(depth.count(), 12);
                assert!(depth.max() >= 1);
                assert_eq!(lrl_len.count(), 3 * 8, "8 nodes per sampled round");
            }
            other => panic!("last record must be Summary, got {other:?}"),
        }
        // Emitting without a sink is a silent no-op.
        net.emit(Event::Transition {
            round: 1,
            phase: "lcc".to_string(),
        });
    }

    #[test]
    fn forget_ages_reach_the_observer_histogram() {
        use crate::obs::{Event, MemorySink};
        // A warmed stable ring keeps moving and forgetting its tokens, so
        // a long observed window must see forget events, and the
        // histogram must agree with the trace counters over that window.
        let mut net = stable_net(16, 11);
        net.run(50);
        let start = net.trace().len();
        let (sink, records) = MemorySink::new();
        net.attach_sink(Box::new(sink), 64);
        net.run(400);
        net.detach_sink();
        let forgets: u64 = net.trace().rounds()[start..]
            .iter()
            .map(|r| r.lrl_forgets)
            .sum();
        assert!(forgets > 0, "no forget events in 400 stable rounds");
        let recs = records.lock().unwrap();
        let forget_hist = recs
            .iter()
            .find_map(|r| match &r.event {
                Event::Summary { forget_age, .. } => Some(forget_age.clone()),
                _ => None,
            })
            .expect("summary present");
        assert_eq!(forget_hist.count(), forgets);
        let (mean, max) = net
            .trace()
            .forget_age_stats_in(start..net.trace().len())
            .expect("forgets observed");
        assert_eq!(forget_hist.max(), max);
        assert!((forget_hist.mean() - mean).abs() < 1e-9);
    }

    #[test]
    fn cascade_window_reports_repair_shape_after_churn() {
        let mut net = stable_net(10, 6);
        let (sink, _records) = crate::obs::MemorySink::new();
        net.attach_sink(Box::new(sink), 8);
        net.run(5);
        net.cascade_begin();
        let victim = net.ids()[4];
        net.remove_node(victim);
        net.run(30);
        let rep = net.cascade_take().expect("sink attached");
        assert_eq!(rep.start, 5);
        assert_eq!(rep.end, 35);
        assert!(rep.delivered() > 0);
        assert!(rep.stats.roots > 0, "regular actions seed cascade roots");
        assert!(rep.stats.edges > 0, "receive handlers cause further sends");
        assert!(rep.depth_max() >= 1, "repairs chain at least once");
        assert!(rep.stats.width_max() >= 1);
        assert_eq!(
            rep.delivered(),
            rep.stats.roots + rep.stats.edges,
            "every delivery is a root or an edge"
        );
        let handled: u64 = rep.stats.handled_by_kind.iter().sum();
        assert_eq!(handled, rep.delivered());
        // The window reset: a fresh window starts empty.
        let rep2 = net.cascade_take().expect("sink still attached");
        assert_eq!(rep2.delivered(), 0);
        // Without a sink the window API is inert.
        net.detach_sink();
        assert!(net.cascade_take().is_none());
        net.cascade_begin();
    }

    #[test]
    fn metrics_publish_rounds_and_active_set() {
        let reg = crate::metrics::Registry::new();
        let mut net = stable_net(8, 2);
        net.set_schedule_mode(crate::sched::ScheduleMode::ActiveSet);
        assert!(!net.has_metrics());
        net.attach_metrics(crate::metrics::NetMetrics::register(&reg));
        assert!(net.has_metrics());
        drain(&mut net, 50);
        net.step(); // one guaranteed quiescent round
        let m = net.detach_metrics().expect("was attached");
        assert!(!net.has_metrics());
        assert_eq!(m.rounds.get(), net.round());
        assert!(m.sent.get() > 0);
        assert_eq!(m.sent.get(), net.trace().total_sent());
        assert_eq!(m.delivered.get(), net.trace().total_delivered());
        assert!(
            m.sched_wakeups.get() >= 8,
            "the initial full agenda counts as wakeups"
        );
        assert_eq!(m.active_set.get(), 0, "drained agenda");
        assert!(m.quiescent_rounds.get() >= 1);
        // Detached: stepping publishes nothing further.
        net.step();
        assert_eq!(m.rounds.get() + 1, net.round());
        // Full scan publishes the live node count as the active gauge.
        let mut fs = stable_net(5, 3);
        fs.attach_metrics(crate::metrics::NetMetrics::register(&reg));
        fs.step();
        let m = fs.detach_metrics().expect("attached");
        assert_eq!(m.active_set.get(), 5);
    }

    /// Steps until the agenda is empty (panics after `max` rounds).
    fn drain(net: &mut Network, max: u64) -> u64 {
        for k in 0..=max {
            if net.is_quiescent() {
                return k;
            }
            net.step();
        }
        panic!("network failed to drain within {max} rounds");
    }

    #[test]
    fn active_set_stable_ring_reaches_quiescence() {
        let mut net = stable_net(16, 1);
        net.set_schedule_mode(crate::sched::ScheduleMode::ActiveSet);
        assert_eq!(net.schedule_mode(), crate::sched::ScheduleMode::ActiveSet);
        assert_eq!(net.active_count(), 16, "everything starts scheduled");
        let rounds = drain(&mut net, 50);
        assert!(rounds > 0, "certificates take at least one round to earn");
        assert_eq!(net.active_count(), 0);
        assert!(is_sorted_ring(&net.snapshot()));
        // Back to full scan: never quiescent, every node active.
        net.set_schedule_mode(crate::sched::ScheduleMode::FullScan);
        assert!(!net.is_quiescent());
        assert_eq!(net.active_count(), 16);
    }

    #[test]
    fn active_set_join_of_new_global_max_reintegrates() {
        // The freeze-risk path: a quiescent ring, then a join that
        // dethrones the settled global maximum. The insert hook must
        // unsettle the old extremes eagerly or the seam never moves.
        let mut net = stable_net(8, 3);
        net.set_schedule_mode(crate::sched::ScheduleMode::ActiveSet);
        drain(&mut net, 50);
        let joiner = NodeId::from_bits(u64::MAX - 7); // beyond every id
        assert!(net.insert_node(Node::new(joiner, ProtocolConfig::default())));
        let contact = net.ids()[0];
        net.send_external(contact, Message::Lin(joiner));
        assert!(!net.is_quiescent(), "the join must wake the network");
        let done = net.run_until(3000, is_sorted_ring_view);
        assert!(done.is_some(), "new maximum failed to integrate");
        drain(&mut net, 200);
        let max = *net.ids().last().unwrap();
        assert_eq!(max, joiner);
        let min = net.ids()[0];
        assert_eq!(net.node(min).unwrap().ring(), Some(joiner));
        assert_eq!(net.node(joiner).unwrap().ring(), Some(min));
    }

    #[test]
    fn active_set_leave_of_settled_interior_node_recovers() {
        let mut net = stable_net(10, 4);
        net.set_schedule_mode(crate::sched::ScheduleMode::ActiveSet);
        drain(&mut net, 50);
        let victim = net.ids()[4];
        assert!(net.remove_node(victim).is_some());
        assert!(
            !net.is_quiescent(),
            "the victim's reciprocal neighbours must wake"
        );
        let done = net.run_until(3000, is_sorted_ring_view);
        assert!(done.is_some(), "ring failed to close over the gap");
        drain(&mut net, 200);
        assert_eq!(net.len(), 9);
    }

    #[test]
    fn active_set_leave_of_global_extreme_recovers() {
        // Removing the maximum breaks both seam certificates (the min's
        // ring pairing and the new max's PosInf claim).
        let mut net = stable_net(10, 5);
        net.set_schedule_mode(crate::sched::ScheduleMode::ActiveSet);
        drain(&mut net, 50);
        let max = *net.ids().last().unwrap();
        assert!(net.remove_node(max).is_some());
        let done = net.run_until(3000, is_sorted_ring_view);
        assert!(done.is_some(), "seam failed to re-close");
        drain(&mut net, 200);
        let min = net.ids()[0];
        let new_max = *net.ids().last().unwrap();
        assert_eq!(net.node(min).unwrap().ring(), Some(new_max));
        assert_eq!(net.node(new_max).unwrap().ring(), Some(min));
    }

    #[test]
    fn clean_rounds_report_links_unchanged() {
        // A stable ring under Immediate policy still delivers messages
        // every round (dirty), but a network whose channels have drained
        // and whose nodes only re-send stored ids is clean.
        let mut net = stable_net(6, 2);
        net.run(10);
        let last = net.trace().rounds().last().unwrap();
        assert!(
            last.links_changed,
            "immediate-policy rounds deliver messages, hence dirty"
        );
        // Single node: sends go nowhere new, state never changes, first
        // round delivers nothing — the round must be clean.
        let mut solo = Network::new(make_sorted_ring(&[id(0.5)], ProtocolConfig::default()), 1);
        let stats = solo.step();
        assert!(!stats.links_changed, "solo first round is clean");
    }
}
