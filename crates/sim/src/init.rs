//! Adversarial initial-state generators.
//!
//! Self-stabilization quantifies over *every weakly connected initial
//! state*; these generators produce representative families of them. All
//! generators guarantee weak connectivity of the stored-link graph CP
//! (hence of CC), which is the hypothesis of Theorem 4.3 — from anything
//! weaker no algorithm could reconnect the network.
//!
//! A generated state is a set of nodes (with possibly ill-typed variable
//! contents) plus initial channel contents (stale in-flight messages).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt as _, SeedableRng};
use serde::{Deserialize, Serialize};
use swn_core::config::ProtocolConfig;
use swn_core::id::{Extended, NodeId};
use swn_core::invariants::make_sorted_ring;
use swn_core::message::Message;
use swn_core::node::Node;

use crate::network::Network;

/// The initial-topology families used by the experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum InitialTopology {
    /// Random spanning tree plus `extra` random links, slots assigned
    /// arbitrarily — the "generic" weakly connected digraph.
    RandomSparse {
        /// Random links added on top of the spanning tree.
        extra: usize,
    },
    /// Every node's only link is a long-range link to one hub.
    Star,
    /// Every node knows the global min and max as `l`/`r` (maximally long
    /// list links) plus a random `lrl`.
    Clique,
    /// A single directed chain over a random permutation of the nodes —
    /// the sorted order must be completely rebuilt.
    RandomChain,
    /// Two internally sorted halves joined by a single link — tests the
    /// merge behaviour.
    TwoBlobs,
    /// The sorted list without ring edges — isolates phase 3.
    SortedListNoRing,
    /// The stable sorted ring (tokens at origin) — the reference state.
    SortedRing,
    /// The stable sorted ring with `corruptions` random pointer
    /// corruptions and stale channel messages — the "small fault" family.
    CorruptedRing {
        /// Number of random pointer corruptions applied.
        corruptions: usize,
    },
}

impl InitialTopology {
    /// All families, for exhaustive sweeps.
    pub const ALL: [InitialTopology; 8] = [
        InitialTopology::RandomSparse { extra: 2 },
        InitialTopology::Star,
        InitialTopology::Clique,
        InitialTopology::RandomChain,
        InitialTopology::TwoBlobs,
        InitialTopology::SortedListNoRing,
        InitialTopology::SortedRing,
        InitialTopology::CorruptedRing { corruptions: 4 },
    ];

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            InitialTopology::RandomSparse { .. } => "random-sparse",
            InitialTopology::Star => "star",
            InitialTopology::Clique => "clique",
            InitialTopology::RandomChain => "random-chain",
            InitialTopology::TwoBlobs => "two-blobs",
            InitialTopology::SortedListNoRing => "list-no-ring",
            InitialTopology::SortedRing => "sorted-ring",
            InitialTopology::CorruptedRing { .. } => "corrupted-ring",
        }
    }
}

/// A generated initial state.
pub struct InitialState {
    /// The nodes, in unspecified order.
    pub nodes: Vec<Node>,
    /// Stale messages to preload: `(destination, message)`.
    pub preloads: Vec<(NodeId, Message)>,
}

impl InitialState {
    /// Materializes the state into a ready-to-run [`Network`].
    pub fn into_network(self, seed: u64) -> Network {
        self.into_network_with_policy(seed, crate::DeliveryPolicy::default())
    }

    /// [`InitialState::into_network`] under an explicit delivery policy
    /// (e.g. adversarial [`crate::DeliveryPolicy::RandomDelay`]
    /// asynchrony for fairness-sensitive property tests).
    pub fn into_network_with_policy(self, seed: u64, policy: crate::DeliveryPolicy) -> Network {
        let mut net = Network::with_policy(self.nodes, seed, policy);
        for (dest, msg) in self.preloads {
            net.preload(dest, msg);
        }
        net
    }
}

/// Mutable link-slot assignment used while embedding arbitrary digraphs
/// into the typed node variables.
struct Slots {
    id: NodeId,
    l: Option<NodeId>,
    r: Option<NodeId>,
    lrl: Option<NodeId>,
    extra: Vec<NodeId>, // overflow: becomes stale lin messages
}

impl Slots {
    fn new(id: NodeId) -> Self {
        Slots {
            id,
            l: None,
            r: None,
            lrl: None,
            extra: Vec::new(),
        }
    }

    /// Stores a link from this node to `to` in the first free legal slot,
    /// overflowing into the channel when all slots are taken.
    fn add_link(&mut self, to: NodeId) {
        if to == self.id {
            return;
        }
        if to < self.id && self.l.is_none() {
            self.l = Some(to);
        } else if to > self.id && self.r.is_none() {
            self.r = Some(to);
        } else if self.lrl.is_none() {
            self.lrl = Some(to);
        } else {
            self.extra.push(to);
        }
    }

    fn build(self, cfg: ProtocolConfig) -> (Node, Vec<(NodeId, Message)>) {
        let node = Node::with_state(
            self.id,
            self.l.map(Extended::Fin).unwrap_or(Extended::NegInf),
            self.r.map(Extended::Fin).unwrap_or(Extended::PosInf),
            self.lrl.unwrap_or(self.id),
            None,
            cfg,
        );
        let preloads = self
            .extra
            .into_iter()
            .map(|to| (self.id, Message::Lin(to)))
            .collect();
        (node, preloads)
    }
}

fn build_from_edges(ids: &[NodeId], edges: &[(usize, usize)], cfg: ProtocolConfig) -> InitialState {
    let mut slots: Vec<Slots> = ids.iter().map(|&id| Slots::new(id)).collect();
    for &(u, v) in edges {
        slots[u].add_link(ids[v]);
    }
    let mut nodes = Vec::with_capacity(ids.len());
    let mut preloads = Vec::new();
    for s in slots {
        let (node, mut pre) = s.build(cfg);
        nodes.push(node);
        preloads.append(&mut pre);
    }
    InitialState { nodes, preloads }
}

/// Generates an initial state of the given family over the given ids.
///
/// # Panics
/// Panics if `ids` is empty or contains duplicates.
pub fn generate(
    kind: InitialTopology,
    ids: &[NodeId],
    cfg: ProtocolConfig,
    seed: u64,
) -> InitialState {
    let n = ids.len();
    assert!(n > 0, "need at least one node");
    {
        let mut sorted = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), n, "duplicate ids in initial state");
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5ee0_1d1e);
    match kind {
        InitialTopology::RandomSparse { extra } => {
            // Random spanning tree: attach node k to a random earlier node,
            // direction chosen at random; then `extra` random links.
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(&mut rng);
            let mut edges = Vec::new();
            for k in 1..n {
                let parent = order[rng.random_range(0..k)];
                let child = order[k];
                if rng.random_bool(0.5) {
                    edges.push((parent, child));
                } else {
                    edges.push((child, parent));
                }
            }
            for _ in 0..extra {
                let u = rng.random_range(0..n);
                let v = rng.random_range(0..n);
                if u != v {
                    edges.push((u, v));
                }
            }
            build_from_edges(ids, &edges, cfg)
        }
        InitialTopology::Star => {
            let hub = rng.random_range(0..n);
            let edges: Vec<_> = (0..n).filter(|&i| i != hub).map(|i| (i, hub)).collect();
            build_from_edges(ids, &edges, cfg)
        }
        InitialTopology::Clique => {
            // Maximally misleading stored links: everyone's l is the global
            // min, everyone's r the global max, lrl random; the rest of the
            // clique knowledge arrives as stale lin messages.
            let mut sorted: Vec<usize> = (0..n).collect();
            sorted.sort_by_key(|&i| ids[i]);
            let (min_i, max_i) = (sorted[0], sorted[n - 1]);
            let mut edges = Vec::new();
            for i in 0..n {
                if i != min_i {
                    edges.push((i, min_i));
                }
                if i != max_i {
                    edges.push((i, max_i));
                }
                let v = rng.random_range(0..n);
                if v != i {
                    edges.push((i, v));
                }
            }
            let mut st = build_from_edges(ids, &edges, cfg);
            // A few random stale clique messages.
            for _ in 0..n {
                let u = rng.random_range(0..n);
                let v = rng.random_range(0..n);
                if u != v {
                    st.preloads.push((ids[u], Message::Lin(ids[v])));
                }
            }
            st
        }
        InitialTopology::RandomChain => {
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(&mut rng);
            let edges: Vec<_> = order.windows(2).map(|w| (w[0], w[1])).collect();
            build_from_edges(ids, &edges, cfg)
        }
        InitialTopology::TwoBlobs => {
            let mut sorted = ids.to_vec();
            sorted.sort_unstable();
            let half = n / 2;
            let mut nodes = make_sorted_ring(&sorted[..half.max(1)], cfg);
            nodes.extend(make_sorted_ring(&sorted[half.max(1)..], cfg));
            let mut preloads = Vec::new();
            if half >= 1 && half < n {
                // Single bridge: a random left-half node learns about a
                // random right-half node.
                let u = sorted[rng.random_range(0..half)];
                let v = sorted[rng.random_range(half..n)];
                preloads.push((u, Message::Lin(v)));
            }
            InitialState { nodes, preloads }
        }
        InitialTopology::SortedListNoRing => {
            let mut sorted = ids.to_vec();
            sorted.sort_unstable();
            let nodes = sorted
                .iter()
                .enumerate()
                .map(|(i, &id)| {
                    let l = if i == 0 {
                        Extended::NegInf
                    } else {
                        Extended::Fin(sorted[i - 1])
                    };
                    let r = if i + 1 == n {
                        Extended::PosInf
                    } else {
                        Extended::Fin(sorted[i + 1])
                    };
                    Node::with_state(id, l, r, id, None, cfg)
                })
                .collect();
            InitialState {
                nodes,
                preloads: Vec::new(),
            }
        }
        InitialTopology::SortedRing => InitialState {
            nodes: make_sorted_ring(ids, cfg),
            preloads: Vec::new(),
        },
        InitialTopology::CorruptedRing { corruptions } => {
            let mut sorted = ids.to_vec();
            sorted.sort_unstable();
            let mut nodes = make_sorted_ring(&sorted, cfg);
            let mut preloads = Vec::new();
            for _ in 0..corruptions {
                let i = rng.random_range(0..n);
                let j = rng.random_range(0..n);
                if i == j {
                    continue;
                }
                let victim = &nodes[i];
                let target = sorted[j];
                // Corrupt one random variable of the victim. Ill-typed
                // results are intended — sanitation must cope.
                let which = rng.random_range(0..4u8);
                nodes[i] = match which {
                    0 => Node::with_state(
                        victim.id(),
                        Extended::Fin(target),
                        victim.right(),
                        victim.lrl(),
                        victim.ring(),
                        cfg,
                    ),
                    1 => Node::with_state(
                        victim.id(),
                        victim.left(),
                        Extended::Fin(target),
                        victim.lrl(),
                        victim.ring(),
                        cfg,
                    ),
                    2 => Node::with_state(
                        victim.id(),
                        victim.left(),
                        victim.right(),
                        target,
                        victim.ring(),
                        cfg,
                    ),
                    _ => Node::with_state(
                        victim.id(),
                        victim.left(),
                        victim.right(),
                        victim.lrl(),
                        Some(target),
                        cfg,
                    ),
                };
                // Plus a stale message for good measure.
                preloads.push((sorted[j], Message::Lin(sorted[i])));
            }
            InitialState { nodes, preloads }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swn_core::id::evenly_spaced_ids;
    use swn_core::invariants::{classify, weakly_connected, Phase};
    use swn_core::views::View;

    fn check_connected(kind: InitialTopology, n: usize, seed: u64) {
        let ids = evenly_spaced_ids(n);
        let st = generate(kind, &ids, ProtocolConfig::default(), seed);
        assert_eq!(st.nodes.len(), n);
        let net = st.into_network(seed);
        let s = net.snapshot();
        assert!(
            weakly_connected(&s, View::Cc),
            "{} (n={n}, seed={seed}) not weakly connected",
            kind.label()
        );
    }

    #[test]
    fn every_family_is_weakly_connected() {
        for kind in InitialTopology::ALL {
            for seed in 0..5 {
                check_connected(kind, 17, seed);
                check_connected(kind, 2, seed);
                check_connected(kind, 64, seed);
            }
        }
    }

    #[test]
    fn singleton_states_work() {
        let ids = evenly_spaced_ids(1);
        for kind in InitialTopology::ALL {
            let st = generate(kind, &ids, ProtocolConfig::default(), 1);
            assert_eq!(st.nodes.len(), 1, "{}", kind.label());
        }
    }

    #[test]
    fn sorted_ring_family_is_already_stable() {
        let ids = evenly_spaced_ids(10);
        let st = generate(
            InitialTopology::SortedRing,
            &ids,
            ProtocolConfig::default(),
            3,
        );
        let net = st.into_network(3);
        assert_eq!(classify(&net.snapshot()), Phase::SortedRing);
    }

    #[test]
    fn list_no_ring_family_is_exactly_phase_two() {
        let ids = evenly_spaced_ids(10);
        let st = generate(
            InitialTopology::SortedListNoRing,
            &ids,
            ProtocolConfig::default(),
            3,
        );
        let net = st.into_network(3);
        assert_eq!(classify(&net.snapshot()), Phase::SortedList);
    }

    #[test]
    fn star_family_is_not_linearized() {
        let ids = evenly_spaced_ids(10);
        let st = generate(InitialTopology::Star, &ids, ProtocolConfig::default(), 3);
        let net = st.into_network(3);
        let phase = classify(&net.snapshot());
        assert!(phase < Phase::SortedList, "star must start unsorted");
    }

    #[test]
    fn random_chain_uses_slots_not_channels() {
        let ids = evenly_spaced_ids(12);
        let st = generate(
            InitialTopology::RandomChain,
            &ids,
            ProtocolConfig::default(),
            9,
        );
        // A chain link always fits one of the three slots.
        assert!(st.preloads.is_empty());
    }

    #[test]
    fn corrupted_ring_generates_stale_messages() {
        let ids = evenly_spaced_ids(20);
        let st = generate(
            InitialTopology::CorruptedRing { corruptions: 6 },
            &ids,
            ProtocolConfig::default(),
            4,
        );
        assert!(!st.preloads.is_empty());
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let ids = evenly_spaced_ids(15);
        let a = generate(
            InitialTopology::RandomSparse { extra: 3 },
            &ids,
            ProtocolConfig::default(),
            11,
        );
        let b = generate(
            InitialTopology::RandomSparse { extra: 3 },
            &ids,
            ProtocolConfig::default(),
            11,
        );
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.preloads, b.preloads);
    }

    #[test]
    #[should_panic(expected = "duplicate ids")]
    fn duplicate_ids_rejected() {
        let id = NodeId::from_fraction(0.5);
        let _ = generate(
            InitialTopology::Star,
            &[id, id],
            ProtocolConfig::default(),
            1,
        );
    }
}
