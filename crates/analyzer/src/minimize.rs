//! Counterexample replay, minimization and pretty-printing.
//!
//! A violation found by the explorer comes with the full DFS schedule
//! that reached it, which usually contains deliveries irrelevant to the
//! bug. [`minimize`] shrinks it by greedy delta debugging with chunk
//! size 1: repeatedly try dropping each transition and keep any shorter
//! schedule that still (a) replays — every remaining transition is
//! enabled when its turn comes — and (b) ends in a violation. The result
//! is 1-minimal: removing any single transition loses the violation.
//!
//! The same loop generalizes beyond acyclic safety witnesses:
//! [`minimize_with`] shrinks any schedule under a caller-supplied
//! validity predicate, and [`minimize_lasso`] shrinks a liveness
//! counterexample's stem and cycle **independently** — dropping a stem
//! transition must leave a schedule that still reaches *some* anchor of
//! a fair non-goal cycle, dropping a cycle transition must leave a loop
//! that still closes, stays fair and stays outside the goal — with the
//! semantic predicate (replay + fairness + goal check) supplied by
//! `liveness::validate_lasso`, so the shrunk lasso replays
//! deterministically by construction.

use crate::state::{PredVector, State, Transition, Violation};
use crate::stepper::{Policy, Stepper};
use std::fmt::Write as _;

/// One replayed transition with the monitors' observations.
#[derive(Clone, Debug)]
pub struct ReplayStep {
    /// The transition executed.
    pub transition: Transition,
    /// Predicates after it.
    pub pred_after: PredVector,
    /// Per-activation violations it raised.
    pub violations: Vec<Violation>,
}

/// Outcome of replaying a schedule from an initial state.
#[derive(Clone, Debug)]
pub struct Replay {
    /// Predicates of the initial state.
    pub pred_initial: PredVector,
    /// The executed steps, in order. Shorter than the input schedule when
    /// a transition was not enabled (the replay stops there).
    pub steps: Vec<ReplayStep>,
    /// True when every transition of the schedule was enabled in turn.
    pub complete: bool,
}

impl Replay {
    /// The first violation observed: per-activation ones, or a monotone
    /// predicate flipping true → false between consecutive states.
    pub fn first_violation(&self) -> Option<Violation> {
        let mut prev = self.pred_initial;
        for step in &self.steps {
            if let Some(v) = step.violations.first() {
                return Some(v.clone());
            }
            for (name, before, after) in prev.diff(step.pred_after) {
                if before && !after {
                    return Some(Violation::MonotonicityBroken { predicate: name });
                }
            }
            prev = step.pred_after;
        }
        None
    }
}

/// Replays `trace` from `initial` through `stepper`, recording monitor
/// output per step. Stops early (with `complete = false`) at the first
/// transition that is not enabled.
pub fn replay(
    initial: &State,
    stepper: &dyn Stepper,
    policy: Policy,
    trace: &[Transition],
) -> Replay {
    let mut cur = initial.clone();
    let mut steps = Vec::new();
    let mut complete = true;
    for t in trace {
        match cur.apply(stepper, policy, t) {
            Some(a) => {
                steps.push(ReplayStep {
                    transition: t.clone(),
                    pred_after: a.next.eval(),
                    violations: a.violations,
                });
                cur = a.next;
            }
            None => {
                complete = false;
                break;
            }
        }
    }
    Replay {
        pred_initial: initial.eval(),
        steps,
        complete,
    }
}

/// Greedily minimizes a violating schedule (delta debugging, chunk
/// size 1, iterated to a fixpoint). The returned schedule still replays
/// completely and still ends in a violation; dropping any one transition
/// from it would lose that.
///
/// # Panics
/// Panics if `trace` does not reproduce a violation in the first place.
pub fn minimize(
    initial: &State,
    stepper: &dyn Stepper,
    policy: Policy,
    trace: &[Transition],
) -> Vec<Transition> {
    let reproduces = |candidate: &[Transition]| {
        let r = replay(initial, stepper, policy, candidate);
        r.complete && r.first_violation().is_some()
    };
    assert!(
        reproduces(trace),
        "minimize() needs a schedule that reproduces a violation"
    );
    minimize_with(trace, &reproduces)
}

/// Greedy 1-minimal shrinking of `trace` under an arbitrary validity
/// predicate: repeatedly drop any single transition whose removal keeps
/// `valid` true, to a fixpoint. `trace` itself must be valid.
pub fn minimize_with(
    trace: &[Transition],
    valid: &dyn Fn(&[Transition]) -> bool,
) -> Vec<Transition> {
    debug_assert!(valid(trace), "minimize_with() needs a valid schedule");
    let mut best = trace.to_vec();
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < best.len() {
            let mut candidate = best.clone();
            candidate.remove(i);
            if valid(&candidate) {
                best = candidate;
                shrunk = true;
                // Same index now names the next transition; retry it.
            } else {
                i += 1;
            }
        }
        if !shrunk {
            return best;
        }
    }
}

/// Shrinks a lasso counterexample: the cycle and the stem are delta
/// debugged **independently** (a schedule prefix and a loop have
/// different validity conditions, so the acyclic-witness loop of
/// [`minimize`] cannot shrink them jointly), iterated to a common
/// fixpoint since a shorter cycle can unlock stem drops and vice versa.
/// `valid(stem, cycle)` decides whether a candidate pair is still a
/// counterexample — for liveness that is `liveness::validate_lasso`:
/// the stem replays, the cycle closes on its anchor, stays weakly fair
/// and visits a non-goal state. Both inputs must be valid together.
pub fn minimize_lasso(
    stem: &[Transition],
    cycle: &[Transition],
    valid: &dyn Fn(&[Transition], &[Transition]) -> bool,
) -> (Vec<Transition>, Vec<Transition>) {
    assert!(
        valid(stem, cycle),
        "minimize_lasso() needs a reproducing lasso"
    );
    let mut stem = stem.to_vec();
    let mut cycle = cycle.to_vec();
    loop {
        let cycle_before = cycle.len();
        let stem_before = stem.len();
        cycle = minimize_with(&cycle, &|c: &[Transition]| valid(&stem, c));
        stem = minimize_with(&stem, &|s: &[Transition]| valid(s, &cycle));
        if cycle.len() == cycle_before && stem.len() == stem_before {
            return (stem, cycle);
        }
    }
}

/// Renders a violating schedule as a human-readable listing: the initial
/// predicates, each step with the predicates after it, and the violation
/// each monitor raised. This is what `analyzer --demo-fault` prints.
pub fn format_trace(
    initial: &State,
    stepper: &dyn Stepper,
    policy: Policy,
    trace: &[Transition],
) -> String {
    let r = replay(initial, stepper, policy, trace);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "counterexample ({} steps, stepper: {}, policy: {}):",
        trace.len(),
        stepper.label(),
        policy.label()
    );
    let _ = writeln!(
        out,
        "  predicates: C = weakly_connected(Cc), L = is_sorted_list, R = is_sorted_ring"
    );
    let _ = writeln!(out, "  initial state: [{}]", r.pred_initial.glyphs());
    let mut prev = r.pred_initial;
    for (i, step) in r.steps.iter().enumerate() {
        let _ = writeln!(
            out,
            "  step {:>2}: {:<44} [{}]",
            i + 1,
            step.transition.to_string(),
            step.pred_after.glyphs()
        );
        for v in &step.violations {
            let _ = writeln!(out, "           VIOLATION: {v}");
        }
        for (name, before, after) in prev.diff(step.pred_after) {
            if before && !after {
                let _ = writeln!(
                    out,
                    "           VIOLATION: monotone predicate {name} flipped true -> false"
                );
            }
        }
        prev = step.pred_after;
    }
    if !r.complete {
        let _ = writeln!(out, "  (schedule truncated: transition not enabled)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{ExploreConfig, Explorer};
    use crate::families::demo_fault_state;
    use crate::stepper::{DropLinStepper, RealStepper};

    /// A fixture run that pads the violating delivery with irrelevant
    /// regular actions, so minimization has something to remove.
    fn padded_violating_trace() -> (State, Vec<Transition>) {
        let s = demo_fault_state(1);
        let report = Explorer::new(&DropLinStepper, ExploreConfig::default()).run(&s);
        let v = report.violation.expect("drop-lin violates");
        (s, v.trace)
    }

    #[test]
    fn replay_reproduces_explorer_violation() {
        let (s, trace) = padded_violating_trace();
        let r = replay(&s, &DropLinStepper, Policy::Zeros, &trace);
        assert!(r.complete);
        assert!(r.first_violation().is_some());
    }

    #[test]
    fn replay_of_clean_run_has_no_violation() {
        let (s, trace) = padded_violating_trace();
        // The same schedule under the real protocol is clean (when it
        // replays at all).
        let r = replay(&s, &RealStepper, Policy::Zeros, &trace);
        assert!(r.first_violation().is_none());
    }

    #[test]
    fn minimized_trace_is_one_minimal() {
        let (s, trace) = padded_violating_trace();
        let min = minimize(&s, &DropLinStepper, Policy::Zeros, &trace);
        assert!(!min.is_empty());
        assert!(min.len() <= trace.len());
        // 1-minimality: dropping any single transition loses the bug.
        for i in 0..min.len() {
            let mut c = min.clone();
            c.remove(i);
            let r = replay(&s, &DropLinStepper, Policy::Zeros, &c);
            assert!(
                !(r.complete && r.first_violation().is_some()),
                "dropping step {i} still violates: not minimal"
            );
        }
        // For this fixture the minimum is exactly the lin delivery.
        assert_eq!(min.len(), 1);
        assert!(matches!(min[0], Transition::Deliver { .. }));
    }

    #[test]
    fn format_trace_names_the_violation() {
        let (s, trace) = padded_violating_trace();
        let min = minimize(&s, &DropLinStepper, Policy::Zeros, &trace);
        let text = format_trace(&s, &DropLinStepper, Policy::Zeros, &min);
        assert!(text.contains("VIOLATION"), "{text}");
        assert!(text.contains("weakly_connected(Cc)"), "{text}");
        assert!(text.contains("deliver"), "{text}");
    }
}
