//! Properties of the persistence layer (DESIGN.md §7/§14): the JSON
//! forms are lossless fixpoints of the live state, and a network
//! restored from a checkpoint is a deterministic continuation.
//!
//! * `snapshot → json → network → snapshot` is the identity on churned
//!   (mid-linearization, messages in flight) states;
//! * the same holds for v2 checkpoints carrying a live fault injector
//!   mid-window: round cursor, downed nodes, durable saves and the
//!   injector RNG cursor all survive the round trip;
//! * two networks restored from the same checkpoint document replay the
//!   same computation bit for bit — state, channels and fault fates.

use proptest::prelude::*;
use swn_core::config::ProtocolConfig;
use swn_core::id::evenly_spaced_ids;
use swn_sim::faults::{FaultInjector, FaultPlan};
use swn_sim::init::{generate, InitialTopology};
use swn_sim::persist::{
    checkpoint, checkpoint_from_json, checkpoint_to_json, network_from_checkpoint,
    network_from_snapshot, snapshot_from_json, snapshot_to_json,
};
use swn_sim::Network;

/// A mid-linearization network: sparse random start, `rounds` of
/// protocol churn, messages still in flight.
fn churned_network(n: usize, seed: u64, rounds: u64) -> Network {
    let ids = evenly_spaced_ids(n);
    let cfg = ProtocolConfig::default();
    let mut net =
        generate(InitialTopology::RandomSparse { extra: 2 }, &ids, cfg, seed).into_network(seed);
    net.run(rounds);
    net
}

/// The same fixture with a fault plan attached and driven mid-window:
/// a loss window is open, one node is down with a durable save pending,
/// and the injector RNG cursor is somewhere nonzero.
fn faulted_network(n: usize, seed: u64, rounds: u64) -> Network {
    let mut net = churned_network(n, seed, rounds);
    let ids = net.ids();
    let r = net.round();
    let plan = FaultPlan::new(seed ^ 0x9e15)
        .with_drop(r + 1, r + 12, 0.35)
        .with_durable_crash(r + 2, ids[ids.len() / 2], 8, r + 1);
    net.attach_faults(plan);
    net.run(4);
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn snapshot_json_network_snapshot_is_a_fixpoint(
        n in 4usize..40,
        seed in 0u64..1_000_000,
        rounds in 0u64..40,
    ) {
        let net = churned_network(n, seed, rounds);
        let j1 = snapshot_to_json(&net.snapshot());
        let parsed = snapshot_from_json(&j1).expect("own output parses");
        let restored = network_from_snapshot(&parsed, seed);
        let j2 = snapshot_to_json(&restored.snapshot());
        prop_assert_eq!(j1, j2, "snapshot round trip must be the identity");
    }

    #[test]
    fn checkpoint_json_restore_checkpoint_is_a_fixpoint(
        n in 6usize..32,
        seed in 0u64..1_000_000,
        rounds in 0u64..24,
    ) {
        let net = faulted_network(n, seed, rounds);
        let j1 = checkpoint_to_json(&checkpoint(&net));
        let parsed = checkpoint_from_json(&j1).expect("own output parses");
        let restored = network_from_checkpoint(&parsed, seed).expect("restorable");
        prop_assert_eq!(restored.round(), net.round());
        let j2 = checkpoint_to_json(&checkpoint(&restored));
        prop_assert_eq!(j1, j2, "checkpoint round trip must be the identity");
    }

    #[test]
    fn two_restores_from_one_checkpoint_replay_identically(
        n in 6usize..32,
        seed in 0u64..1_000_000,
        rounds in 0u64..24,
    ) {
        let net = faulted_network(n, seed, rounds);
        let json = checkpoint_to_json(&checkpoint(&net));
        let mut a =
            network_from_checkpoint(&checkpoint_from_json(&json).expect("parse"), seed)
                .expect("restorable");
        let mut b =
            network_from_checkpoint(&checkpoint_from_json(&json).expect("parse"), seed)
                .expect("restorable");
        // Run both continuations through the rest of the fault window
        // (loss fates drawn from the restored injector cursor, the
        // durable victim restarting from its save) and beyond.
        for _ in 0..25 {
            a.step();
            b.step();
        }
        prop_assert_eq!(
            snapshot_to_json(&a.snapshot()),
            snapshot_to_json(&b.snapshot()),
            "restored continuations must be bit-identical"
        );
        let drops_a = format!("{:?}", a.fault_injector().map(FaultInjector::drops));
        let drops_b = format!("{:?}", b.fault_injector().map(FaultInjector::drops));
        prop_assert_eq!(drops_a, drops_b, "fault fates must replay identically");
    }
}
