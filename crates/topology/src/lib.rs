//! # swn-topology — graph analysis toolkit
//!
//! Measures the properties the paper claims for the stabilized network:
//!
//! * [`graph`] — compact adjacency graphs, extracted from protocol
//!   snapshots (indexed by id rank, so ring distances are meaningful);
//! * [`connectivity`] — weak/strong connectivity and component sizes;
//! * [`paths`] — BFS distances, diameter and characteristic path length
//!   (exact and sampled), plus the ring (rank) metric;
//! * [`clustering`] — Watts–Strogatz clustering coefficients;
//! * [`distribution`] — long-range-link length histograms and the
//!   harmonic-law fit (KS distance, log–log slope) of Fact 4.21;
//! * [`routing`] — Kleinberg greedy routing and its hop statistics
//!   (Theorem 4.22 / Lemma 4.23);
//! * [`robustness`] — failure/attack sweeps (giant component, routing
//!   success);
//! * [`export`] — Graphviz DOT rendering of graphs and snapshots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clustering;
pub mod connectivity;
pub mod distribution;
pub mod export;
pub mod graph;
pub mod paths;
pub mod robustness;
pub mod routing;

pub use graph::Graph;
