//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with `name: Type` and `name in strategy`
//! parameters and `#![proptest_config(...)]`), range / `any` / tuple /
//! [`option::of`] / [`collection::vec`] strategies, `prop_assert*`
//! macros, deterministic seeding (override with the `PROPTEST_SEED`
//! environment variable), and greedy counterexample shrinking.
//!
//! The real proptest separates generation from shrinking with value
//! trees; this stand-in keeps a strategy-side `shrink(value) →
//! candidates` function and a greedy fixpoint loop, which shrinks the
//! same counterexamples at small scale with far less machinery.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::RngExt;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies during generation.
pub type TestRng = StdRng;

/// A generator of test inputs with an attached shrinker.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value: Clone + fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes strictly "smaller" variants of `value`. Returning an
    /// empty vector means the value is fully shrunk.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value>;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

// ---------------------------------------------------------------------
// Integer / float range strategies
// ---------------------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let lo = self.start;
                let v = *value;
                if v <= lo {
                    return Vec::new();
                }
                let mut out = vec![lo];
                let mid = lo + (v - lo) / 2;
                if mid != lo && mid != v {
                    out.push(mid);
                }
                if v - 1 != lo && (mid == lo || v - 1 != mid) {
                    out.push(v - 1);
                }
                out
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                (*self.start()..*self.end()).shrink(value)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let lo = self.start;
                let v = *value;
                // NaN compares false: nothing to shrink toward.
                if v <= lo || v.is_nan() {
                    return Vec::new();
                }
                let mut out = vec![lo];
                let mid = lo + (v - lo) / 2.0;
                if mid > lo && mid < v {
                    out.push(mid);
                }
                out
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

// ---------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Clone + fmt::Debug + Sized {
    /// Draws an arbitrary value (edge cases included).
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Proposes smaller variants (toward zero / `false`).
    fn shrink_value(value: &Self) -> Vec<Self>;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Mildly edge-biased: bugs cluster at 0 and MAX.
                match rng.random_range(0u8..16) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => 1,
                    _ => rng.random::<$t>(),
                }
            }

            fn shrink_value(value: &Self) -> Vec<Self> {
                let v = *value;
                if v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0, v / 2];
                if v / 2 != v - 1 {
                    out.push(v - 1);
                }
                out.retain(|&c| c != v);
                out.dedup();
                out
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random()
    }

    fn shrink_value(value: &Self) -> Vec<Self> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.random_range(0u8..8) {
            0 => 0.0,
            1 => 1.0,
            2 => -1.0,
            _ => (rng.random::<f64>() - 0.5) * 2e9,
        }
    }

    fn shrink_value(value: &Self) -> Vec<Self> {
        let v = *value;
        if v == 0.0 {
            return Vec::new();
        }
        vec![0.0, v / 2.0]
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// An arbitrary value of `T`, edge cases included.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink_value(value)
    }
}

// ---------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// ---------------------------------------------------------------------
// option / collection combinators
// ---------------------------------------------------------------------

/// Strategies over `Option<T>`.
pub mod option {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` about a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.random_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }

        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            match value {
                None => Vec::new(),
                Some(v) => std::iter::once(None)
                    .chain(self.inner.shrink(v).into_iter().map(Some))
                    .collect(),
            }
        }
    }
}

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// A length constraint for [`vec`]; built from `usize` ranges.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_excl: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A vector whose length is drawn from `size` and whose elements
    /// come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.random_range(self.size.min..self.size.max_excl);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }

        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let mut out = Vec::new();
            let len = value.len();
            // Structural shrinks first (shorter vectors), never below
            // the configured minimum length.
            if len > self.size.min {
                out.push(value[..self.size.min].to_vec());
                let half = self.size.min + (len - self.size.min) / 2;
                if half != self.size.min && half != len {
                    out.push(value[..half].to_vec());
                }
                out.push(value[..len - 1].to_vec());
                for idx in 0..len.min(8) {
                    let mut shorter = value.clone();
                    shorter.remove(idx);
                    out.push(shorter);
                }
            }
            // Element-wise shrinks, bounded so candidate lists stay
            // small on long vectors.
            for idx in 0..len.min(16) {
                for candidate in self.elem.shrink(&value[idx]).into_iter().take(2) {
                    let mut next = value.clone();
                    next[idx] = candidate;
                    out.push(next);
                }
            }
            out
        }
    }
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// Per-`proptest!` block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
    /// Upper bound on shrink iterations after a failure.
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 4096,
        }
    }
}

/// A failed test case (produced by the `prop_assert*` macros).
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// Assertion failure with its message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => f.write_str(m),
        }
    }
}

/// The case loop behind the [`proptest!`] macro.
pub mod runner {
    use super::{ProptestConfig, Strategy, TestCaseError, TestRng};
    use rand::SeedableRng;

    fn default_seed(name: &str) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.trim().parse() {
                return seed;
            }
        }
        // FNV-1a over the test name: deterministic per test, different
        // across tests.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `test` against `config.cases` generated inputs, shrinking
    /// the first failure to a (locally) minimal counterexample.
    pub fn run<S, F>(name: &str, config: ProptestConfig, strategy: S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let seed = default_seed(name);
        let mut rng = TestRng::seed_from_u64(seed);
        for case in 0..config.cases {
            let input = strategy.generate(&mut rng);
            if let Err(err) = test(input.clone()) {
                let (minimal, minimal_err, steps) =
                    shrink(&strategy, input, err, &test, config.max_shrink_iters);
                panic!(
                    "proptest `{name}` failed (seed={seed}, case {case}/{}, \
                     shrunk {steps} steps)\nminimal failing input: {minimal:#?}\n{minimal_err}",
                    config.cases
                );
            }
        }
    }

    fn shrink<S, F>(
        strategy: &S,
        mut current: S::Value,
        mut err: TestCaseError,
        test: &F,
        max_iters: u32,
    ) -> (S::Value, TestCaseError, u32)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let mut steps = 0;
        let mut budget = max_iters;
        'outer: while budget > 0 {
            for candidate in strategy.shrink(&current) {
                budget = budget.saturating_sub(1);
                if budget == 0 {
                    break 'outer;
                }
                if let Err(e) = test(candidate.clone()) {
                    current = candidate;
                    err = e;
                    steps += 1;
                    continue 'outer;
                }
            }
            break;
        }
        (current, err, steps)
    }
}

/// The usual import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Defines property tests. Supports `name: Type` (sugar for
/// `any::<Type>()`) and `name in strategy` parameters, plus an optional
/// leading `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_params! {
                ($cfg) ($name) () () ($($params)*) ($body)
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_params {
    // `name in strategy, ...`
    ( ($cfg:expr) ($name:ident) ($($p:ident)*) ($($s:expr,)*) ($pn:ident in $strat:expr, $($rest:tt)*) ($body:block) ) => {
        $crate::__proptest_params! {
            ($cfg) ($name) ($($p)* $pn) ($($s,)* $strat,) ($($rest)*) ($body)
        }
    };
    // `name in strategy` (final)
    ( ($cfg:expr) ($name:ident) ($($p:ident)*) ($($s:expr,)*) ($pn:ident in $strat:expr) ($body:block) ) => {
        $crate::__proptest_params! {
            ($cfg) ($name) ($($p)* $pn) ($($s,)* $strat,) () ($body)
        }
    };
    // `name: Type, ...`
    ( ($cfg:expr) ($name:ident) ($($p:ident)*) ($($s:expr,)*) ($pn:ident : $ty:ty, $($rest:tt)*) ($body:block) ) => {
        $crate::__proptest_params! {
            ($cfg) ($name) ($($p)* $pn) ($($s,)* $crate::any::<$ty>(),) ($($rest)*) ($body)
        }
    };
    // `name: Type` (final)
    ( ($cfg:expr) ($name:ident) ($($p:ident)*) ($($s:expr,)*) ($pn:ident : $ty:ty) ($body:block) ) => {
        $crate::__proptest_params! {
            ($cfg) ($name) ($($p)* $pn) ($($s,)* $crate::any::<$ty>(),) () ($body)
        }
    };
    // All parameters consumed: emit the runner call.
    ( ($cfg:expr) ($name:ident) ($($p:ident)*) ($($s:expr,)*) () ($body:block) ) => {
        $crate::runner::run(
            concat!(module_path!(), "::", stringify!($name)),
            $cfg,
            ($($s,)*),
            |($($p,)*)| {
                $body
                ::core::result::Result::Ok(())
            },
        )
    };
}

/// Asserts a condition inside a `proptest!` body; failures are recorded
/// for shrinking instead of panicking immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::runner;
    use crate::Strategy;
    use rand::SeedableRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::seed_from_u64(1);
        let s = 10u64..20;
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((10..20).contains(&v));
        }
        for c in s.shrink(&15) {
            assert!((10..15).contains(&c));
        }
        assert!(s.shrink(&10).is_empty());
    }

    #[test]
    fn vec_shrink_respects_min_len() {
        let s = crate::collection::vec(0u64..10, 2..6);
        let mut rng = crate::TestRng::seed_from_u64(2);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
        for c in s.shrink(&vec![5, 5, 5, 5, 5]) {
            assert!(c.len() >= 2, "shrank below min: {c:?}");
        }
    }

    #[test]
    fn shrinking_finds_small_counterexample() {
        // The property "v < 50" fails from 50 up; greedy shrinking must
        // land on exactly 50.
        let strategy = (0u64..1000,);
        let mut failing = None;
        let mut rng = crate::TestRng::seed_from_u64(3);
        for _ in 0..200 {
            let v = strategy.generate(&mut rng);
            if v.0 >= 50 {
                failing = Some(v);
                break;
            }
        }
        let failing = failing.expect("uniform draw over 0..1000 hits >= 50");
        let test = |v: (u64,)| -> Result<(), TestCaseError> {
            if v.0 >= 50 {
                Err(TestCaseError::fail("too big"))
            } else {
                Ok(())
            }
        };
        let mut current = failing;
        loop {
            let next = strategy
                .shrink(&current)
                .into_iter()
                .find(|&c| test(c).is_err());
            match next {
                Some(c) => current = c,
                None => break,
            }
        }
        assert_eq!(current.0, 50);
    }

    #[test]
    fn macro_end_to_end() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[allow(unused)]
            fn addition_commutes(a: u64, b in 0u64..100) {
                prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
                prop_assert!(b < 100, "range bound violated: {b}");
            }
        }
        addition_commutes();
    }

    #[test]
    #[should_panic(expected = "minimal failing input")]
    fn failing_property_panics_with_shrunk_input() {
        runner::run(
            "deliberate_failure",
            ProptestConfig::with_cases(64),
            (0u64..1000,),
            |(v,)| {
                if v >= 3 {
                    Err(TestCaseError::fail("v too large"))
                } else {
                    Ok(())
                }
            },
        );
    }
}
