//! **E8 — The Watts–Strogatz interpolation figure** (Section I.A,
//! reference [24]).
//!
//! The paper's whole motivation rests on the classic result that a few
//! random shortcuts collapse path lengths while leaving clustering
//! intact. We regenerate the C(p)/C(0) and L(p)/L(0) series of Watts &
//! Strogatz (Nature 1998, Fig. 2): over four decades of p, L(p) drops an
//! order of magnitude before C(p) moves — the small-world window.

use crate::table::{f3, mean, Table};
use swn_baselines::watts_strogatz::watts_strogatz;
use swn_sim::parallel::run_trials;
use swn_topology::clustering::average_clustering;
use swn_topology::paths::path_stats_sampled;

/// Parameters for E8.
#[derive(Clone, Debug)]
pub struct Params {
    /// Nodes.
    pub n: usize,
    /// Lattice degree.
    pub k: usize,
    /// Rewiring probabilities (0 is prepended automatically as the
    /// baseline).
    pub ps: Vec<f64>,
    /// Seeds per p.
    pub seeds: usize,
    /// BFS sources for the sampled path length.
    pub path_samples: usize,
}

impl Params {
    /// Full-scale run (the original paper's n = 1000, k = 10).
    pub fn full() -> Self {
        Params {
            n: 1000,
            k: 10,
            ps: vec![0.0001, 0.001, 0.01, 0.05, 0.1, 0.5, 1.0],
            seeds: 20,
            path_samples: 80,
        }
    }

    /// Reduced scale.
    pub fn quick() -> Self {
        Params {
            n: 300,
            k: 10,
            ps: vec![0.01, 0.1, 1.0],
            seeds: 5,
            path_samples: 40,
        }
    }
}

/// One p's normalized statistics.
#[derive(Clone, Copy, Debug)]
pub struct WsPoint {
    /// Rewiring probability.
    pub p: f64,
    /// C(p)/C(0).
    pub c_ratio: f64,
    /// L(p)/L(0).
    pub l_ratio: f64,
}

/// Measures the normalized series.
pub fn measure(params: &Params) -> Vec<WsPoint> {
    let base = watts_strogatz(params.n, params.k, 0.0, 0);
    let c0 = average_clustering(&base);
    let l0 = path_stats_sampled(&base, params.path_samples, 0).avg;
    params
        .ps
        .iter()
        .map(|&p| {
            let results = run_trials(params.seeds, |s| {
                let g = watts_strogatz(params.n, params.k, p, s as u64 * 131 + 7);
                (
                    average_clustering(&g),
                    path_stats_sampled(&g, params.path_samples, s as u64).avg,
                )
            });
            let cs: Vec<f64> = results.iter().map(|r| r.0).collect();
            let ls: Vec<f64> = results.iter().map(|r| r.1).collect();
            WsPoint {
                p,
                c_ratio: mean(&cs) / c0,
                l_ratio: mean(&ls) / l0,
            }
        })
        .collect()
}

/// Runs E8 and renders the table.
pub fn run(params: &Params) -> Table {
    let pts = measure(params);
    let mut t = Table::new(
        format!(
            "E8  Watts-Strogatz interpolation (n = {}, k = {})",
            params.n, params.k
        ),
        "L(p) collapses an order of magnitude before C(p) drops — the small-world window ([24], Fig. 2)",
        &["p", "C(p)/C(0)", "L(p)/L(0)"],
    );
    for pt in pts {
        t.push_row(vec![format!("{}", pt.p), f3(pt.c_ratio), f3(pt.l_ratio)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_world_window_exists() {
        let mut p = Params::quick();
        p.ps = vec![0.01, 1.0];
        let pts = measure(&p);
        let sw = pts[0]; // p = 0.01
        let rnd = pts[1]; // p = 1
        assert!(
            sw.c_ratio > 0.75,
            "C must stay high at p=0.01: {}",
            sw.c_ratio
        );
        assert!(
            sw.l_ratio < 0.6,
            "L must collapse at p=0.01: {}",
            sw.l_ratio
        );
        assert!(rnd.c_ratio < 0.2, "C must vanish at p=1: {}", rnd.c_ratio);
    }

    #[test]
    fn l_is_monotone_down_in_p() {
        let mut p = Params::quick();
        p.ps = vec![0.01, 0.1, 1.0];
        let pts = measure(&p);
        assert!(pts[0].l_ratio >= pts[1].l_ratio - 0.05);
        assert!(pts[1].l_ratio >= pts[2].l_ratio - 0.05);
    }

    #[test]
    fn table_renders_one_row_per_p() {
        let mut p = Params::quick();
        p.ps = vec![0.05];
        p.seeds = 2;
        let t = run(&p);
        assert_eq!(t.rows.len(), 1);
    }
}
